//! Offline stand-in for `serde_json`.
//!
//! Provides [`to_string`], [`to_string_pretty`] and [`from_str`] over the
//! vendored `serde` shim's [`Value`] tree. The JSON grammar is implemented
//! in full (strings with escapes, nested containers, numbers in integer and
//! float form); what is intentionally absent is real serde's zero-copy
//! deserializer machinery, which nothing in this workspace needs.

#![warn(missing_docs)]

pub use serde::{Error, Value};

use serde::{Deserialize, Serialize};

/// Serialize a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, None, 0);
    Ok(out)
}

/// Serialize a value to two-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let value = parse_value_complete(input)?;
    T::deserialize(&value)
}

/// Parse JSON text into the generic [`Value`] tree.
pub fn parse_value_complete(input: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(value: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(f) => write_f64(*f, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(item, out, indent, level + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, level + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_f64(f: f64, out: &mut String) {
    if f.is_nan() || f.is_infinite() {
        // serde_json renders non-finite floats as null.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep integral floats distinguishable as floats, like serde_json.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&f.to_string());
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Check `text` against RFC 8259's number grammar:
/// `-?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?`.
fn is_valid_json_number(text: &str) -> bool {
    let mut bytes = text.as_bytes();
    if let [b'-', rest @ ..] = bytes {
        bytes = rest;
    }
    // Integer part: `0` alone, or a non-zero digit followed by digits.
    let int_len = bytes.iter().take_while(|b| b.is_ascii_digit()).count();
    match int_len {
        0 => return false,
        1 => {}
        _ if bytes[0] == b'0' => return false, // leading zero
        _ => {}
    }
    bytes = &bytes[int_len..];
    // Optional fraction: `.` followed by at least one digit.
    if let [b'.', rest @ ..] = bytes {
        let frac_len = rest.iter().take_while(|b| b.is_ascii_digit()).count();
        if frac_len == 0 {
            return false;
        }
        bytes = &rest[frac_len..];
    }
    // Optional exponent: `e`/`E`, optional sign, at least one digit.
    if let [b'e' | b'E', rest @ ..] = bytes {
        let rest = match rest {
            [b'+' | b'-', r @ ..] => r,
            r => r,
        };
        let exp_len = rest.iter().take_while(|b| b.is_ascii_digit()).count();
        if exp_len == 0 {
            return false;
        }
        bytes = &rest[exp_len..];
    }
    bytes.is_empty()
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::custom(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::custom("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by anything in
                            // this workspace; map them to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::custom("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    // RFC 8259: control characters must be escaped.
                    return Err(Error::custom(format!(
                        "unescaped control character 0x{b:02x} in string at byte {}",
                        self.pos
                    )));
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty string slice");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        // Enforce the JSON number grammar before handing the token to Rust's
        // (more permissive) FromStr: no leading zeros, no bare trailing dot,
        // digits required after `.` and in the exponent.
        if !is_valid_json_number(text) {
            return Err(Error::custom(format!("invalid JSON number `{text}`")));
        }
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let text = r#"{"a": [1, -2, 3.5], "b": {"c": "hi\nthere", "d": null}, "e": true}"#;
        let v = parse_value_complete(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("b").unwrap().get("c").unwrap().as_str(),
            Some("hi\nthere")
        );
        let compact = to_string(&RawValue(v.clone())).unwrap();
        let reparsed = parse_value_complete(&compact).unwrap();
        assert_eq!(v, reparsed);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_value_complete("{} x").is_err());
    }

    #[test]
    fn rejects_unescaped_control_characters_in_strings() {
        assert!(parse_value_complete("\"a\tb\"").is_err());
        assert!(parse_value_complete("\"a\nb\"").is_err());
        // The escaped forms remain fine, and escaping round-trips.
        assert_eq!(
            parse_value_complete(r#""a\tb\nc""#).unwrap(),
            Value::Str("a\tb\nc".to_string())
        );
    }

    #[test]
    fn enforces_json_number_grammar() {
        for bad in ["1.", "007", ".5", "-", "1e", "1e+", "01.5", "--1", "1.2.3"] {
            assert!(parse_value_complete(bad).is_err(), "accepted `{bad}`");
        }
        for good in ["0", "-0", "10", "1.5", "-0.25", "1e3", "1E-2", "1.25e+10"] {
            assert!(parse_value_complete(good).is_ok(), "rejected `{good}`");
        }
    }

    #[test]
    fn float_formatting_keeps_decimal_point() {
        let mut out = String::new();
        write_value(&Value::F64(2.0), &mut out, None, 0);
        assert_eq!(out, "2.0");
    }

    /// Serialize wrapper so the tests can feed a raw `Value` to `to_string`.
    struct RawValue(Value);

    impl serde::Serialize for RawValue {
        fn serialize(&self) -> Value {
            self.0.clone()
        }
    }
}
