//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API:
//! `lock()`/`read()`/`write()` return guards directly instead of `Result`s.
//! Poison errors are swallowed by taking the inner guard, matching
//! parking_lot's behavior of not propagating panics between lock holders.

#![warn(missing_docs)]

use std::sync::{self, TryLockError};

/// A mutual-exclusion lock whose `lock` method never returns an error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempt to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutably borrow the protected value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock whose `read`/`write` methods never return errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutably borrow the protected value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}
