//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! vendored `serde` shim without depending on `syn`/`quote` (neither is
//! available offline). The input item is parsed directly from the
//! `proc_macro` token stream, which is sufficient because the FIRST
//! codebase only derives on non-generic structs and enums.
//!
//! Supported surface:
//! * named-field structs, tuple/newtype structs, unit structs,
//! * enums with unit, tuple and struct variants (externally tagged),
//! * `#[serde(default)]` / `#[serde(default = "path")]` on fields,
//! * missing `Option<T>` fields deserialize to `None`.

#![warn(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// How a field behaves when its key is absent from the input.
#[derive(Clone, PartialEq)]
enum MissingPolicy {
    /// Hard error (serde's default for non-`Option` fields).
    Error,
    /// `Default::default()` from `#[serde(default)]`, or `None` for `Option`.
    DefaultTrait,
    /// Call a named function from `#[serde(default = "path")]`.
    DefaultFn(String),
}

struct Field {
    name: String,
    missing: MissingPolicy,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derive `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item)
            .parse()
            .expect("generated Serialize impl parses"),
        Err(msg) => error(&msg),
    }
}

/// Derive `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated Deserialize impl parses"),
        Err(msg) => error(&msg),
    }
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("compile_error parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "the vendored serde shim cannot derive for generic type `{name}`"
        ));
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                Ok(Item::NamedStruct { name, fields })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                Ok(Item::TupleStruct { name, arity })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            other => Err(format!("unsupported struct body for `{name}`: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_variants(g.stream())?;
                Ok(Item::Enum { name, variants })
            }
            other => Err(format!("expected enum body for `{name}`, found {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Skip any `#[...]` outer attributes, returning the token indices consumed.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match (tokens.get(*i), tokens.get(*i + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                *i += 2;
            }
            _ => break,
        }
    }
}

/// Collect `#[...]` outer attributes as token groups (for `#[serde(...)]`
/// inspection) and advance past them.
fn collect_attrs(tokens: &[TokenTree], i: &mut usize) -> Vec<TokenStream> {
    let mut attrs = Vec::new();
    loop {
        match (tokens.get(*i), tokens.get(*i + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                attrs.push(g.stream());
                *i += 2;
            }
            _ => break attrs,
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Extract the missing-field policy from a field's attributes.
fn missing_policy(attrs: &[TokenStream]) -> Result<Option<MissingPolicy>, String> {
    for attr in attrs {
        let toks: Vec<TokenTree> = attr.clone().into_iter().collect();
        let is_serde =
            matches!(toks.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
        if !is_serde {
            continue;
        }
        let Some(TokenTree::Group(args)) = toks.get(1) else {
            continue;
        };
        let arg_toks: Vec<TokenTree> = args.stream().into_iter().collect();
        match arg_toks.first() {
            Some(TokenTree::Ident(id)) if id.to_string() == "default" => {
                if let Some(TokenTree::Literal(lit)) = arg_toks.get(2) {
                    let raw = lit.to_string();
                    let path = raw.trim_matches('"').to_string();
                    return Ok(Some(MissingPolicy::DefaultFn(path)));
                }
                return Ok(Some(MissingPolicy::DefaultTrait));
            }
            Some(other) => {
                return Err(format!(
                    "the vendored serde shim does not support #[serde({other})]"
                ))
            }
            None => continue,
        }
    }
    Ok(None)
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let attrs = collect_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);

        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;

        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after `{name}`, found {other:?}")),
        }

        // Scan the type, tracking `<`/`>` depth so commas inside generic
        // arguments do not end the field. The leading path segments (idents
        // joined by `::`, up to the first `<`) identify `Option` whether it
        // is written bare or as `std::option::Option`.
        let mut depth = 0i32;
        let mut leading_path: Vec<String> = Vec::new();
        let mut in_leading_path = true;
        while let Some(tok) = tokens.get(i) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => {
                    depth += 1;
                    in_leading_path = false;
                }
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                TokenTree::Punct(p) if p.as_char() == ':' => {}
                TokenTree::Ident(id) if in_leading_path => leading_path.push(id.to_string()),
                _ => in_leading_path = false,
            }
            i += 1;
        }
        i += 1; // past the comma (or the end)
        let is_option = leading_path.last().map(String::as_str) == Some("Option");

        let missing = match missing_policy(&attrs)? {
            Some(policy) => policy,
            None if is_option => MissingPolicy::DefaultTrait,
            None => MissingPolicy::Error,
        };
        fields.push(Field { name, missing });
    }
    Ok(fields)
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    let mut trailing_comma = false;
    for tok in &tokens {
        trailing_comma = false;
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let _attrs = collect_attrs(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;

        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Struct(parse_named_fields(g.stream())?)
            }
            _ => VariantShape::Unit,
        };

        // Skip an explicit discriminant (`= expr`) up to the next top-level comma.
        while let Some(tok) = tokens.get(i) {
            if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
            i += 1;
        }
        i += 1; // past the comma

        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// `("key".to_string(), <value expr>)` pushes for a set of named fields whose
/// values are reachable via `prefix` (`&self.` for structs, `` for bindings).
fn ser_named_fields(fields: &[Field], access: impl Fn(&str) -> String) -> String {
    let mut out = String::new();
    for f in fields {
        out.push_str(&format!(
            "__entries.push(({:?}.to_string(), ::serde::Serialize::serialize({})));\n",
            f.name,
            access(&f.name)
        ));
    }
    out
}

/// Expression deserializing a set of named fields out of `__obj` (a
/// `&serde::Value` known to be an object) into a `Name { ... }` literal body.
fn de_named_fields(type_name: &str, fields: &[Field]) -> String {
    let mut out = String::new();
    for f in fields {
        let missing = match &f.missing {
            MissingPolicy::Error => format!(
                "return ::std::result::Result::Err(::serde::Error::missing_field({type_name:?}, {:?}))",
                f.name
            ),
            MissingPolicy::DefaultTrait => "::std::default::Default::default()".to_string(),
            MissingPolicy::DefaultFn(path) => format!("{path}()"),
        };
        out.push_str(&format!(
            "{name}: match __obj.get({name_str:?}) {{\n\
             ::std::option::Option::Some(__v) => ::serde::Deserialize::deserialize(__v)?,\n\
             ::std::option::Option::None => {missing},\n\
             }},\n",
            name = f.name,
            name_str = f.name,
        ));
    }
    out
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let pushes = ser_named_fields(fields, |f| format!("&self.{f}"));
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{\n\
                 let mut __entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Object(__entries)\n\
                 }}\n}}\n"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "::serde::Serialize::serialize(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{ {body} }}\n}}\n"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n}}\n"
        ),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str({vname:?}.to_string()),\n"
                    )),
                    VariantShape::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let payload = if *arity == 1 {
                            "::serde::Serialize::serialize(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({binds}) => ::serde::Value::Object(vec![({vname:?}.to_string(), {payload})]),\n",
                            binds = binds.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let pushes = ser_named_fields(fields, |f| f.to_string());
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => {{\n\
                             let mut __entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                             {pushes}\
                             ::serde::Value::Object(vec![({vname:?}.to_string(), ::serde::Value::Object(__entries))])\n\
                             }},\n",
                            binds = binds.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}}}\n\
                 }}\n}}\n"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let body = de_named_fields(name, fields);
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 let __obj = __value;\n\
                 if __obj.as_object().is_none() {{\n\
                 return ::std::result::Result::Err(::serde::Error::custom(concat!(\"expected object for \", {name:?})));\n\
                 }}\n\
                 ::std::result::Result::Ok({name} {{\n{body}}})\n\
                 }}\n}}\n"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__value)?))")
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::deserialize(&__items[{i}])?"))
                    .collect();
                format!(
                    "let __items = __value.as_array().ok_or_else(|| ::serde::Error::custom(concat!(\"expected array for \", {name:?})))?;\n\
                     if __items.len() != {arity} {{\n\
                     return ::std::result::Result::Err(::serde::Error::custom(\"tuple struct arity mismatch\"));\n\
                     }}\n\
                     ::std::result::Result::Ok({name}({}))",
                    items.join(", ")
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
                 }}\n}}\n"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(_value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
             ::std::result::Result::Ok({name})\n\
             }}\n}}\n"
        ),
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => unit_arms.push_str(&format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    VariantShape::Tuple(arity) => {
                        let body = if *arity == 1 {
                            format!(
                                "::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::deserialize(__v)?))"
                            )
                        } else {
                            let items: Vec<String> = (0..*arity)
                                .map(|i| format!("::serde::Deserialize::deserialize(&__items[{i}])?"))
                                .collect();
                            format!(
                                "{{ let __items = __v.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array payload\"))?;\n\
                                 if __items.len() != {arity} {{ return ::std::result::Result::Err(::serde::Error::custom(\"variant arity mismatch\")); }}\n\
                                 ::std::result::Result::Ok({name}::{vname}({})) }}",
                                items.join(", ")
                            )
                        };
                        payload_arms.push_str(&format!("{vname:?} => {body},\n"));
                    }
                    VariantShape::Struct(fields) => {
                        let body = de_named_fields(&format!("{name}::{vname}"), fields);
                        payload_arms.push_str(&format!(
                            "{vname:?} => {{\n\
                             let __obj = __v;\n\
                             if __obj.as_object().is_none() {{\n\
                             return ::std::result::Result::Err(::serde::Error::custom(\"expected object payload\"));\n\
                             }}\n\
                             ::std::result::Result::Ok({name}::{vname} {{\n{body}}})\n\
                             }},\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 if let ::serde::Value::Str(__s) = __value {{\n\
                 return match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::custom(format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                 }};\n\
                 }}\n\
                 if let ::std::option::Option::Some(__entries) = __value.as_object() {{\n\
                 if __entries.len() == 1 {{\n\
                 let (__k, __v) = &__entries[0];\n\
                 return match __k.as_str() {{\n\
                 {payload_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::custom(format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                 }};\n\
                 }}\n\
                 }}\n\
                 ::std::result::Result::Err(::serde::Error::custom(concat!(\"unrecognised value for enum \", {name:?})))\n\
                 }}\n}}\n"
            )
        }
    }
}
