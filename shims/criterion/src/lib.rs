//! Offline stand-in for `criterion`.
//!
//! Implements the macro and builder surface the `first-bench` micro-benchmarks
//! use — `criterion_group!`, `criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `sample_size`/`bench_with_input`, `BenchmarkId` and
//! `Bencher::iter` — as a plain wall-clock timer. Each benchmark runs a short
//! warmup followed by the configured number of timed samples and prints
//! `name: median time/iter` to stdout. No statistics beyond min/median/max,
//! no HTML reports.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// True when `name` passes the CLI filter: as with real criterion's
/// `cargo bench -- <filter>`, any non-flag argument is a substring filter
/// and a benchmark runs when it matches at least one (or none are given).
fn should_run(name: &str) -> bool {
    let mut any_filter = false;
    let mut matched = false;
    for arg in std::env::args().skip(1) {
        if arg.starts_with('-') {
            continue;
        }
        any_filter = true;
        matched |= name.contains(arg.as_str());
    }
    !any_filter || matched
}

/// Identifier for a parameterised benchmark (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Identify a benchmark by function name and parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count,
        }
    }

    /// Time `routine`, collecting the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup: one untimed call, then calibrate iterations per sample so
        // a sample takes at least ~1ms (bounds timer noise for fast bodies).
        let warm_start = Instant::now();
        std_black_box(routine());
        let once = warm_start.elapsed();
        self.iters_per_sample = if once < Duration::from_micros(50) {
            (Duration::from_millis(1).as_nanos() / once.as_nanos().max(1)) as u64
        } else {
            1
        }
        .max(1);

        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std_black_box(routine());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("bench {name}: no samples");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        println!(
            "bench {name}: median {median:?}/iter (min {:?}, max {:?}, {} samples x {} iters)",
            sorted[0],
            sorted[sorted.len() - 1],
            sorted.len(),
            self.iters_per_sample,
        );
    }
}

/// A named collection of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{id}", self.name);
        if !should_run(&full) {
            return self;
        }
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        bencher.report(&full);
        self
    }

    /// Run a benchmark without a parameter.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{name}", self.name);
        if !should_run(&full) {
            return self;
        }
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(&full);
        self
    }

    /// Finish the group (no-op in the shim; exists for API parity).
    pub fn finish(self) {}
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if !should_run(name) {
            return self;
        }
        let mut bencher = Bencher::new(10);
        f(&mut bencher);
        bencher.report(name);
        self
    }
}

/// Collect benchmark functions into a single runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
