//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors a minimal serialization framework under the same
//! crate name. It intentionally implements only what the FIRST codebase
//! uses:
//!
//! * `#[derive(Serialize, Deserialize)]` on non-generic structs and enums
//!   (named fields, newtype/tuple structs, unit/tuple/struct enum variants),
//! * the `#[serde(default)]` and `#[serde(default = "path")]` field
//!   attributes,
//! * implicit `None` for missing `Option<T>` fields,
//! * externally-tagged enum representation (the serde default).
//!
//! Unlike real serde there is no `Serializer`/`Deserializer` abstraction:
//! values serialize into the [`Value`] tree, and `serde_json` (also
//! vendored) renders that tree to and from JSON text.

#![warn(missing_docs)]

// Let the `::serde::...` paths the derive macros emit resolve when the
// derives are used inside this crate (e.g. in its own tests).
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

/// A self-describing value tree — the data model every `Serialize` impl
/// produces and every `Deserialize` impl consumes.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// UTF-8 string.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Key/value map in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the object entries, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrow the array elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrow the string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as `u64`, if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(u) => Some(u),
            Value::I64(i) if i >= 0 => Some(i as u64),
            // `u64::MAX as f64` rounds up to 2^64, which is out of range, so
            // the bound must be strict.
            Value::F64(f) if f >= 0.0 && f.fract() == 0.0 && f < u64::MAX as f64 => Some(f as u64),
            _ => None,
        }
    }

    /// Numeric value as `i64`, if losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(i) => Some(i),
            Value::U64(u) if u <= i64::MAX as u64 => Some(u as i64),
            // `i64::MIN as f64` is exactly -2^63 (in range) but `i64::MAX as
            // f64` rounds up to 2^63 (out of range), hence `>=` vs `<`.
            Value::F64(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f < i64::MAX as f64 => {
                Some(f as i64)
            }
            _ => None,
        }
    }

    /// Numeric value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(f) => Some(f),
            Value::I64(i) => Some(i as f64),
            Value::U64(u) => Some(u as f64),
            _ => None,
        }
    }

    /// Boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Error produced when a [`Value`] cannot be converted into the requested
/// Rust type (or, in `serde_json`, when the input text is not valid JSON).
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Build an error with a custom message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }

    /// Error for a field absent from the input.
    pub fn missing_field(type_name: &str, field: &str) -> Self {
        Error::custom(format!("missing field `{field}` for {type_name}"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into the [`Value`] data model.
pub trait Serialize {
    /// Convert `self` into a value tree.
    fn serialize(&self) -> Value;
}

/// Types that can be reconstructed from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Convert a value tree into `Self`.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! impl_ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let u = value.as_u64().ok_or_else(|| {
                    Error::custom(concat!("expected unsigned integer for ", stringify!($t)))
                })?;
                <$t>::try_from(u).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let i = value.as_i64().ok_or_else(|| {
                    Error::custom(concat!("expected integer for ", stringify!($t)))
                })?;
                <$t>::try_from(i).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_ser_de_uint!(u8, u16, u32, u64, usize);
impl_ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::custom("expected number for f64"))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::custom("expected number for f32"))
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::custom("expected boolean"))
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::custom("expected string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        T::deserialize(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for HashSet<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

/// Map key types, rendered as JSON object keys (strings).
pub trait MapKey: Sized {
    /// Render the key as a string.
    fn to_key(&self) -> String;
    /// Parse the key back from a string.
    fn from_key(key: &str) -> Result<Self, Error>;
}

impl<T: Serialize + Deserialize> MapKey for T {
    fn to_key(&self) -> String {
        match self.serialize() {
            Value::Str(s) => s,
            Value::U64(u) => u.to_string(),
            Value::I64(i) => i.to_string(),
            Value::F64(f) => f.to_string(),
            Value::Bool(b) => b.to_string(),
            other => panic!("map keys must serialize to strings or numbers, got {other:?}"),
        }
    }

    fn from_key(key: &str) -> Result<Self, Error> {
        if let Ok(v) = T::deserialize(&Value::Str(key.to_string())) {
            return Ok(v);
        }
        if let Ok(u) = key.parse::<u64>() {
            if let Ok(v) = T::deserialize(&Value::U64(u)) {
                return Ok(v);
            }
        }
        if let Ok(i) = key.parse::<i64>() {
            if let Ok(v) = T::deserialize(&Value::I64(i)) {
                return Ok(v);
            }
        }
        if let Ok(f) = key.parse::<f64>() {
            if let Ok(v) = T::deserialize(&Value::F64(f)) {
                return Ok(v);
            }
        }
        if let Ok(b) = key.parse::<bool>() {
            if let Ok(v) = T::deserialize(&Value::Bool(b)) {
                return Ok(v);
            }
        }
        Err(Error::custom(format!("cannot parse map key `{key}`")))
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.serialize()))
                .collect(),
        )
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::deserialize(v)?)))
            .collect()
    }
}

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.serialize()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::deserialize(v)?)))
            .collect()
    }
}

macro_rules! impl_ser_de_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let items = value.as_array().ok_or_else(|| Error::custom("expected array for tuple"))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom("tuple arity mismatch"));
                }
                Ok(($($name::deserialize(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_ser_de_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_null_roundtrip() {
        assert_eq!(Option::<u32>::deserialize(&Value::Null).unwrap(), None);
        assert_eq!(Some(3u32).serialize(), Value::U64(3));
    }

    #[test]
    fn tuple_roundtrip() {
        let v = (1u32, 2.5f64).serialize();
        let back = <(u32, f64)>::deserialize(&v).unwrap();
        assert_eq!(back, (1, 2.5));
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(u32::deserialize(&Value::I64(7)).unwrap(), 7);
        assert_eq!(f64::deserialize(&Value::U64(2)).unwrap(), 2.0);
        assert!(u8::deserialize(&Value::U64(300)).is_err());
    }

    #[test]
    fn float_boundary_values_do_not_saturate() {
        // 2^64 and 2^63 are exactly representable floats but out of range for
        // u64/i64; they must error rather than silently saturate to MAX.
        assert!(u64::deserialize(&Value::F64(18_446_744_073_709_551_616.0)).is_err());
        assert!(i64::deserialize(&Value::F64(9_223_372_036_854_775_808.0)).is_err());
        // i64::MIN (-2^63) is exactly representable and in range.
        assert_eq!(
            i64::deserialize(&Value::F64(-9_223_372_036_854_775_808.0)).unwrap(),
            i64::MIN
        );
    }

    #[test]
    fn qualified_option_field_defaults_to_none_when_missing() {
        #[derive(Serialize, Deserialize, PartialEq, Debug)]
        struct WithQualifiedOption {
            present: u32,
            bare: Option<u32>,
            qualified: std::option::Option<u32>,
        }

        let v = Value::Object(vec![("present".to_string(), Value::U64(1))]);
        let got = WithQualifiedOption::deserialize(&v).unwrap();
        assert_eq!(
            got,
            WithQualifiedOption {
                present: 1,
                bare: None,
                qualified: None
            }
        );
    }
}
