//! Offline stand-in for `proptest`.
//!
//! Supports the subset the workspace's property tests use: the [`proptest!`]
//! macro (with an optional `#![proptest_config(...)]` header), range and
//! tuple strategies, `prop_map`, [`Just`], [`prop_oneof!`],
//! `proptest::collection::vec`, and the `prop_assert!`/`prop_assert_eq!`
//! macros. Cases are generated from a deterministic seed; there is **no
//! shrinking** — a failing case panics with the case number so it can be
//! reproduced by rerunning the (deterministic) test.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// The error carried by a failed `prop_assert!` — a message describing the
/// violated property.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; keep the shim a bit lighter so the
        // suite stays fast under `cargo test`.
        ProptestConfig { cases: 128 }
    }
}

/// The RNG handed to strategies while generating a case.
pub type TestRng = StdRng;

/// A generator of random values of type `Self::Value`.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// simply produces a value from the test RNG.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Box this strategy for use in heterogeneous collections
    /// (e.g. [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen_fn: Box::new(move |rng| self.generate(rng)),
        }
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    gen_fn: Box<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen_fn)(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies; built by [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Choose uniformly among `options`.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generate vectors whose elements come from `element` and whose length
    /// is uniform in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.len.is_empty() {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Deterministic per-test RNG seed: proptest runs are reproducible, and a
/// reported failing case number identifies the exact inputs.
pub fn new_test_rng(case: u32) -> TestRng {
    TestRng::seed_from_u64(0xF1857_u64 ^ ((case as u64) << 32 | 0x9E3779B9))
}

/// Define property tests. Mirrors proptest's macro shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0u64..100, ys in proptest::collection::vec(0u32..9, 1..20)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::new_test_rng(__case);
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(__e) = __result {
                    panic!(
                        "property `{}` failed at case {}/{}: {}",
                        stringify!($name), __case, __config.cases, __e
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Assert a property inside `proptest!`; failure aborts the case with a
/// message instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert two expressions are equal inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
}

/// Assert two expressions are unequal inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if !(__l != __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}` (both: `{:?}`)",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

/// Choose uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0.5f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.5..2.5).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_range(v in collection::vec(0u32..5, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn oneof_and_map_compose(op in prop_oneof![
            (0u32..4).prop_map(|x| x as u64),
            Just(99u64),
        ]) {
            prop_assert!(op < 4 || op == 99);
        }
    }
}
