//! Offline stand-in for the `rand` crate.
//!
//! Implements the small slice of the rand 0.8 API the simulator uses —
//! `StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen` for `u64`/`u32`/`f64`
//! and `Rng::gen_range` over integer ranges — on top of a xoshiro256++
//! generator seeded via SplitMix64. Deterministic given a seed, `Clone` and
//! `Debug` like the real `StdRng`, and statistically strong enough for the
//! workload/performance models (the seed tests assert distribution means).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Types constructible from raw 64-bit RNG output.
pub trait FromRandom {
    /// Draw one value from `rng`.
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl FromRandom for u64 {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRandom for u32 {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRandom for f64 {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRandom for bool {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u128 + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + (self.end - self.start) * f64::from_random(rng)
    }
}

/// Core 64-bit generator interface.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of type `T` (uniform over its natural support).
    fn gen<T: FromRandom>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_random(self)
    }

    /// Draw a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::from_random(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Generators constructible from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNG types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with SplitMix64, as rand_xoshiro does.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [ref mut s0, ref mut s1, ref mut s2, ref mut s3] = self.state;
            let result = s0.wrapping_add(*s3).rotate_left(23).wrapping_add(*s0);
            let t = *s1 << 17;
            *s2 ^= *s0;
            *s3 ^= *s1;
            *s1 ^= *s2;
            *s0 ^= *s3;
            *s2 ^= t;
            *s3 = s3.rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn gen_range_inclusive_hits_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..=3)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
