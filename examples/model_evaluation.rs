//! Model evaluation and comparison (case study §6.1): benchmark a suite of
//! hosted models against the same prompt set through the gateway, swapping
//! models instantly without any manual redeployment.
//!
//! Run with: `cargo run --release --example model_evaluation`

use first::core::{ChatCompletionRequest, DeploymentBuilder};
use first::desim::{SimProcess, SimTime};
use first::workload::ShareGptGenerator;

fn main() {
    // Host a spread of model sizes on the full Sophia deployment.
    let (mut gateway, tokens) = DeploymentBuilder::sophia().prewarm(1).build_with_tokens();

    let evaluated_models = [
        "meta-llama/Meta-Llama-3.1-8B-Instruct",
        "google/gemma-2-27b-it",
        "Qwen/Qwen2.5-32B-Instruct",
        "meta-llama/Llama-3.3-70B-Instruct",
        "argonne-private/AuroraGPT-7B",
    ];
    let prompts_per_model = 40usize;
    let mut generator = ShareGptGenerator::new(99).with_text();

    println!(
        "evaluating {} models x {} prompts each through the gateway",
        evaluated_models.len(),
        prompts_per_model
    );

    let mut clock = SimTime::ZERO;
    println!(
        "\n{:<46} {:>8} {:>12} {:>14} {:>12}",
        "model", "prompts", "tokens out", "median lat (s)", "tok/s"
    );
    for model in evaluated_models {
        // Submit the evaluation set for this model.
        let mut ids = Vec::new();
        for i in 0..prompts_per_model {
            let sample = generator.sample();
            let req = ChatCompletionRequest::simple(
                model,
                &format!("[eval {i}] {}", sample.prompt_text),
                sample.output_tokens.max(16),
            );
            let at = clock + first::desim::SimDuration::from_millis(200 * i as u64);
            // AuroraGPT is group-restricted: alice has access.
            if let Ok(id) =
                gateway.chat_completions(&req, &tokens.alice, Some(sample.output_tokens), at)
            {
                ids.push(id);
            }
        }
        // Drain this model's evaluation before moving to the next one — the
        // "instant swap" is just targeting a different model name.
        let mut now = clock;
        while let Some(t) = SimProcess::next_event_time(&gateway) {
            now = t;
            gateway.advance(now);
            if gateway.is_drained() {
                break;
            }
        }
        let responses = gateway.take_responses();
        let mut latencies: Vec<f64> = responses
            .iter()
            .filter(|r| ids.contains(&r.request_id) && r.success)
            .map(|r| r.latency().as_secs_f64())
            .collect();
        latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let tokens_out: u64 = responses
            .iter()
            .filter(|r| ids.contains(&r.request_id))
            .map(|r| r.usage.completion_tokens as u64)
            .sum();
        let span = responses
            .iter()
            .map(|r| r.finished_at.as_secs_f64())
            .fold(0.0f64, f64::max)
            - clock.as_secs_f64();
        let median = latencies.get(latencies.len() / 2).copied().unwrap_or(0.0);
        println!(
            "{:<46} {:>8} {:>12} {:>14.1} {:>12.1}",
            model,
            latencies.len(),
            tokens_out,
            median,
            tokens_out as f64 / span.max(1e-9)
        );
        clock = now + first::desim::SimDuration::from_secs(60);
    }

    println!("\n== per-model usage recorded by the gateway ==");
    for (model, summary) in gateway.log().usage_by_model() {
        println!(
            "  {:<46} {:>6} requests {:>10} tokens",
            model, summary.requests, summary.total_tokens
        );
    }
    println!(
        "\nTotal requests logged: {} (model swaps required no redeployment, matching §6.1).",
        gateway.log().len()
    );
}
