//! Streaming chat (§4.7): send interactive chat completions through the
//! gateway, then replay each response as the stream of server-sent chunks the
//! web interface would deliver, reporting time-to-first-token and inter-token
//! latency alongside the end-to-end numbers.
//!
//! Run with: `cargo run --release --example streaming_chat`

use first::core::{
    stream_response, ChatCompletionRequest, DeploymentBuilder, StreamStats, StreamingConfig,
};
use first::desim::{SimProcess, SimTime};
use first::serving::{find_model, PerfModel};

const MODEL: &str = "meta-llama/Llama-3.3-70B-Instruct";

fn main() {
    // A warm single-cluster deployment: the interactive, low-latency path.
    let (mut gateway, tokens) = DeploymentBuilder::single_cluster_test()
        .prewarm(1)
        .build_with_tokens();

    let prompts = [
        ("Explain the PBS job lifecycle on Sophia.", 180),
        (
            "Draft an abstract about federated inference on HPC clusters.",
            260,
        ),
        (
            "List three ways PagedAttention reduces KV-cache fragmentation.",
            140,
        ),
        (
            "What does a cold start involve for a 405B parameter model?",
            220,
        ),
        ("Compare batch mode and interactive mode in FIRST.", 200),
    ];
    for (i, (prompt, output_tokens)) in prompts.iter().enumerate() {
        let request = ChatCompletionRequest::simple(MODEL, prompt, 512);
        gateway
            .chat_completions(
                &request,
                &tokens.alice,
                Some(*output_tokens),
                SimTime::from_secs(i as u64 * 3),
            )
            .expect("request accepted");
    }

    // Drive the simulation to completion.
    let mut now = SimTime::ZERO;
    while let Some(t) = SimProcess::next_event_time(&gateway) {
        now = t.max(now);
        gateway.advance(now);
        if gateway.is_drained() {
            break;
        }
    }

    // Reconstruct the streaming delivery of every response.
    let spec = find_model("llama-70b").expect("catalog model");
    let perf = PerfModel::default();
    let config = StreamingConfig::for_model(&spec);
    let mut stats = StreamStats::new();

    println!("== streamed responses ==");
    for response in gateway.take_responses() {
        let stream = stream_response(&response, &spec, &perf, &config);
        println!(
            "request {:>2}: {:>3} tokens, TTFT {:>5.2} s, mean ITL {:>5.1} ms, total {:>5.2} s, {} chunks",
            stream.request_id,
            stream.output_tokens(),
            stream.ttft().as_secs_f64(),
            stream.mean_inter_token_latency() * 1000.0,
            stream.total_latency().as_secs_f64(),
            stream.chunks.len(),
        );
        // Show the first few chunks of the first response as a timeline.
        if stream.request_id == 1 {
            for chunk in stream.chunks.iter().take(5) {
                println!(
                    "    chunk {:>3} (+{} tok) delivered at t={:.3} s",
                    chunk.index,
                    chunk.tokens,
                    chunk.at.as_secs_f64()
                );
            }
            println!("    ...");
        }
        stats.record(&stream);
    }

    println!("\n== interactive-experience summary ==");
    println!("{}", stats.summary());
}
