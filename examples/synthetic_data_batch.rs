//! Synthetic data generation with batch mode (case study §6.3): build a JSON
//! Lines batch file of 10 000 generation requests, submit it to `/v1/batches`,
//! and compare the dedicated-job turnaround against a manual deployment.
//!
//! Run with: `cargo run --release --example synthetic_data_batch`

use first::core::{BatchManager, BatchState, DeploymentBuilder};
use first::desim::{SimDuration, SimTime};
use first::workload::BatchInputFile;

const MODEL: &str = "meta-llama/Llama-3.3-70B-Instruct";

fn main() {
    // 1. Build the batch input file the user would upload (JSON Lines).
    let requests = 10_000;
    let input = BatchInputFile::synthetic(MODEL, requests, 7);
    let jsonl = input.to_jsonl();
    let (prompt_tokens, output_tokens) = input.token_estimate();
    println!(
        "built batch input: {} requests, ~{} prompt tokens, ~{} output tokens, {} bytes of JSONL",
        input.len(),
        prompt_tokens,
        output_tokens,
        jsonl.len()
    );
    // Round-trip through the wire format, as the gateway would.
    let parsed = BatchInputFile::from_jsonl(&jsonl).expect("file parses");
    assert_eq!(parsed.len(), requests);

    // 2. Submit through the batch manager; the job gets a dedicated allocation.
    let (mut gateway, _tokens) = DeploymentBuilder::sophia_single_instance().build_with_tokens();
    let mut batches = BatchManager::new();
    let id = batches.submit(&mut gateway, "alice", MODEL, &parsed, SimTime::ZERO);
    println!(
        "\nsubmitted batch {:?}; initial state: {:?}",
        id,
        batches.job(id).unwrap().state
    );

    // 3. Poll the batch status as a user monitoring a long-running job would.
    for hours in [1u64, 2, 4, 8, 16, 24] {
        batches.advance(&mut gateway, SimTime::ZERO + SimDuration::from_hours(hours));
        let job = batches.job(id).unwrap();
        println!("after {hours:>2} h: {:?}", job.state);
        if job.state == BatchState::Completed {
            break;
        }
    }

    let job = batches.job(id).unwrap();
    let report = job.report.as_ref().expect("report available");
    println!("\n== batch report ==");
    println!("requests:            {}", report.requests);
    println!("output tokens:       {}", report.output_tokens);
    println!(
        "model load time:     {:.1} s",
        report.load_time.as_secs_f64()
    );
    println!(
        "total duration:      {:.1} h",
        report.total_duration.as_secs_f64() / 3600.0
    );
    println!(
        "overall throughput:  {:.0} tok/s",
        report.overall_tokens_per_sec
    );
    println!(
        "steady throughput:   {:.0} tok/s",
        report.steady_tokens_per_sec
    );
    println!(
        "turnaround (submit → complete): {:.1} h",
        job.turnaround().unwrap().as_secs_f64() / 3600.0
    );

    // 4. The §6.3 comparison: the same campaign with a manually provisioned
    //    deployment costs roughly an extra day of setup/teardown per iteration.
    let manual_overhead = SimDuration::from_hours(24);
    let manual_total = report.total_duration + manual_overhead;
    println!(
        "\nestimated manual-deployment turnaround: {:.1} h (vs {:.1} h via FIRST batch mode)",
        manual_total.as_secs_f64() / 3600.0,
        job.turnaround().unwrap().as_secs_f64() / 3600.0
    );
    println!("batch mode lets the researchers iterate on data-generation strategies daily.");
}
