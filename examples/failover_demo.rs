//! Failover demo: kill the primary cluster mid-stream and watch the
//! federation keep serving.
//!
//! A federated Sophia+Polaris deployment runs with the production resilience
//! profile (failover-aware routing, retries, hedging, circuit breaker). A
//! steady stream of chat completions flows in; thirty seconds in, a fault
//! plan takes the whole Sophia cluster down. In-flight requests fail, are
//! retried on Polaris and complete; the circuit breaker opens so fresh
//! traffic routes straight to the secondary; the dashboard and the
//! sustained-unavailability alert reflect the outage.
//!
//! Run with: `cargo run --release --example failover_demo`

use first::chaos::{FaultInjector, FaultPlan, ResilienceConfig};
use first::core::{ChatCompletionRequest, DeploymentBuilder};
use first::desim::{SimDuration, SimProcess, SimTime};

const MODEL: &str = "meta-llama/Llama-3.3-70B-Instruct";

fn main() {
    let (mut gateway, tokens) = DeploymentBuilder::federated_sophia_polaris()
        .prewarm(1)
        .resilience(ResilienceConfig::production())
        .build_with_tokens();

    // The fault plan: Sophia — the primary site, first in configuration
    // order — goes down completely at t=30 s for two minutes.
    let outage_at = SimTime::from_secs(30);
    let plan = FaultPlan::cluster_outage("sophia-endpoint", outage_at, SimDuration::from_secs(120));
    let mut injector = FaultInjector::new(plan);

    // A request every two seconds for a minute, so several are mid-flight on
    // Sophia when the cluster dies.
    let n = 30u64;
    for i in 0..n {
        let request =
            ChatCompletionRequest::simple(MODEL, &format!("failover demo question {i}"), 256);
        gateway
            .chat_completions(
                &request,
                &tokens.alice,
                Some(160),
                SimTime::from_secs(i * 2),
            )
            .expect("request accepted");
    }

    // Drive the deployment, merging gateway and fault-plan events, and
    // evaluate the alert pack as an operator's monitoring stack would.
    let mut alerting = gateway.alerting();
    let mut fired = Vec::new();
    let mut now = SimTime::ZERO;
    let mut next_scrape = SimTime::ZERO;
    while let Some(step) = injector.next_event_merged(&gateway) {
        now = now.max(step);
        for applied in injector.apply_due(gateway.service_mut(), now) {
            println!(
                "t={:>5.1}s  !! fault injected: {} on {}",
                applied.at.as_secs_f64(),
                applied.fault,
                applied.endpoint.as_deref().unwrap_or("-")
            );
        }
        gateway.advance(now);
        // Scrape metrics and evaluate alerts every ~10 simulated seconds.
        if now >= next_scrape {
            let registry = gateway.export_metrics(now);
            fired.extend(alerting.evaluate(&registry, now));
            next_scrape = now + SimDuration::from_secs(10);
        }
        if gateway.is_drained() {
            break;
        }
    }
    // The monitoring stack keeps scraping after traffic stops; the
    // sustained-unavailability rule fires once the breaker has been open for
    // its hold window.
    for _ in 0..4 {
        now += SimDuration::from_secs(10);
        gateway.advance(now);
        let registry = gateway.export_metrics(now);
        fired.extend(alerting.evaluate(&registry, now));
    }

    // Who served what, before and after the outage?
    let mut before = (0u32, 0u32);
    let mut after = (0u32, 0u32);
    for entry in gateway.log().entries().iter().filter(|e| e.success) {
        let bucket = if entry.arrived_at < outage_at {
            &mut before
        } else {
            &mut after
        };
        match entry.endpoint.as_str() {
            "sophia-endpoint" => bucket.0 += 1,
            "polaris-endpoint" => bucket.1 += 1,
            _ => {}
        }
    }
    let responses = gateway.take_responses();
    let completed = responses.iter().filter(|r| r.success).count();
    println!("\n== outcome ==");
    println!(
        "offered {n}, completed {completed}, lost {}",
        n as usize - completed
    );
    println!("before outage:  sophia={} polaris={}", before.0, before.1);
    println!("during/after:   sophia={} polaris={}", after.0, after.1);

    // The dashboard shows the breaker trip and the failovers.
    let snapshot = gateway.dashboard_snapshot(now);
    println!("\n{}", snapshot.render_text());

    println!("== alerts fired ==");
    if fired.is_empty() {
        println!("(none)");
    } else {
        for alert in &fired {
            println!(
                "t={:>5.1}s  {:?}: {} (value {:.0})",
                alert.fired_at.as_secs_f64(),
                alert.severity,
                alert.rule,
                alert.value
            );
        }
    }

    assert_eq!(completed, n as usize, "failover must not lose requests");
    assert!(
        snapshot.breaker_trips >= 1,
        "the outage should trip the circuit breaker"
    );
}
