//! Monitoring dashboard (§3.1.1, §7): run a burst of traffic through a
//! federated deployment, then render the operations dashboard, export the
//! metric registry in Prometheus text format, and evaluate the default alert
//! pack — the view an administrator has of a live FIRST installation.
//!
//! Run with: `cargo run --release --example monitoring_dashboard`

use first::core::{ChatCompletionRequest, DeploymentBuilder, EmbeddingRequest, Gateway};
use first::desim::{SimProcess, SimTime};
use first::telemetry::render_prometheus;

const CHAT_MODEL: &str = "meta-llama/Llama-3.3-70B-Instruct";
const SMALL_MODEL: &str = "meta-llama/Meta-Llama-3.1-8B-Instruct";

fn main() {
    // The paper's federated proof of concept: Sophia plus Polaris.
    let (mut gateway, tokens) = DeploymentBuilder::federated_sophia_polaris()
        .prewarm(1)
        .build_with_tokens();

    // A mixed interactive workload: two users, two chat models, a few
    // embedding calls, arriving over five simulated minutes.
    for i in 0..40u64 {
        let (model, output) = if i % 3 == 0 {
            (SMALL_MODEL, 120)
        } else {
            (CHAT_MODEL, 200)
        };
        let token = if i % 4 == 0 {
            &tokens.bob
        } else {
            &tokens.alice
        };
        let request = ChatCompletionRequest::simple(
            model,
            &format!("dashboard demo question number {i}"),
            512,
        );
        gateway
            .chat_completions(&request, token, Some(output), SimTime::from_secs(i * 7))
            .expect("chat accepted");
    }
    for i in 0..5u64 {
        let request = EmbeddingRequest {
            model: "nvidia/NV-Embed-v2".to_string(),
            input: vec![format!("hpc manual chunk {i}")],
        };
        // The embedding model is hosted on the Sophia endpoint only.
        let _ = gateway.embeddings(&request, &tokens.alice, SimTime::from_secs(30 + i * 11));
    }

    // Drive the deployment until everything has been answered.
    let mut now = SimTime::ZERO;
    while let Some(t) = SimProcess::next_event_time(&gateway) {
        now = t.max(now);
        gateway.advance(now);
        if gateway.is_drained() {
            break;
        }
    }

    // 1. The operations dashboard.
    let snapshot = gateway.dashboard_snapshot(now);
    println!("{}", snapshot.render_text());
    println!(
        "success ratio {:.1}%, hot models: {}",
        snapshot.success_ratio() * 100.0,
        snapshot
            .hot_models()
            .map(|m| m.model.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );

    // 2. The Prometheus-style exposition the facility monitoring stack scrapes.
    let registry = gateway.export_metrics(now);
    let exposition = render_prometheus(&registry.snapshot());
    println!("\n== metrics exposition (excerpt) ==");
    for line in exposition
        .lines()
        .filter(|l| !l.contains("_bucket"))
        .take(30)
    {
        println!("{line}");
    }
    println!("... ({} lines total)", exposition.lines().count());

    // 3. The default alert pack.
    let mut alerting = Gateway::default_alerting();
    let fired = alerting.evaluate(&registry, now);
    println!("\n== alerts ==");
    if fired.is_empty() {
        println!(
            "all {} rules quiet — deployment healthy",
            alerting.rule_count()
        );
    } else {
        for alert in fired {
            println!(
                "{:?}: {} (value {:.0})",
                alert.severity, alert.rule, alert.value
            );
        }
    }
}
