//! Monitoring dashboard (§3.1.1, §7): run a burst of traffic through a
//! federated deployment, then render the operations dashboard, export the
//! metric registry in Prometheus text format, and evaluate the alert pack —
//! the view an administrator has of a live FIRST installation.
//!
//! Run with: `cargo run --release --example monitoring_dashboard`
//!
//! Set `FIRST_DEMO_FAULTS=1` to activate a fault plan (a Sophia endpoint
//! outage mid-run): the health column degrades, the resilience counters move,
//! and the sustained-unavailability alert fires. Without the variable the
//! same rules stay silent.
//!
//! Set `FIRST_DEMO_TRACE=1` to re-run the contention scenario with the
//! flight recorder sampling every request: the per-phase latency table
//! prints, and the sampled span trees are written to `trace_export.json` in
//! Chrome-trace format (open it in chrome://tracing or ui.perfetto.dev).
//!
//! The second half runs the scenario catalog's multi-tenant contention
//! scenario and shows its per-tenant partition: the SLO attainment table
//! from the `GatewayReport` and the `first_tenant_*` counters on the
//! exported registry. The run is recorded as a cassette, replayed
//! byte-identically, and the dashboard's `-- replay --` banner shows what an
//! operator sees when the traffic on screen is a recording, not live users.

use first::chaos::{FaultInjector, FaultKind, FaultPlan, ResilienceConfig};
use first::core::{
    replay_dashboard_cell, ChatCompletionRequest, DeploymentBuilder, EmbeddingRequest, ScenarioRun,
};
use first::desim::{SimDuration, SimProcess, SimTime};
use first::telemetry::{chrome_trace_json, render_prometheus, TraceConfig};
use first::workload::catalog;

const CHAT_MODEL: &str = "meta-llama/Llama-3.3-70B-Instruct";
const SMALL_MODEL: &str = "meta-llama/Meta-Llama-3.1-8B-Instruct";

fn main() {
    let chaos_active = std::env::var("FIRST_DEMO_FAULTS")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false);

    // The paper's federated proof of concept: Sophia plus Polaris, hardened
    // with the production resilience profile.
    let (mut gateway, tokens) = DeploymentBuilder::federated_sophia_polaris()
        .prewarm(1)
        .resilience(ResilienceConfig::production())
        .build_with_tokens();

    // With FIRST_DEMO_FAULTS set, the Sophia endpoint drops off the network
    // for 90 s in the middle of the run.
    let plan = if chaos_active {
        FaultPlan::none().with(
            SimTime::from_secs(60),
            FaultKind::EndpointFlap {
                endpoint: "sophia-endpoint".to_string(),
                down_for: SimDuration::from_secs(90),
            },
        )
    } else {
        FaultPlan::none()
    };
    let mut injector = FaultInjector::new(plan);

    // A mixed interactive workload: two users, two chat models, a few
    // embedding calls, arriving over five simulated minutes. The embedding
    // model is hosted on Sophia only, so during the outage those calls have
    // nowhere to fail over to.
    for i in 0..40u64 {
        let (model, output) = if i % 3 == 0 {
            (SMALL_MODEL, 120)
        } else {
            (CHAT_MODEL, 200)
        };
        let token = if i % 4 == 0 {
            &tokens.bob
        } else {
            &tokens.alice
        };
        let request = ChatCompletionRequest::simple(
            model,
            &format!("dashboard demo question number {i}"),
            512,
        );
        gateway
            .chat_completions(&request, token, Some(output), SimTime::from_secs(i * 7))
            .expect("chat accepted");
    }
    for i in 0..5u64 {
        let request = EmbeddingRequest {
            model: "nvidia/NV-Embed-v2".to_string(),
            input: vec![format!("hpc manual chunk {i}")],
        };
        let _ = gateway.embeddings(&request, &tokens.alice, SimTime::from_secs(70 + i * 11));
    }

    // Drive the deployment until everything has been answered, scraping the
    // metric registry and evaluating the alert pack every ~10 s as the
    // facility monitoring stack would.
    let mut alerting = gateway.alerting();
    let mut fired = Vec::new();
    let mut now = SimTime::ZERO;
    let mut next_scrape = SimTime::ZERO;
    while let Some(step) = injector.next_event_merged(&gateway) {
        now = now.max(step);
        injector.apply_due(gateway.service_mut(), now);
        gateway.advance(now);
        if now >= next_scrape {
            let registry = gateway.export_metrics(now);
            fired.extend(alerting.evaluate(&registry, now));
            next_scrape = now + SimDuration::from_secs(10);
        }
        if gateway.is_drained() {
            break;
        }
    }

    // 1. The operations dashboard.
    let snapshot = gateway.dashboard_snapshot(now);
    println!("{}", snapshot.render_text());
    println!(
        "success ratio {:.1}%, hot models: {}",
        snapshot.success_ratio() * 100.0,
        snapshot
            .hot_models()
            .map(|m| m.model.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );

    // 2. The Prometheus-style exposition the facility monitoring stack scrapes.
    let registry = gateway.export_metrics(now);
    let exposition = render_prometheus(&registry.snapshot());
    println!("\n== metrics exposition (excerpt) ==");
    for line in exposition
        .lines()
        .filter(|l| !l.contains("_bucket"))
        .take(30)
    {
        println!("{line}");
    }
    println!("... ({} lines total)", exposition.lines().count());

    // The harness-health gauges the bench artifacts also record: how fast
    // the simulation itself ran while producing everything above.
    let (wall_s, events, events_per_sec) = gateway.harness_health();
    println!(
        "\nharness health: wall {wall_s:.3}s, {events} sim events ({events_per_sec:.0} events/s)"
    );

    // 3. The alert pack: the default rules plus one sustained-unavailability
    // rule per endpoint. Quiet on a healthy run; the endpoint rule fires when
    // the fault plan is active.
    println!("\n== alerts ==");
    if fired.is_empty() {
        println!(
            "all {} rules quiet — deployment healthy{}",
            alerting.rule_count(),
            if chaos_active {
                " (unexpected with FIRST_DEMO_FAULTS set)"
            } else {
                " (set FIRST_DEMO_FAULTS=1 to watch the outage alert fire)"
            }
        );
    } else {
        for alert in &fired {
            println!(
                "t={:>5.1}s  {:?}: {} (value {:.0})",
                alert.fired_at.as_secs_f64(),
                alert.severity,
                alert.rule,
                alert.value
            );
        }
    }
    assert_eq!(
        chaos_active,
        !fired.is_empty(),
        "alerts fire exactly when the fault plan is active"
    );

    // 4. The per-tenant view: replay the scenario catalog's multi-tenant
    // contention scenario and show how the dashboard and metric export
    // partition by tenant class. Each tenant class runs as its own auth
    // user, so the request log, the `-- tenants --` dashboard section and
    // the `first_tenant_*` counters line up with the SLO table for free.
    let spec = catalog(120)
        .into_iter()
        .find(|s| s.name == "multi-tenant-contention")
        .expect("catalog scenario present");
    let out = ScenarioRun::new(&spec)
        .seed(42)
        .recorded()
        .execute()
        .expect("open-loop catalog scenario records");
    let (report, cassette) = (out.report, out.cassette.expect("recorded"));
    println!("\n== scenario matrix: per-tenant SLO attainment ==");
    print!("{}", report.render_text());
    assert!(report.tenants.len() >= 3, "three tenant classes reported");

    // Per-tenant counters as the facility monitoring stack would scrape
    // them. (A fresh small deployment here, just to show the exposition.)
    let tenant_lines: Vec<String> = {
        let (mut gw, tokens) = DeploymentBuilder::single_cluster_test()
            .prewarm(1)
            .build_with_tokens();
        for (i, token) in [&tokens.alice, &tokens.bob].into_iter().enumerate() {
            let req = ChatCompletionRequest::simple(SMALL_MODEL, &format!("tenant demo {i}"), 64);
            gw.chat_completions(&req, token, Some(32), SimTime::from_secs(i as u64))
                .expect("accepted");
        }
        let mut now = SimTime::ZERO;
        while let Some(t) = SimProcess::next_event_time(&gw) {
            now = now.max(t);
            gw.advance(now);
            if gw.is_drained() {
                break;
            }
        }
        let exposition = render_prometheus(&gw.export_metrics(now).snapshot());
        exposition
            .lines()
            .filter(|l| l.contains("first_tenant_"))
            .map(str::to_string)
            .collect()
    };
    println!("\n== per-tenant exposition ==");
    for line in &tenant_lines {
        println!("{line}");
    }
    assert!(
        tenant_lines.iter().any(|l| l.contains("alice")),
        "per-tenant counters exported"
    );
    // SLO summary line for the operators' morning glance.
    println!(
        "\nSLO attainment: {}/{} tenant classes met their targets",
        report.slo_attained_tenants,
        report.tenants.len()
    );

    // 5. Replay mode. The scenario run above was recorded as a cassette;
    // replaying it reproduces the report byte-for-byte, and a dashboard
    // serving a replay carries the `-- replay --` banner so nobody mistakes
    // a recording for live traffic.
    let replayed = ScenarioRun::replay(&cassette)
        .expect("cassette compiles")
        .execute()
        .expect("cassette replays")
        .report;
    assert_eq!(report, replayed, "replay reproduces the recorded report");
    let mut replay_view = gateway.dashboard_snapshot(now);
    replay_view.replay = Some(replay_dashboard_cell(&cassette));
    let rendered = replay_view.render_text();
    let banner = rendered
        .lines()
        .find(|l| l.starts_with("-- replay --"))
        .expect("replay snapshots render the banner");
    println!("\n== replay mode ==\n{banner}");
    assert!(
        banner.contains(&format!("entries={}", cassette.len())),
        "replay banner carries the cassette provenance"
    );

    // 6. Request-lifecycle tracing. With FIRST_DEMO_TRACE set, re-run the
    // contention scenario with the flight recorder sampling every request:
    // the report grows its phase-latency breakdown (where does a request's
    // time actually go — queue, dispatch, prefill, decode, relay?) and the
    // span trees export as a Chrome trace for the timeline view.
    let trace_active = std::env::var("FIRST_DEMO_TRACE")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false);
    if trace_active {
        let traced_out = ScenarioRun::new(&spec)
            .seed(42)
            .traced(TraceConfig::every_request(4096))
            .execute()
            .expect("traced run");
        let (traced, trees) = (
            traced_out.report,
            traced_out.traces.expect("traced run yields trees"),
        );
        let breakdown = traced.phases.as_ref().expect("traced run has phases");
        println!("\n== phase latency (sample_every=1) ==");
        let rendered = traced.render_text();
        if let Some(start) = rendered.find("phase latency") {
            print!("{}", &rendered[start..]);
        }
        assert!(
            trees.iter().all(first::telemetry::SpanTree::well_formed),
            "every sampled request yields a well-formed span tree"
        );
        let path = std::path::Path::new("trace_export.json");
        std::fs::write(path, chrome_trace_json(trees.iter())).expect("trace written");
        println!(
            "\nwrote {} span trees ({} sampled, {} dropped) -> {}",
            trees.len(),
            breakdown.sampled,
            breakdown.dropped,
            path.display()
        );
        println!("open it in chrome://tracing or ui.perfetto.dev");
    } else {
        println!(
            "\n(set FIRST_DEMO_TRACE=1 for the phase-latency breakdown and a Chrome-trace export)"
        );
    }
}
