//! Quickstart: stand up a FIRST deployment, authenticate a user, send a chat
//! completion through the OpenAI-compatible gateway, and inspect `/jobs`.
//!
//! Run with: `cargo run --release --example quickstart`

use first::core::{ChatCompletionRequest, DeploymentBuilder};
use first::desim::{SimProcess, SimTime};

fn main() {
    // 1. Assemble a deployment: one cluster, one compute endpoint, the model
    //    catalog registered on it, Globus-style auth in front.
    let (mut gateway, tokens) = DeploymentBuilder::single_cluster_test()
        .prewarm(1) // keep one instance of each model hot
        .build_with_tokens();

    // 2. Check what is currently available, exactly as a user would hit /jobs.
    println!("== /jobs before the request ==");
    for entry in gateway.jobs_status() {
        println!("  {:<46} {}", entry.model, entry.state);
    }

    // 3. Send an OpenAI-style chat completion with alice's bearer token.
    let request = ChatCompletionRequest::simple(
        "meta-llama/Llama-3.3-70B-Instruct",
        "Summarize how PagedAttention improves GPU memory utilization.",
        256,
    );
    let request_id = gateway
        .chat_completions(&request, &tokens.alice, Some(200), SimTime::ZERO)
        .expect("request accepted");
    println!("\naccepted request {request_id}; dispatching through Globus Compute...");

    // 4. Drive the simulation until the response comes back.
    let mut now = SimTime::ZERO;
    while let Some(t) = SimProcess::next_event_time(&gateway) {
        now = t.max(now);
        gateway.advance(now);
        if gateway.is_drained() {
            break;
        }
    }
    for response in gateway.take_responses() {
        println!(
            "response for request {}: {} prompt + {} completion tokens in {:.2} s (endpoint {})",
            response.request_id,
            response.usage.prompt_tokens,
            response.usage.completion_tokens,
            response.latency().as_secs_f64(),
            response.endpoint,
        );
    }

    // 5. The gateway logged the activity for the dashboard.
    println!("\n== metrics dashboard ==");
    println!("{}", gateway.metrics_mut().dashboard_summary());
}
