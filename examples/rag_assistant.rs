//! HPC assistant with RAG (case study §6.2): embed facility documentation,
//! index it, retrieve the most relevant passages for a user question, and send
//! the augmented prompt through the FIRST gateway — embeddings and chat both
//! served by the same OpenAI-compatible API.
//!
//! Run with: `cargo run --release --example rag_assistant`

use first::core::{ChatCompletionRequest, DeploymentBuilder, EmbeddingRequest};
use first::desim::{SimProcess, SimTime};
use first::vector::{Document, RagPipeline};

fn drain(gateway: &mut first::core::Gateway) -> Vec<first::core::CompletedRequest> {
    let mut now = SimTime::ZERO;
    while let Some(t) = SimProcess::next_event_time(gateway) {
        now = t.max(now);
        gateway.advance(now);
        if gateway.is_drained() {
            break;
        }
    }
    gateway.take_responses()
}

fn main() {
    // Facility documentation corpus (stand-in for the HPC manuals and
    // troubleshooting guides the paper indexes with NV-Embed-v2 + FAISS).
    let docs = vec![
        Document::new(
            "docs/queues.md",
            "Sophia uses the PBS scheduler. Interactive jobs go to the debug queue with a one \
             hour walltime limit. Production jobs use the prod queue with up to twelve hours of \
             walltime. Use qsub to submit and qstat to monitor jobs.",
        ),
        Document::new(
            "docs/gpu-oom.md",
            "CUDA out of memory errors mean the model and KV cache exceed GPU memory. Reduce the \
             batch size, shorten the context, enable tensor parallelism across more GPUs, or \
             choose a node with 80 GB A100 GPUs.",
        ),
        Document::new(
            "docs/globus-transfer.md",
            "Use Globus transfer to move datasets between the Eagle filesystem and external \
             endpoints. Authenticate with your institutional identity provider and grant the \
             transfer scopes. Transfers resume automatically after interruptions.",
        ),
        Document::new(
            "docs/inference-service.md",
            "The FIRST inference service exposes an OpenAI compatible API. Request an access \
             token with the authentication helper script, then point the openai python client at \
             the gateway URL. Check the jobs endpoint to see which models are running.",
        ),
    ];

    // 1. Build the knowledge base: chunk, embed, index.
    let mut rag = RagPipeline::new();
    let chunks = rag.ingest_all(&docs);
    println!("indexed {chunks} chunks from {} documents", docs.len());

    // 2. Stand up the service and verify the embedding path works end-to-end
    //    (the production pipeline embeds through /v1/embeddings).
    let (mut gateway, tokens) = DeploymentBuilder::single_cluster_test()
        .prewarm(1)
        .build_with_tokens();
    let embed_req = EmbeddingRequest {
        model: "nvidia/NV-Embed-v2".to_string(),
        input: docs.iter().map(|d| d.text.clone()).collect(),
    };
    gateway
        .embeddings(&embed_req, &tokens.alice, SimTime::ZERO)
        .expect("embedding request accepted");
    let responses = drain(&mut gateway);
    println!(
        "embedding request processed {} prompt tokens through the gateway",
        responses[0].usage.prompt_tokens
    );

    // 3. Answer user questions with retrieval-augmented prompts.
    let questions = [
        "my job crashed with CUDA out of memory, what should I do?",
        "how long can a production job run on sophia?",
        "how do I point the openai python client at this service?",
    ];
    for (i, question) in questions.iter().enumerate() {
        let passages = rag.retrieve(question, 2);
        println!("\nQ{}: {question}", i + 1);
        for p in &passages {
            println!("  retrieved [{}] (score {:.3})", p.chunk.source, p.score);
        }
        let prompt = rag.build_prompt(question, 2);
        let request =
            ChatCompletionRequest::simple("meta-llama/Llama-3.3-70B-Instruct", &prompt, 256);
        let t = SimTime::from_secs(600 * (i as u64 + 1));
        gateway
            .chat_completions(&request, &tokens.alice, Some(180), t)
            .expect("chat request accepted");
        let answers = drain(&mut gateway);
        let answer = answers.last().expect("one response");
        println!(
            "  answered with {} completion tokens in {:.1} s (prompt was {} tokens with context)",
            answer.usage.completion_tokens,
            answer.latency().as_secs_f64(),
            answer.usage.prompt_tokens
        );
    }
}
