//! Federation demo (§4.5): requests sent to the cluster-agnostic API URL are
//! routed across Sophia and Polaris based on where the model is already
//! running, which cluster has free nodes, and finally configuration order.
//!
//! Run with: `cargo run --release --example federated_routing`

use first::core::{ChatCompletionRequest, DeploymentBuilder};
use first::desim::{SimDuration, SimProcess, SimTime};
use first::hpc::JobRequest;

const MODEL: &str = "meta-llama/Meta-Llama-3.1-8B-Instruct";

fn drain(gateway: &mut first::core::Gateway, horizon: SimTime) {
    while let Some(t) = SimProcess::next_event_time(gateway) {
        if t > horizon {
            break;
        }
        gateway.advance(t);
        if gateway.is_drained() {
            break;
        }
    }
}

fn main() {
    let (mut gateway, tokens) = DeploymentBuilder::federated_sophia_polaris().build_with_tokens();

    println!(
        "model '{MODEL}' is registered on: {:?}",
        gateway.registry().endpoints_for(MODEL).unwrap()
    );

    // Scenario 1: nothing is running anywhere and Sophia has idle nodes, so
    // the request goes to Sophia (free-capacity rule, configuration order).
    let request = ChatCompletionRequest::simple(MODEL, "first request: who serves me?", 64);
    gateway
        .chat_completions(&request, &tokens.alice, Some(64), SimTime::ZERO)
        .unwrap();
    drain(&mut gateway, SimTime::from_secs(1200));
    let r1 = gateway.take_responses().pop().unwrap();
    println!("\nscenario 1 (cold everywhere): served by {}", r1.endpoint);

    // Scenario 2: the model is now hot on Sophia, so subsequent requests stick
    // to the active instance for low latency.
    let t2 = r1.finished_at + SimDuration::from_secs(30);
    gateway
        .chat_completions(
            &ChatCompletionRequest::simple(MODEL, "second request: still Sophia?", 64),
            &tokens.alice,
            Some(64),
            t2,
        )
        .unwrap();
    drain(&mut gateway, t2 + SimDuration::from_secs(600));
    let r2 = gateway.take_responses().pop().unwrap();
    println!(
        "scenario 2 (hot on sophia): served by {} in {:.1} s",
        r2.endpoint,
        r2.latency().as_secs_f64()
    );

    // Scenario 3: Sophia is fully occupied by other jobs and the model went
    // cold there — the federation layer fails over to Polaris, which has idle
    // nodes.
    // Three hours later the idle timeout has released Sophia's node. Bring
    // the deployment up to t3 first so the release has actually happened by
    // the time the router inspects Sophia (otherwise it still sees the stale
    // hot instance and pins the request to a cluster about to be saturated).
    let t3 = r2.finished_at + SimDuration::from_hours(3);
    gateway.advance(t3);
    {
        let sophia = gateway
            .service_mut()
            .endpoint_mut("sophia-endpoint")
            .unwrap();
        let nodes = sophia.cluster_status().total_nodes;
        for _ in 0..nodes {
            sophia.scheduler_mut().submit(
                JobRequest::single_node(8, SimDuration::from_hours(12), "background-campaign"),
                t3,
            );
        }
    }
    gateway
        .chat_completions(
            &ChatCompletionRequest::simple(MODEL, "third request: sophia is busy", 64),
            &tokens.alice,
            Some(64),
            t3,
        )
        .unwrap();
    drain(&mut gateway, t3 + SimDuration::from_hours(2));
    let r3 = gateway.take_responses().pop().unwrap();
    println!(
        "scenario 3 (sophia saturated): served by {} in {:.1} s",
        r3.endpoint,
        r3.latency().as_secs_f64()
    );

    println!("\n== /jobs across the federation ==");
    for entry in gateway.jobs_status() {
        println!(
            "  {:<46} {:<9} running={} starting={} queued={} endpoints={:?}",
            entry.model,
            entry.state,
            entry.running_instances,
            entry.starting_instances,
            entry.queued_instances,
            entry.endpoints
        );
    }
}
