//! # FIRST — Federated Inference Resource Scheduling Toolkit
//!
//! Root façade crate: re-exports every workspace crate under one name so the
//! examples and integration tests at the repository top level have a single
//! import surface.
//!
//! * [`desim`] — deterministic discrete-event simulation kernel.
//! * [`auth`] — Globus-Auth-style identity, token, group and policy service.
//! * [`chaos`] — deterministic fault injection and resilience primitives
//!   (fault plans, health tracking, retries, circuit breaker).
//! * [`hpc`] — GPU cluster substrate with a PBS-like batch scheduler.
//! * [`serving`] — model catalog, performance model, continuous-batching
//!   engine, frontends, offline batch runner and the OpenAI-cloud comparator.
//! * [`fabric`] — Globus-Compute-style federated function-serving fabric.
//! * [`workload`] — ShareGPT-like workloads, arrival processes, batch files.
//! * [`vector`] — embeddings, vector indexes and the RAG pipeline.
//! * [`telemetry`] — metric registry, dashboards, exposition and alerting.
//! * [`core`] — the FIRST gateway itself plus the end-to-end system simulator.

#![warn(missing_docs)]

pub use first_auth as auth;
pub use first_chaos as chaos;
pub use first_core as core;
pub use first_desim as desim;
pub use first_fabric as fabric;
pub use first_hpc as hpc;
pub use first_serving as serving;
pub use first_telemetry as telemetry;
pub use first_vector as vector;
pub use first_workload as workload;

/// Convenience prelude bringing the most common types into scope.
pub mod prelude {
    pub use first_core::prelude::*;
    pub use first_desim::prelude::*;
}
