//! Cross-crate integration tests for the monitoring surface (§3.1.1),
//! streaming (§4.7), token lifecycle (§4.6), fault tolerance (§3.2.2) and the
//! federation-policy extensions (§7), exercised through the public façade.

use first::core::{
    stream_response, ChatCompletionRequest, DeploymentBuilder, Gateway, GatewayError,
    RoutingPolicy, StreamStats, StreamingConfig,
};
use first::desim::{SimDuration, SimProcess, SimTime};
use first::serving::{find_model, PerfModel};
use first::telemetry::{render_prometheus, LabelSet};

const MODEL_70B: &str = "meta-llama/Llama-3.3-70B-Instruct";

fn drain(gateway: &mut Gateway, horizon: SimTime) {
    while let Some(t) = SimProcess::next_event_time(gateway) {
        if t > horizon {
            break;
        }
        gateway.advance(t);
        if gateway.is_drained() {
            break;
        }
    }
    gateway.advance(horizon);
}

fn hours(h: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_hours(h)
}

#[test]
fn access_tokens_expire_after_48_hours_and_refresh_restores_access() {
    use first::auth::{Identity, Scope, UserId};

    let (mut gateway, _tokens) = DeploymentBuilder::single_cluster_test()
        .prewarm(1)
        .build_with_tokens();

    // Carol logs in herself (interactive OAuth flow) and keeps her refresh
    // token, exactly as the paper's helper script does for users.
    gateway.auth_mut().enroll_user(&UserId::new("carol"));
    let (carol, _) = gateway
        .auth_mut()
        .login(
            &Identity::new("carol", "anl.gov").with_project("materials"),
            &[Scope::InferenceApi],
            SimTime::ZERO,
        )
        .expect("carol login");
    let refresh = carol.refresh_token.clone().expect("refresh token issued");

    let request = ChatCompletionRequest::simple(MODEL_70B, "how long is my token valid?", 64);

    // Within the 48-hour lifetime the token works.
    assert!(gateway
        .chat_completions(&request, &carol.token, Some(64), hours(47))
        .is_ok());

    // After 48 hours it is rejected.
    let err = gateway
        .chat_completions(&request, &carol.token, Some(64), hours(49))
        .unwrap_err();
    assert!(matches!(err, GatewayError::Unauthorized(_)), "{err:?}");

    // Refreshing mints a new 48-hour token that is accepted again, and the
    // old access token stays dead.
    let (renewed, _) = gateway
        .auth_mut()
        .refresh(&refresh, hours(49))
        .expect("refresh succeeds");
    assert!(gateway
        .chat_completions(&request, &renewed.token, Some(64), hours(50))
        .is_ok());
    assert!(gateway
        .chat_completions(&request, &carol.token, Some(64), hours(50))
        .is_err());
}

#[test]
fn revoked_tokens_are_rejected_immediately() {
    let (mut gateway, tokens) = DeploymentBuilder::single_cluster_test()
        .prewarm(1)
        .build_with_tokens();
    let request = ChatCompletionRequest::simple(MODEL_70B, "hello", 32);
    assert!(gateway
        .chat_completions(&request, &tokens.bob, Some(32), SimTime::ZERO)
        .is_ok());
    gateway.auth_mut().revoke(&tokens.bob).expect("revocation");
    // The auth middleware caches introspections briefly; a later request
    // (outside the cache window) must observe the revocation.
    let err = gateway
        .chat_completions(&request, &tokens.bob, Some(32), hours(1))
        .unwrap_err();
    assert!(matches!(err, GatewayError::Unauthorized(_)), "{err:?}");
}

#[test]
fn instance_failure_is_restarted_and_requests_keep_completing() {
    let (mut gateway, tokens) = DeploymentBuilder::single_cluster_test()
        .prewarm(1)
        .build_with_tokens();

    // Serve one request on the healthy instance.
    let request = ChatCompletionRequest::simple(MODEL_70B, "first question", 96);
    gateway
        .chat_completions(&request, &tokens.alice, Some(96), SimTime::ZERO)
        .unwrap();
    drain(&mut gateway, SimTime::from_secs(120));
    assert_eq!(gateway.take_responses().len(), 1);

    // Kill the serving process (§3.2.2: process-management scripts monitor
    // health and restart failed instances automatically).
    let killed = gateway
        .service_mut()
        .endpoint_mut("sophia-endpoint")
        .unwrap()
        .inject_instance_failure(MODEL_70B, SimTime::from_secs(121));
    assert!(killed, "an instance should have been running to kill");

    // A follow-up request still completes after the automatic restart.
    let request = ChatCompletionRequest::simple(MODEL_70B, "second question after the crash", 96);
    gateway
        .chat_completions(&request, &tokens.alice, Some(96), SimTime::from_secs(125))
        .unwrap();
    drain(&mut gateway, SimTime::from_secs(1200));
    let responses = gateway.take_responses();
    assert_eq!(responses.len(), 1);
    assert!(responses[0].success);
    let ep = gateway.service().endpoint("sophia-endpoint").unwrap();
    assert!(
        ep.stats().restarts >= 1,
        "restart counter: {}",
        ep.stats().restarts
    );
}

#[test]
fn dashboard_and_prometheus_export_agree_with_the_request_log() {
    let (mut gateway, tokens) = DeploymentBuilder::federated_sophia_polaris()
        .prewarm(1)
        .build_with_tokens();
    for i in 0..12u64 {
        let request =
            ChatCompletionRequest::simple(MODEL_70B, &format!("observability question {i}"), 256);
        gateway
            .chat_completions(
                &request,
                &tokens.alice,
                Some(150),
                SimTime::from_secs(i * 5),
            )
            .unwrap();
    }
    drain(&mut gateway, SimTime::from_secs(3600));
    let completed = gateway
        .take_responses()
        .iter()
        .filter(|r| r.success)
        .count();
    assert_eq!(completed, 12);

    let snapshot = gateway.dashboard_snapshot(SimTime::from_secs(3600));
    assert_eq!(snapshot.total_completed, 12);
    assert_eq!(snapshot.distinct_users, 1);
    let row = snapshot
        .models
        .iter()
        .find(|m| m.model == MODEL_70B)
        .unwrap();
    assert_eq!(row.requests, 12);
    assert_eq!(row.output_tokens, 12 * 150);
    assert!(row.median_latency_s > 0.0);
    // Both federated clusters are visible to the operator.
    assert_eq!(snapshot.clusters.len(), 2);
    assert!(snapshot.clusters.iter().any(|c| c.cluster == "sophia"));
    assert!(snapshot.clusters.iter().any(|c| c.cluster == "polaris"));

    let registry = gateway.export_metrics(SimTime::from_secs(3600));
    let reg_snapshot = registry.snapshot();
    assert_eq!(
        reg_snapshot.counter_value("first_gateway_requests_completed_total", &LabelSet::empty()),
        12
    );
    assert_eq!(
        reg_snapshot.counter_family_total("first_gateway_requests_received_total"),
        12
    );
    let text = render_prometheus(&reg_snapshot);
    assert!(text.contains(
        "first_request_latency_seconds_count{model=\"meta-llama/Llama-3.3-70B-Instruct\"} 12"
    ));
    assert!(text.contains("first_cluster_total_nodes{cluster=\"sophia\"} 24"));

    // The default alert pack stays quiet on this healthy run.
    let mut alerting = Gateway::default_alerting();
    assert!(alerting
        .evaluate(&registry, SimTime::from_secs(3600))
        .is_empty());
}

#[test]
fn streaming_reconstruction_is_consistent_with_end_to_end_results() {
    let (mut gateway, tokens) = DeploymentBuilder::single_cluster_test()
        .prewarm(1)
        .build_with_tokens();
    for i in 0..8u64 {
        let request = ChatCompletionRequest::simple(MODEL_70B, &format!("stream me {i}"), 512);
        gateway
            .chat_completions(
                &request,
                &tokens.alice,
                Some(100 + i as u32 * 20),
                SimTime::from_secs(i * 2),
            )
            .unwrap();
    }
    drain(&mut gateway, SimTime::from_secs(1200));

    let spec = find_model("llama-70b").unwrap();
    let perf = PerfModel::default();
    let config = StreamingConfig::for_model(&spec);
    let mut stats = StreamStats::new();
    let responses = gateway.take_responses();
    assert_eq!(responses.len(), 8);
    for response in &responses {
        let stream = stream_response(response, &spec, &perf, &config);
        // Token conservation and timeline consistency with the DES result.
        assert_eq!(stream.output_tokens(), response.usage.completion_tokens);
        assert_eq!(stream.finished_at, response.finished_at);
        assert!(stream.first_token_at > response.arrived_at);
        assert!(stream.first_token_at <= response.finished_at);
        assert!(stream.chunks.windows(2).all(|c| c[0].at <= c[1].at));
        stats.record(&stream);
    }
    assert_eq!(stats.responses(), 8);
    // Interactive experience: the first token arrives far sooner than the
    // complete answer.
    let median_ttft = stats.median_ttft();
    let median_e2e = responses
        .iter()
        .map(|r| r.latency().as_secs_f64())
        .sum::<f64>()
        / responses.len() as f64;
    assert!(
        median_ttft < median_e2e / 2.0,
        "ttft {median_ttft} vs e2e {median_e2e}"
    );
}

#[test]
fn round_robin_policy_spreads_load_where_the_paper_policy_pins_it() {
    let run = |policy: RoutingPolicy| {
        let (mut gateway, tokens) = DeploymentBuilder::federated_sophia_polaris()
            .prewarm(1)
            .routing_policy(policy)
            .build_with_tokens();
        for i in 0..10u64 {
            let request =
                ChatCompletionRequest::simple(MODEL_70B, &format!("policy {policy:?} q{i}"), 128);
            gateway
                .chat_completions(&request, &tokens.alice, Some(80), SimTime::from_secs(i * 3))
                .unwrap();
        }
        drain(&mut gateway, SimTime::from_secs(3600));
        let mut sophia = 0;
        let mut polaris = 0;
        for entry in gateway.log().entries() {
            match entry.endpoint.as_str() {
                "sophia-endpoint" => sophia += 1,
                "polaris-endpoint" => polaris += 1,
                _ => {}
            }
        }
        (sophia, polaris)
    };

    let (paper_sophia, paper_polaris) = run(RoutingPolicy::PaperPriority);
    let (rr_sophia, rr_polaris) = run(RoutingPolicy::RoundRobin);

    // §4.5: the priority policy prefers the first active endpoint, so all
    // traffic lands on Sophia. Round-robin alternates across the federation.
    assert_eq!(paper_sophia, 10);
    assert_eq!(paper_polaris, 0);
    assert_eq!(rr_sophia, 5);
    assert_eq!(rr_polaris, 5);
}
