//! Integration tests for the federation layer (§4.5) and auto-scaling (§5.3.2)
//! exercised through the public façade.

use first::core::{ChatCompletionRequest, DeploymentBuilder};
use first::desim::{SimDuration, SimProcess, SimTime};
use first::fabric::InstanceState;
use first::hpc::JobRequest;
use first::workload::ShareGptGenerator;

const MODEL_70B: &str = "meta-llama/Llama-3.3-70B-Instruct";
const MODEL_8B: &str = "meta-llama/Meta-Llama-3.1-8B-Instruct";

fn drain(gateway: &mut first::core::Gateway, horizon: SimTime) {
    while let Some(t) = SimProcess::next_event_time(gateway) {
        if t > horizon {
            break;
        }
        gateway.advance(t);
        if gateway.is_drained() {
            break;
        }
    }
    gateway.advance(horizon);
}

#[test]
fn federated_deployment_fails_over_when_primary_cluster_is_full() {
    let (mut gateway, tokens) = DeploymentBuilder::federated_sophia_polaris().build_with_tokens();
    // Saturate every Sophia node with long background jobs.
    {
        let sophia = gateway
            .service_mut()
            .endpoint_mut("sophia-endpoint")
            .unwrap();
        let nodes = sophia.cluster_status().total_nodes;
        for _ in 0..nodes {
            sophia.scheduler_mut().submit(
                JobRequest::single_node(8, SimDuration::from_hours(24), "campaign"),
                SimTime::ZERO,
            );
        }
        assert_eq!(sophia.cluster_status().idle_nodes, 0);
    }
    gateway
        .chat_completions(
            &ChatCompletionRequest::simple(MODEL_8B, "where do I run?", 64),
            &tokens.alice,
            Some(64),
            SimTime::from_secs(1),
        )
        .unwrap();
    drain(&mut gateway, SimTime::from_secs(1800));
    let response = gateway.take_responses().pop().unwrap();
    assert!(response.success);
    assert_eq!(response.endpoint, "polaris-endpoint");
}

#[test]
fn requests_stick_to_the_endpoint_where_the_model_is_hot() {
    let (mut gateway, tokens) = DeploymentBuilder::federated_sophia_polaris().build_with_tokens();
    // Warm the model on Polaris only.
    gateway
        .service_mut()
        .endpoint_mut("polaris-endpoint")
        .unwrap()
        .prewarm(MODEL_8B, 1, SimTime::ZERO);
    gateway
        .chat_completions(
            &ChatCompletionRequest::simple(MODEL_8B, "routed to the hot instance", 64),
            &tokens.alice,
            Some(64),
            SimTime::ZERO,
        )
        .unwrap();
    drain(&mut gateway, SimTime::from_secs(600));
    let response = gateway.take_responses().pop().unwrap();
    assert_eq!(response.endpoint, "polaris-endpoint");
    assert!(
        response.latency().as_secs_f64() < 20.0,
        "hot-routed latency"
    );
}

#[test]
fn sustained_load_triggers_auto_scaling_within_the_configured_ceiling() {
    let (mut gateway, tokens) = DeploymentBuilder::single_cluster_test()
        .prewarm(1)
        .build_with_tokens();
    let mut generator = ShareGptGenerator::new(21);
    for i in 0..600u64 {
        let sample = generator.sample();
        let req = ChatCompletionRequest::simple(
            MODEL_70B,
            &format!("burst request {i}"),
            sample.output_tokens.max(8),
        );
        let _ = gateway.chat_completions(
            &req,
            &tokens.alice,
            Some(sample.output_tokens),
            SimTime::ZERO,
        );
    }
    // Let the system react for a couple of minutes of virtual time.
    drain(&mut gateway, SimTime::from_secs(180));
    let endpoint = gateway.service().endpoint("sophia-endpoint").unwrap();
    let active = endpoint
        .instances()
        .iter()
        .filter(|i| i.model == MODEL_70B && i.state != InstanceState::Released)
        .count();
    assert!(
        active >= 2,
        "expected auto-scaling beyond one instance, got {active}"
    );
    assert!(active <= 4, "auto-scaling must respect max_instances");
}

#[test]
fn instance_failure_is_restarted_and_service_recovers() {
    let (mut gateway, tokens) = DeploymentBuilder::single_cluster_test()
        .prewarm(1)
        .build_with_tokens();
    // Kill the hot 70B instance.
    assert!(gateway
        .service_mut()
        .endpoint_mut("sophia-endpoint")
        .unwrap()
        .inject_instance_failure(MODEL_70B, SimTime::from_secs(5)));
    // A follow-up request still completes once the replacement instance loads.
    gateway
        .chat_completions(
            &ChatCompletionRequest::simple(MODEL_70B, "are you back?", 64),
            &tokens.alice,
            Some(64),
            SimTime::from_secs(10),
        )
        .unwrap();
    drain(&mut gateway, SimTime::from_secs(1800));
    let response = gateway.take_responses().pop().unwrap();
    assert!(response.success);
    let ep = gateway.service().endpoint("sophia-endpoint").unwrap();
    assert!(ep.stats().restarts >= 1);
    assert!(ep.has_hot_instance(MODEL_70B));
}
