//! Cross-crate scenario-matrix tests: the declarative catalog runs end to
//! end through the façade, per-tenant partitions line up with the request
//! log, the closed-loop session scenario honors its generated think times,
//! and every run passes the invariant checker.

use first::core::{
    check_run_invariants, run_webui_closed_loop, DeploymentBuilder, RunLedger, ScenarioRun,
};
use first::desim::{SimDuration, SimTime};
use first::workload::{catalog, generate_sessions, SessionWorkloadConfig, TenantWorkload};

const MODEL_8B: &str = "meta-llama/Meta-Llama-3.1-8B-Instruct";

#[test]
fn catalog_scenarios_run_end_to_end_with_per_tenant_partitions() {
    // A debug-build `ScenarioRun` also executes the invariant checker
    // after every scenario, so this doubles as the conservation proof for
    // each exercised deployment shape.
    let specs = catalog(48);
    for name in ["steady", "multi-tenant-contention", "chaos-under-load"] {
        let spec = specs.iter().find(|s| s.name == name).expect("in catalog");
        let report = ScenarioRun::new(spec).seed(42).execute().unwrap().report;
        assert_eq!(report.offered, report.accepted + report.rejected, "{name}");
        assert_eq!(
            report.accepted,
            report.completed + report.failed,
            "{name} lost requests"
        );
        assert_eq!(report.tenants.len(), spec.tenants.len(), "{name}");
        for tenant in &report.tenants {
            assert_eq!(
                tenant.offered,
                tenant.completed + tenant.failed + tenant.rejected,
                "{name}/{} tenant conservation",
                tenant.tenant
            );
        }
    }
    // The chaos scenario actually injected faults.
    let chaos = specs
        .iter()
        .find(|s| s.name == "chaos-under-load")
        .expect("in catalog");
    let report = ScenarioRun::new(chaos).seed(42).execute().unwrap().report;
    assert!(report.faults_injected > 0, "chaos plan applied");
}

#[test]
fn trace_replay_scenario_preserves_the_trace_shape() {
    let specs = catalog(64);
    let spec = specs
        .iter()
        .find(|s| s.name == "trace-replay")
        .expect("in catalog");
    assert!(matches!(
        spec.tenants[0].workload,
        TenantWorkload::TraceReplay { .. }
    ));
    let report = ScenarioRun::new(spec).seed(42).execute().unwrap().report;
    assert!(report.completed > 0);
    // The trace tenant spreads over several models (popularity skew).
    let compiled = spec.compile(42);
    let mut models: Vec<&str> = compiled.requests.iter().map(|r| r.model.as_str()).collect();
    models.sort_unstable();
    models.dedup();
    assert!(
        models.len() >= 2,
        "trace replay uses a model mix: {models:?}"
    );
}

#[test]
fn closed_loop_session_scenario_reports_a_webui_cell() {
    let specs = catalog(64);
    let spec = specs
        .iter()
        .find(|s| s.name == "closed-loop-sessions")
        .expect("in catalog");
    let report = ScenarioRun::new(spec).seed(42).execute().unwrap().report;
    let cell = report.webui.as_ref().expect("session rider reported");
    assert!(cell.completed > 0, "sessions completed turns: {cell:?}");
    assert_eq!(report.completed, cell.completed);
    assert!(report.request_throughput > 0.0);
}

#[test]
fn session_think_times_are_honored_by_the_closed_loop() {
    // One session, hot 8B model: the only thing separating consecutive
    // turns is the response time plus the generated think time, so each
    // logged arrival must sit at least one think time after the previous
    // turn's delivery.
    let seed = 11u64;
    let config = SessionWorkloadConfig::table1(MODEL_8B, 1, 120);
    let overhead = SimDuration::from_millis(500);
    let (mut gateway, tokens) = DeploymentBuilder::single_cluster_test()
        .prewarm(1)
        .build_with_tokens();
    let cell = run_webui_closed_loop(&mut gateway, &tokens.alice, &config, overhead, seed);
    assert!(cell.completed >= 3, "several turns complete in 120 s");

    // Re-derive the exact session plan the run used (generation is a pure
    // function of (config, seed)) and check the log against its think times.
    let plan = &generate_sessions(&config, seed)[0];
    let entries = gateway.log().entries();
    assert!(entries.len() >= cell.completed);
    for i in 1..entries.len() {
        let think = plan.think_before(i);
        let gap = entries[i]
            .arrived_at
            .saturating_since(entries[i - 1].finished_at);
        assert!(
            gap >= think,
            "turn {i} arrived {:.3}s after turn {}'s delivery, but the plan's think time is {:.3}s",
            gap.as_secs_f64(),
            i - 1,
            think.as_secs_f64()
        );
    }

    // Longer thinking means fewer turns inside the same window.
    let slow_config = SessionWorkloadConfig {
        mean_think_time: SimDuration::from_secs(30),
        ..config
    };
    let (mut slow_gateway, slow_tokens) = DeploymentBuilder::single_cluster_test()
        .prewarm(1)
        .build_with_tokens();
    let slow_cell = run_webui_closed_loop(
        &mut slow_gateway,
        &slow_tokens.alice,
        &slow_config,
        overhead,
        seed,
    );
    assert!(
        slow_cell.completed < cell.completed,
        "30s think ({}) should complete fewer turns than 3s think ({})",
        slow_cell.completed,
        cell.completed
    );
}

#[test]
fn manual_driver_passes_the_invariant_checker() {
    use first::core::ChatCompletionRequest;
    use first::desim::SimProcess;

    let (mut gateway, tokens) = DeploymentBuilder::single_cluster_test()
        .prewarm(1)
        .build_with_tokens();
    let mut ledger = RunLedger::new();
    for i in 0..12u64 {
        let req = ChatCompletionRequest::simple(MODEL_8B, &format!("inv sweep {i}"), 96);
        let accepted = gateway
            .chat_completions(&req, &tokens.bob, Some(64), SimTime::from_secs(i))
            .is_ok();
        ledger.on_submission(accepted);
    }
    let mut now = SimTime::ZERO;
    while let Some(t) = SimProcess::next_event_time(&gateway) {
        now = now.max(t);
        ledger.clock.observe(now);
        gateway.advance(now);
        for r in gateway.take_responses() {
            ledger.on_response(r.success);
        }
        if gateway.is_drained() {
            break;
        }
    }
    ledger.drained = gateway.is_drained();
    assert!(ledger.drained);
    check_run_invariants(&gateway, &ledger)
        .unwrap_or_else(|v| panic!("invariants violated: {v:?}"));
}
