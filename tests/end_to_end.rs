//! Cross-crate integration tests: the full request path from authentication
//! through the gateway, the compute fabric, the batch scheduler and the
//! serving engine, exercised through the root façade crate.

use first::core::{
    check_run_invariants, ChatCompletionRequest, DeploymentBuilder, EmbeddingRequest, GatewayError,
    RunLedger,
};
use first::desim::{SimDuration, SimProcess, SimTime};
use first::workload::ShareGptGenerator;

const MODEL_70B: &str = "meta-llama/Llama-3.3-70B-Instruct";
const MODEL_8B: &str = "meta-llama/Meta-Llama-3.1-8B-Instruct";

fn drain(gateway: &mut first::core::Gateway, horizon: SimTime) {
    while let Some(t) = SimProcess::next_event_time(gateway) {
        if t > horizon {
            break;
        }
        gateway.advance(t);
        if gateway.is_drained() {
            break;
        }
    }
    gateway.advance(horizon);
}

#[test]
fn hot_and_cold_requests_complete_through_the_full_stack() {
    let (mut gateway, tokens) = DeploymentBuilder::single_cluster_test()
        .prewarm(1)
        .build_with_tokens();

    // Hot path: the 70B model is pre-warmed.
    let hot = ChatCompletionRequest::simple(MODEL_70B, "hot path question", 128);
    gateway
        .chat_completions(&hot, &tokens.alice, Some(128), SimTime::ZERO)
        .unwrap();
    drain(&mut gateway, SimTime::from_secs(600));
    let hot_resp = gateway.take_responses().pop().unwrap();
    assert!(hot_resp.success);
    assert!(hot_resp.latency().as_secs_f64() < 20.0);

    // Cold path on a fresh deployment (no prewarm): the same request triggers
    // node acquisition + weight loading, so it takes minutes instead.
    let (mut cold_gateway, cold_tokens) =
        DeploymentBuilder::single_cluster_test().build_with_tokens();
    cold_gateway
        .chat_completions(&hot, &cold_tokens.alice, Some(128), SimTime::ZERO)
        .unwrap();
    drain(&mut cold_gateway, SimTime::from_secs(1800));
    let cold_resp = cold_gateway.take_responses().pop().unwrap();
    assert!(cold_resp.success);
    assert!(
        cold_resp.latency().as_secs_f64() > hot_resp.latency().as_secs_f64() + 60.0,
        "cold {} vs hot {}",
        cold_resp.latency().as_secs_f64(),
        hot_resp.latency().as_secs_f64()
    );
}

#[test]
fn many_concurrent_users_share_the_deployment() {
    let (mut gateway, tokens) = DeploymentBuilder::single_cluster_test()
        .prewarm(1)
        .build_with_tokens();
    let mut generator = ShareGptGenerator::new(5);
    let users = [&tokens.alice, &tokens.bob];
    let mut expected = 0usize;
    for i in 0..60u64 {
        let sample = generator.sample();
        let req = ChatCompletionRequest::simple(
            MODEL_8B,
            &format!("request number {i} about a scientific dataset"),
            sample.output_tokens.max(8),
        );
        let token = users[(i % 2) as usize];
        let at = SimTime::from_millis(250 * i);
        if gateway
            .chat_completions(&req, token, Some(sample.output_tokens), at)
            .is_ok()
        {
            expected += 1;
        }
    }
    drain(&mut gateway, SimTime::from_secs(3600));
    let responses = gateway.take_responses();
    assert_eq!(responses.len(), expected);
    assert!(responses.iter().all(|r| r.success));
    // Both users appear in the request log, which feeds the dashboard.
    assert_eq!(gateway.log().distinct_users(), 2);
    let by_user = gateway.log().usage_by_user();
    assert!(by_user["alice"].requests > 0 && by_user["bob"].requests > 0);
    // The run also satisfies the scenario-matrix invariants: conservation
    // and an empty task slab after draining.
    let ledger = RunLedger {
        offered: 60,
        accepted: expected,
        rejected: 60 - expected,
        completed: responses.iter().filter(|r| r.success).count(),
        failed: responses.iter().filter(|r| !r.success).count(),
        drained: gateway.is_drained(),
        ..RunLedger::new()
    };
    check_run_invariants(&gateway, &ledger)
        .unwrap_or_else(|v| panic!("invariants violated: {v:?}"));
}

#[test]
fn authorization_failures_never_reach_the_cluster() {
    let (mut gateway, tokens) = DeploymentBuilder::single_cluster_test()
        .prewarm(1)
        .build_with_tokens();
    // Forged token.
    let req = ChatCompletionRequest::simple(MODEL_70B, "let me in", 32);
    let err = gateway
        .chat_completions(
            &req,
            &first::auth::TokenString::new("forged"),
            None,
            SimTime::ZERO,
        )
        .unwrap_err();
    assert!(matches!(err, GatewayError::Unauthorized(_)));
    // Restricted model for a non-member.
    let aurora = ChatCompletionRequest::simple("argonne-private/AuroraGPT-7B", "hi", 32);
    let err = gateway
        .chat_completions(&aurora, &tokens.bob, None, SimTime::ZERO)
        .unwrap_err();
    assert!(matches!(err, GatewayError::Forbidden(_)));
    // Nothing was submitted to the compute service.
    assert_eq!(gateway.service().stats().submitted, 0);
    assert_eq!(gateway.log().len(), 0);
}

#[test]
fn embeddings_and_chat_share_one_gateway() {
    let (mut gateway, tokens) = DeploymentBuilder::single_cluster_test()
        .prewarm(1)
        .build_with_tokens();
    gateway
        .embeddings(
            &EmbeddingRequest {
                model: "nvidia/NV-Embed-v2".to_string(),
                input: vec!["paragraph one".into(), "paragraph two".into()],
            },
            &tokens.alice,
            SimTime::ZERO,
        )
        .unwrap();
    gateway
        .chat_completions(
            &ChatCompletionRequest::simple(MODEL_8B, "and a chat request", 64),
            &tokens.alice,
            Some(64),
            SimTime::from_secs(1),
        )
        .unwrap();
    drain(&mut gateway, SimTime::from_secs(600));
    let responses = gateway.take_responses();
    assert_eq!(responses.len(), 2);
    assert!(responses.iter().all(|r| r.success));
}

#[test]
fn hot_nodes_are_released_after_the_idle_timeout() {
    let (mut gateway, tokens) = DeploymentBuilder::single_cluster_test()
        .prewarm(1)
        .build_with_tokens();
    gateway
        .chat_completions(
            &ChatCompletionRequest::simple(MODEL_70B, "one and done", 64),
            &tokens.alice,
            Some(64),
            SimTime::ZERO,
        )
        .unwrap();
    drain(&mut gateway, SimTime::from_secs(600));
    assert_eq!(gateway.take_responses().len(), 1);
    let busy_before = {
        let status = gateway
            .service()
            .endpoint("sophia-endpoint")
            .unwrap()
            .cluster_status();
        status.total_gpus - status.free_gpus
    };
    assert!(busy_before > 0);
    // Three idle hours later (idle timeout is two hours) the GPUs are free.
    gateway.advance(SimTime::from_secs(600) + SimDuration::from_hours(3));
    let status = gateway
        .service()
        .endpoint("sophia-endpoint")
        .unwrap()
        .cluster_status();
    assert_eq!(status.free_gpus, status.total_gpus);
}
