//! Cross-crate resilience tests: deterministic fault injection through the
//! public façade, failover-aware federation routing, and the no-lost-requests
//! guarantee under a single-cluster outage.

use first::chaos::{FaultInjector, FaultKind, FaultPlan, HealthState, ResilienceConfig};
use first::core::{run_resilience_openloop, DeploymentBuilder, Gateway, ResilienceReport};
use first::desim::{SimDuration, SimRng, SimTime};
use first::workload::{ArrivalProcess, ShareGptGenerator};

const MODEL: &str = "meta-llama/Llama-3.3-70B-Instruct";

fn resilient_deployment() -> (Gateway, first::core::TestTokens) {
    DeploymentBuilder::federated_sophia_polaris()
        .prewarm(1)
        .resilience(ResilienceConfig::production())
        .build_with_tokens()
}

fn run_outage_scenario(seed: u64, n: usize) -> ResilienceReport {
    let (mut gateway, tokens) = resilient_deployment();
    let samples = ShareGptGenerator::new(seed).samples(n);
    let mut rng = SimRng::seed_from_u64(seed ^ 0xA11CE);
    let arrivals = ArrivalProcess::FixedRate(4.0).arrivals(n, SimTime::ZERO, &mut rng);
    // The primary cluster (Sophia hosts every model and comes first in
    // configuration order) dies mid-run: unreachable for 60 s and every
    // active instance killed.
    let plan = FaultPlan::cluster_outage(
        "sophia-endpoint",
        SimTime::from_secs(10),
        SimDuration::from_secs(60),
    );
    let mut injector = FaultInjector::new(plan);
    let report = run_resilience_openloop(
        &mut gateway,
        &mut injector,
        &tokens.alice,
        MODEL,
        &samples,
        &arrivals,
        "cluster-outage",
        SimTime::from_secs(7200),
    );
    // Task-leak half of the run invariants: retries, hedges and failovers
    // must not strand a single copy in the gateway's slabs once drained.
    assert!(gateway.is_drained(), "outage run drained");
    let queues = gateway.queue_snapshot();
    assert_eq!(queues.pending_dispatches, 0, "{queues:?}");
    assert_eq!(queues.in_flight_tasks, 0, "{queues:?}");
    assert_eq!(queues.awaiting_delivery, 0, "{queues:?}");
    assert_eq!(queues.outstanding_copies, 0, "{queues:?}");
    report
}

#[test]
fn single_cluster_outage_loses_no_accepted_requests() {
    let report = run_outage_scenario(42, 120);
    assert_eq!(report.offered, 120);
    assert_eq!(
        report.completed, 120,
        "failover + retry must rescue every accepted request: {report:?}"
    );
    assert_eq!(report.failed, 0);
    assert!((report.availability - 1.0).abs() < 1e-12);
    assert_eq!(report.faults_injected, 1);
    // The rescue machinery actually did something.
    assert!(report.retries >= 1, "retries: {}", report.retries);
    assert!(report.failovers >= 1, "failovers: {}", report.failovers);
    assert!(
        report.breaker_trips >= 1,
        "breaker trips: {}",
        report.breaker_trips
    );
}

#[test]
fn outage_traffic_lands_on_the_secondary_cluster() {
    let (mut gateway, tokens) = resilient_deployment();
    let n = 80;
    let samples = ShareGptGenerator::new(7).samples(n);
    let mut rng = SimRng::seed_from_u64(77);
    let arrivals = ArrivalProcess::FixedRate(4.0).arrivals(n, SimTime::ZERO, &mut rng);
    let plan = FaultPlan::cluster_outage(
        "sophia-endpoint",
        SimTime::from_secs(8),
        SimDuration::from_secs(120),
    );
    let mut injector = FaultInjector::new(plan);
    let report = run_resilience_openloop(
        &mut gateway,
        &mut injector,
        &tokens.alice,
        MODEL,
        &samples,
        &arrivals,
        "outage",
        SimTime::from_secs(7200),
    );
    assert_eq!(report.completed, n);
    // The request log shows the federation actually failing over: Sophia
    // serves the pre-outage prefix, Polaris absorbs the outage window.
    let mut sophia = 0;
    let mut polaris = 0;
    for entry in gateway.log().entries().iter().filter(|e| e.success) {
        match entry.endpoint.as_str() {
            "sophia-endpoint" => sophia += 1,
            "polaris-endpoint" => polaris += 1,
            _ => {}
        }
    }
    assert!(sophia >= 1, "pre-outage requests served by Sophia");
    assert!(
        polaris >= 10,
        "outage traffic must land on Polaris (got {polaris})"
    );
    // Health tracking observed the outage.
    let (_, failures) = gateway.health().counts("sophia-endpoint");
    assert!(failures >= 3, "sophia failures recorded: {failures}");
}

#[test]
fn same_seed_reproduces_identical_resilience_reports() {
    let a = run_outage_scenario(1234, 60);
    let b = run_outage_scenario(1234, 60);
    assert_eq!(a, b, "same seed must reproduce identical numbers");
    let c = run_outage_scenario(1235, 60);
    assert_ne!(
        (a.median_latency_s, a.p99_latency_s, a.duration_s),
        (c.median_latency_s, c.p99_latency_s, c.duration_s),
        "a different seed should re-randomise the run"
    );
}

#[test]
fn seeded_flap_plan_degrades_goodput_but_not_availability() {
    let (mut gateway, tokens) = resilient_deployment();
    let n = 100;
    let samples = ShareGptGenerator::new(5).samples(n);
    let mut rng = SimRng::seed_from_u64(55);
    let arrivals = ArrivalProcess::FixedRate(4.0).arrivals(n, SimTime::ZERO, &mut rng);
    let horizon = SimTime::from_secs(n as u64 / 4);
    let plan = FaultPlan::endpoint_flaps(
        "sophia-endpoint",
        9,
        SimTime::from_secs(2),
        horizon,
        SimDuration::from_secs(8),
        SimDuration::from_secs(6),
    );
    assert!(!plan.is_empty());
    let mut injector = FaultInjector::new(plan);
    let report = run_resilience_openloop(
        &mut gateway,
        &mut injector,
        &tokens.alice,
        MODEL,
        &samples,
        &arrivals,
        "flaps",
        SimTime::from_secs(7200),
    );
    assert_eq!(report.completed, n, "flapping must not lose requests");
    assert!(report.faults_injected >= 1);
    assert!(report.retries >= 1);
}

#[test]
fn breaker_recovers_after_the_outage_ends() {
    let (mut gateway, tokens) = resilient_deployment();
    let n = 60;
    let samples = ShareGptGenerator::new(3).samples(n);
    let mut rng = SimRng::seed_from_u64(33);
    // Slow trickle over 10 minutes so traffic continues long after recovery.
    let arrivals = ArrivalProcess::FixedRate(0.1).arrivals(n, SimTime::ZERO, &mut rng);
    let plan = FaultPlan::cluster_outage(
        "sophia-endpoint",
        SimTime::from_secs(20),
        SimDuration::from_secs(60),
    );
    let mut injector = FaultInjector::new(plan);
    let report = run_resilience_openloop(
        &mut gateway,
        &mut injector,
        &tokens.alice,
        MODEL,
        &samples,
        &arrivals,
        "recovery",
        SimTime::from_secs(7200),
    );
    assert_eq!(report.completed, n);
    // Long after the outage the breaker has aged out: Sophia is back in the
    // healthy rotation (the paper-priority router still prefers the hot
    // Polaris instance, but Sophia is eligible again), and `/jobs` agrees.
    let now = gateway.last_advance();
    assert_eq!(
        gateway.health().state("sophia-endpoint", now),
        HealthState::Healthy
    );
    let jobs = gateway.jobs_status();
    let entry = jobs.iter().find(|j| j.model == MODEL).unwrap();
    assert!(
        entry.endpoint_health.iter().all(|h| h == "healthy"),
        "all endpoints healthy after recovery: {:?}",
        entry.endpoint_health
    );
}

#[test]
fn mixed_seeded_plan_applies_every_fault_kind_deterministically() {
    let endpoints = vec![
        "sophia-endpoint".to_string(),
        "polaris-endpoint".to_string(),
    ];
    let plan = FaultPlan::seeded(99, SimTime::ZERO, SimTime::from_secs(500), &endpoints, 20);
    assert_eq!(plan.len(), 20);
    // The generator covers several fault kinds over a 20-event plan.
    let mut kinds: Vec<&str> = plan.events().iter().map(|e| e.kind.label()).collect();
    kinds.sort_unstable();
    kinds.dedup();
    assert!(kinds.len() >= 3, "kinds drawn: {kinds:?}");
    // Applying the plan against a live deployment is itself deterministic.
    let run = || {
        let (mut gateway, tokens) = resilient_deployment();
        let samples = ShareGptGenerator::new(11).samples(50);
        let mut rng = SimRng::seed_from_u64(111);
        let arrivals = ArrivalProcess::FixedRate(2.0).arrivals(50, SimTime::ZERO, &mut rng);
        let mut injector = FaultInjector::new(FaultPlan::seeded(
            99,
            SimTime::ZERO,
            SimTime::from_secs(500),
            &endpoints,
            20,
        ));
        run_resilience_openloop(
            &mut gateway,
            &mut injector,
            &tokens.alice,
            MODEL,
            &samples,
            &arrivals,
            "mixed",
            SimTime::from_secs(7200),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn engine_stall_is_survived_via_hedging() {
    let (mut gateway, tokens) = resilient_deployment();
    let n = 20;
    let samples = ShareGptGenerator::new(21).samples(n);
    let mut rng = SimRng::seed_from_u64(210);
    let arrivals = ArrivalProcess::FixedRate(2.0).arrivals(n, SimTime::ZERO, &mut rng);
    // Sophia's engines hang for 30 minutes shortly after the run starts —
    // no failures are produced, so only hedging can rescue stuck requests.
    let plan = FaultPlan::none().with(
        SimTime::from_secs(3),
        FaultKind::EngineStall {
            endpoint: "sophia-endpoint".to_string(),
            duration: SimDuration::from_secs(1800),
        },
    );
    let mut injector = FaultInjector::new(plan);
    let report = run_resilience_openloop(
        &mut gateway,
        &mut injector,
        &tokens.alice,
        MODEL,
        &samples,
        &arrivals,
        "stall",
        SimTime::from_secs(7200),
    );
    assert_eq!(report.completed, n);
    assert!(report.hedges >= 1, "hedges: {}", report.hedges);
    // Hedged requests finished far sooner than the stall would have allowed.
    assert!(
        report.p99_latency_s < 600.0,
        "p99 {} should beat the 1800 s stall",
        report.p99_latency_s
    );
}
