//! Request-lifecycle tracing, end to end: span trees sampled at
//! `sample_every = 1` must nest correctly and account for every microsecond
//! of end-to-end latency (`phases + idle == e2e`), and 1-in-N sampling over
//! randomized scenario specs must be a pure function of the seed — two
//! identical runs export byte-identical Chrome traces.

use first_core::ScenarioRun;
use first_telemetry::{chrome_trace_json, Phase, TraceConfig};
use first_workload::catalog;
use proptest::prelude::*;

/// Every sampled request on the `burst` catalog scenario yields a complete,
/// well-formed span tree whose phase breakdown reconciles exactly with the
/// end-to-end latency, with the lifecycle phases in order under the root.
#[test]
fn span_trees_nest_and_phases_are_exhaustive() {
    let spec = catalog(150)
        .into_iter()
        .find(|s| s.name == "burst")
        .expect("catalog scenario present");
    let out = ScenarioRun::new(&spec)
        .seed(42)
        .traced(TraceConfig::every_request(4096))
        .execute()
        .expect("traced run");
    let (report, trees) = (out.report, out.traces.expect("traced run yields trees"));

    assert!(!trees.is_empty(), "sample_every=1 sampled nothing");
    assert_eq!(
        trees.len(),
        report.completed + report.failed,
        "one span tree per finished request"
    );
    for tree in &trees {
        // Structural nesting: root `request` span at index 0, every child
        // interval contained in its parent's, parents before children.
        assert!(tree.well_formed(), "malformed tree: {tree:?}");
        assert_eq!(tree.root().unwrap().phase, Phase::Request);

        // Phase exhaustiveness: the leaf phases plus idle gaps account for
        // the end-to-end latency exactly, in integer microseconds.
        assert_eq!(
            tree.phase_total_micros() + tree.idle_micros(),
            tree.end_to_end_micros(),
            "request {} leaks time",
            tree.request_id
        );

        // Each lifecycle phase appears at most once, in lifecycle order.
        let leaves: Vec<Phase> = tree
            .spans
            .iter()
            .filter(|s| s.parent.is_some())
            .map(|s| s.phase)
            .collect();
        let mut ordered = leaves.clone();
        ordered.sort_by_key(|p| Phase::ALL.iter().position(|q| q == p));
        assert_eq!(leaves, ordered, "phases out of lifecycle order");
        for phase in Phase::ALL {
            assert!(
                leaves.iter().filter(|p| **p == phase).count() <= 1,
                "phase {phase:?} recorded twice in one tree"
            );
        }
        if tree.success && !tree.cached {
            for expected in [
                Phase::QueueWait,
                Phase::Prefill,
                Phase::Decode,
                Phase::Deliver,
            ] {
                assert!(
                    leaves.contains(&expected),
                    "served request {} missing {expected:?}",
                    tree.request_id
                );
            }
        }
    }

    // The aggregated breakdown covers the same trees.
    let phases = report.phases.expect("traced run reports a breakdown");
    assert_eq!(phases.sampled, trees.len() as u64);
    assert_eq!(phases.dropped, 0);
    assert!(!phases.critical_path.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// 1-in-N sampling over a randomized scenario spec is seed-deterministic:
    /// the same (spec, seed, trace config) exports a byte-identical Chrome
    /// trace, and the sampled count follows the deterministic counter.
    #[test]
    fn sampled_traces_are_seed_deterministic(
        scenario_idx in 0usize..3,
        requests in 20usize..80,
        sample_every in 1u64..5,
        seed in 0u64..500,
        prewarm in 0u32..3,
    ) {
        let names = ["steady", "burst", "multi-tenant-contention"];
        let mut spec = catalog(requests)
            .into_iter()
            .find(|s| s.name == names[scenario_idx])
            .expect("catalog scenario present");
        spec.prewarm = prewarm;

        let trace = TraceConfig { sample_every, capacity: 4096 };
        let run = |spec: &first_workload::ScenarioSpec| {
            let out = ScenarioRun::new(spec)
                .seed(seed)
                .traced(trace)
                .execute()
                .expect("traced run");
            (out.report, out.traces.expect("traced run yields trees"))
        };
        let (report_a, trees_a) = run(&spec);
        let (report_b, trees_b) = run(&spec);

        // Byte-identical trace export and identical reports.
        let export_a = chrome_trace_json(trees_a.iter());
        let export_b = chrome_trace_json(trees_b.iter());
        prop_assert_eq!(&export_a, &export_b);
        prop_assert_eq!(
            serde_json::to_string(&report_a).unwrap(),
            serde_json::to_string(&report_b).unwrap()
        );

        // The deterministic counter samples every Nth finished request, so
        // N=1 captures everything and larger N captures roughly 1/N.
        let finished = report_a.completed + report_a.failed;
        if sample_every == 1 {
            prop_assert_eq!(trees_a.len(), finished);
        } else {
            prop_assert!(trees_a.len() <= finished / sample_every as usize + 1);
        }
        for tree in &trees_a {
            prop_assert!(tree.well_formed());
        }

        // The export parses as Chrome-trace JSON.
        let value = serde_json::parse_value_complete(&export_a).expect("valid JSON");
        let events = value
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        prop_assert_eq!(
            events.len(),
            trees_a.iter().map(|t| t.spans.len()).sum::<usize>()
        );
    }
}
