//! Property-based guarantees for the sharded federation tier.
//!
//! Two families of properties:
//!
//! 1. **Single-shard transparency** — a 1-shard [`ShardedGateway`] is the
//!    unsharded gateway: for random workloads, driving both with the same
//!    request stream yields identical §5.1 metrics, and a 1-shard
//!    [`ScenarioRun`] serializes to the same bytes whether sharding was
//!    requested explicitly or left at the default.
//! 2. **Consistent-hash stability** — growing the ring from `n` to `n+1`
//!    shards moves keys only *to* the new shard (never between old shards),
//!    the moved fraction stays near the ideal `1/(n+1)`, and lookups are a
//!    pure function of `(key, n)`.

use first_core::{
    run_gateway_openloop, run_sharded_openloop, ConsistentHashRing, DeploymentBuilder, ScenarioRun,
    ShardedGateway, ShardingConfig,
};
use first_desim::{SimRng, SimTime};
use first_workload::{
    ArrivalProcess, DeploymentRef, ScenarioSpec, ShareGptGenerator, SloTarget, TenantClass,
};
use proptest::prelude::*;

const MODEL: &str = "meta-llama/Llama-3.3-70B-Instruct";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Driving a 1-shard fleet open-loop produces exactly the §5.1 metrics
    /// of the bare gateway on the same stream — the federation front tier
    /// adds nothing at n = 1.
    #[test]
    fn one_shard_openloop_matches_unsharded(
        requests in 5usize..60,
        rate in 1.0f64..30.0,
        users in 1usize..16,
        seed in 0u64..1_000,
    ) {
        let samples = ShareGptGenerator::new(seed).samples(requests);
        let mut rng = SimRng::seed_from_u64(seed ^ 0xA5A5);
        let arrivals =
            ArrivalProcess::FixedRate(rate).arrivals(requests, SimTime::ZERO, &mut rng);
        let horizon = SimTime::from_secs(14 * 24 * 3600);

        let (mut gateway, tokens) = DeploymentBuilder::sophia_single_instance()
            .prewarm(1)
            .build_with_tokens();
        let mut plain = run_gateway_openloop(
            &mut gateway, &tokens.alice, MODEL, &samples, &arrivals, "p", horizon,
        );

        let mut fleet = ShardedGateway::from_builder(
            &DeploymentBuilder::sophia_single_instance().prewarm(1),
            ShardingConfig::single(),
        );
        let shard_tokens =
            vec![first_core::enroll_standard_users(fleet.shard_mut(0)).alice];
        let mut sharded = run_sharded_openloop(
            &mut fleet, &shard_tokens, MODEL, &samples, &arrivals, users, "p", horizon,
        );

        // The label is the only intentional difference.
        prop_assert_eq!(&sharded.label, "FIRST x1 shards");
        plain.label.clear();
        sharded.label.clear();
        prop_assert_eq!(plain, sharded);
        prop_assert_eq!(fleet.spilled_total(), 0);
        prop_assert_eq!(fleet.routed(), &[requests][..]);
    }

    /// `ScenarioRun::new(spec).shards(1)` is byte-identical to the default
    /// (unsharded) execution for random specs: explicit single-sharding is
    /// a no-op all the way down to the serialized report.
    #[test]
    fn one_shard_scenario_run_byte_identical(
        requests_a in 3usize..40,
        requests_b in 3usize..40,
        rate in 0.5f64..10.0,
        seed in 0u64..1_000,
    ) {
        let mut spec = ScenarioSpec::new(
            "prop-shard",
            "randomised 1-shard transparency spec",
            DeploymentRef::SingleClusterTest,
            vec![
                TenantClass::synthetic(
                    "alpha",
                    requests_a,
                    ArrivalProcess::Poisson(rate),
                    "meta-llama/Meta-Llama-3.1-8B-Instruct",
                )
                .with_slo(SloTarget::interactive()),
                TenantClass::synthetic(
                    "beta",
                    requests_b,
                    ArrivalProcess::FixedRate(rate * 2.0),
                    "meta-llama/Meta-Llama-3.1-8B-Instruct",
                )
                .with_slo(SloTarget::batch()),
            ],
        );
        spec.horizon_s = 7200.0;

        let plain = ScenarioRun::new(&spec).seed(seed).execute().unwrap().report;
        let explicit = ScenarioRun::new(&spec)
            .seed(seed)
            .shards(1)
            .execute()
            .unwrap()
            .report;
        prop_assert!(plain.shards.is_none());
        prop_assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&explicit).unwrap()
        );
    }

    /// Ring growth from `n` to `n+1` shards moves keys only onto the new
    /// shard, and the moved fraction stays near the ideal `1/(n+1)`.
    #[test]
    fn ring_growth_moves_keys_only_to_new_shard(
        n in 1usize..9,
        keys in 200usize..600,
        salt in 0u64..10_000,
    ) {
        let old = ConsistentHashRing::new(n);
        let new = ConsistentHashRing::new(n + 1);
        let mut moved = 0usize;
        for k in 0..keys {
            let key = format!("tenant-{salt}-{k}");
            let before = old.shard_for(&key);
            let after = new.shard_for(&key);
            if before != after {
                // A remapped key may only land on the newly added shard.
                prop_assert_eq!(after, n);
                moved += 1;
            }
        }
        let ideal = keys as f64 / (n as f64 + 1.0);
        // With 64 vnodes/shard the arc ownership is uneven but bounded:
        // allow 3x the ideal churn plus slack for small samples.
        prop_assert!(
            (moved as f64) < 3.0 * ideal + 12.0,
            "moved {} of {} keys at n={} (ideal {:.1})",
            moved, keys, n, ideal
        );
    }

    /// Shard death is the exact inverse of ring growth: removing shard `k`
    /// from an `n`-shard ring remaps **only** the keys that were homed on
    /// `k` — every key on a surviving shard keeps its assignment, so a
    /// crash never disturbs live shards' tenants.
    #[test]
    fn ring_removal_remaps_only_the_dead_shards_keys(
        n in 2usize..10,
        dead in 0usize..10,
        keys in 200usize..600,
        salt in 0u64..10_000,
    ) {
        let dead = dead % n;
        let full = ConsistentHashRing::new(n);
        let degraded = full.without(dead);
        let mut moved = 0usize;
        for k in 0..keys {
            let key = format!("tenant-{salt}-{k}");
            let before = full.shard_for(&key);
            let after = degraded.shard_for(&key);
            // The dead shard owns nothing in the degraded view…
            prop_assert_ne!(after, dead);
            if before == dead {
                moved += 1;
            } else {
                // …and nobody else's keys move.
                prop_assert_eq!(before, after);
            }
        }
        // Sanity: with 64 vnodes/shard the dead shard owned a nontrivial
        // slice, so a large enough sample sees at least one remap.
        if keys >= 400 && n <= 4 {
            prop_assert!(moved > 0, "shard {} owned no keys of {}", dead, keys);
        }
    }

    /// Degraded-view lookups are a pure function of `(key, live-set)`:
    /// deriving the same live-set twice — or via `restricted` with the
    /// equivalent membership mask — yields identical assignments.
    #[test]
    fn ring_removal_lookup_pure_in_key_and_live_set(
        n in 2usize..10,
        dead in 0usize..10,
        keys in 1usize..200,
        salt in 0u64..10_000,
    ) {
        let dead = dead % n;
        let full = ConsistentHashRing::new(n);
        let a = full.without(dead);
        let b = full.without(dead);
        let mut routable = vec![true; n];
        routable[dead] = false;
        let c = full.restricted(&routable);
        for k in 0..keys {
            let key = format!("user-{salt}-{k}");
            let shard = a.shard_for(&key);
            prop_assert!(shard < n);
            prop_assert_ne!(shard, dead);
            prop_assert_eq!(shard, b.shard_for(&key));
            prop_assert_eq!(shard, c.shard_for(&key));
        }
    }

    /// Lookups are a pure function of `(key, shard count)`: rebuilding the
    /// ring never changes an assignment, and every shard index is in range.
    #[test]
    fn ring_lookup_deterministic_and_in_range(
        n in 1usize..12,
        keys in 1usize..200,
        salt in 0u64..10_000,
    ) {
        let a = ConsistentHashRing::new(n);
        let b = ConsistentHashRing::new(n);
        for k in 0..keys {
            let key = format!("user-{salt}-{k}");
            let shard = a.shard_for(&key);
            prop_assert!(shard < n);
            prop_assert_eq!(shard, b.shard_for(&key));
        }
    }
}
