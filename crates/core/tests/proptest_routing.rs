//! Property-based equivalence tests for the interned-id hot paths: for
//! random deployments and workloads, id-based routing must pick exactly the
//! endpoint a string-keyed reference implementation picks, and a full
//! id-based gateway run must produce byte-identical responses, logs and
//! metric keys when repeated — the string names reappearing only at the
//! boundary, resolved from the same ids.

use first_core::{
    run_gateway_openloop, DeploymentBuilder, FederationRouter, ModelRegistry, RoutingPolicy,
    RoutingReason,
};
use first_desim::{SimRng, SimTime};
use first_fabric::{ComputeService, InstanceState};
use first_workload::{ArrivalProcess, ShareGptGenerator};
use proptest::prelude::*;

const MODELS: [&str; 3] = [
    "meta-llama/Llama-3.3-70B-Instruct",
    "meta-llama/Meta-Llama-3.1-8B-Instruct",
    "google/gemma-2-27b-it",
];

/// Build a federated two-cluster deployment and perturb it with a random
/// prewarm pattern so routing sees varied activity.
fn deployment(prewarms: &[(usize, usize, u32)]) -> (ModelRegistry, ComputeService) {
    let (gateway, _tokens) = DeploymentBuilder::federated_sophia_polaris().build_with_tokens();
    // Recover the pieces the router needs by rebuilding the same deployment
    // shape: registry and service are cloned views of the gateway's.
    let registry = gateway.registry().clone();
    let mut service = gateway.service().clone();
    let endpoint_names: Vec<String> = service.endpoint_names();
    for &(ep, model, count) in prewarms {
        let name = &endpoint_names[ep % endpoint_names.len()];
        let model = MODELS[model % MODELS.len()];
        service
            .endpoint_mut(name)
            .unwrap()
            .prewarm(model, count % 3, SimTime::ZERO);
    }
    (registry, service)
}

/// The string-keyed §4.5 reference algorithm, as it was before the
/// interned-id refactor: active instance → free capacity → configuration
/// order, reading only the public string APIs.
fn reference_paper_priority(
    registry: &ModelRegistry,
    service: &ComputeService,
    model: &str,
) -> Option<(String, RoutingReason)> {
    let endpoints = registry.endpoints_for(model)?;
    if endpoints.is_empty() {
        return None;
    }
    for name in endpoints {
        if let Some(ep) = service.endpoint(name) {
            let a = ep.model_activity(model);
            if a.running > 0 || a.starting > 0 || a.queued > 0 {
                return Some((name.clone(), RoutingReason::ActiveInstance));
            }
        }
    }
    for name in endpoints {
        if let Some(ep) = service.endpoint(name) {
            if ep.cluster_status().idle_nodes > 0 {
                return Some((name.clone(), RoutingReason::FreeCapacity));
            }
        }
    }
    Some((endpoints[0].clone(), RoutingReason::ConfigurationOrder))
}

/// String-keyed reference for the least-outstanding policy.
fn reference_least_outstanding(
    registry: &ModelRegistry,
    service: &ComputeService,
    model: &str,
) -> Option<String> {
    let endpoints = registry.endpoints_for(model)?;
    let mut best: Option<(&str, usize, u32)> = None;
    for name in endpoints {
        let Some(ep) = service.endpoint(name) else {
            continue;
        };
        let activity = ep.model_activity(model);
        let in_flight: usize = ep
            .instances()
            .iter()
            .filter(|i| i.model == model && i.state == InstanceState::Ready)
            .map(|i| i.in_flight())
            .sum();
        let outstanding = activity.backlog + in_flight;
        let idle = ep.cluster_status().idle_nodes;
        let better = match best {
            None => true,
            Some((_, bo, bi)) => outstanding < bo || (outstanding == bo && idle > bi),
        };
        if better {
            best = Some((name, outstanding, idle));
        }
    }
    best.map(|(n, _, _)| n.to_string())
        .or_else(|| endpoints.first().cloned())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Id-based routing picks the same endpoint as the string-keyed
    /// reference, for every registered model and random deployment state.
    #[test]
    fn id_routing_matches_string_reference(
        prewarms in proptest::collection::vec((0usize..4, 0usize..4, 0u32..3), 0..6),
    ) {
        let (registry, service) = deployment(&prewarms);
        let router = FederationRouter::new();
        for model in MODELS {
            let id_decision = router.route(&registry, &service, model);
            let reference = reference_paper_priority(&registry, &service, model);
            match (id_decision, reference) {
                (Some(d), Some((endpoint, reason))) => {
                    prop_assert_eq!(&d.endpoint, &endpoint);
                    prop_assert_eq!(d.reason, reason);
                }
                (None, None) => {}
                (d, r) => prop_assert!(false, "id={d:?} reference={r:?}"),
            }
            // The interner round-trips the name that routing keys on.
            if let Some(mid) = registry.model_id(model) {
                prop_assert_eq!(registry.model_name(mid), model);
            }
        }
    }

    /// The least-outstanding alternative policy agrees with its string
    /// reference too (it reads backlogs and in-flight counts through the
    /// hosting-index probes).
    #[test]
    fn least_outstanding_matches_string_reference(
        prewarms in proptest::collection::vec((0usize..4, 0usize..4, 0u32..3), 0..6),
    ) {
        let (registry, service) = deployment(&prewarms);
        let router = FederationRouter::with_policy(RoutingPolicy::LeastOutstanding);
        for model in MODELS {
            let id_decision = router.route(&registry, &service, model).map(|d| d.endpoint);
            let reference = reference_least_outstanding(&registry, &service, model);
            prop_assert_eq!(id_decision, reference);
        }
    }

    /// A full gateway run is a pure function of its seed: two identically
    /// built deployments replaying the same random workload produce
    /// byte-identical response streams, request logs and metric keys — i.e.
    /// the ids threaded through the hot paths resolve back to exactly the
    /// strings the string-keyed path produced.
    #[test]
    fn gateway_runs_are_reproducible_end_to_end(
        seed in 0u64..1000,
        n in 5usize..40,
        rate in prop_oneof![Just(2.0f64), Just(8.0), Just(25.0)],
    ) {
        let run = || {
            let (mut gateway, tokens) = DeploymentBuilder::federated_sophia_polaris()
                .prewarm(1)
                .build_with_tokens();
            let samples = ShareGptGenerator::new(seed).samples(n);
            let mut rng = SimRng::seed_from_u64(seed ^ 0xABCD);
            let arrivals =
                ArrivalProcess::FixedRate(rate).arrivals(n, SimTime::ZERO, &mut rng);
            let report = run_gateway_openloop(
                &mut gateway,
                &tokens.alice,
                MODELS[0],
                &samples,
                &arrivals,
                "p",
                SimTime::from_secs(24 * 3600),
            );
            let log: Vec<String> = gateway
                .log()
                .entries()
                .iter()
                .map(|e| {
                    format!(
                        "{}|{}|{}|{}|{}|{}",
                        e.request_id, e.user, e.model, e.endpoint, e.finished_at, e.success
                    )
                })
                .collect();
            let metric_models: Vec<String> = gateway
                .metrics_mut()
                .latency_by_model
                .keys()
                .cloned()
                .collect();
            (serde_json::to_string(&report).unwrap(), log, metric_models)
        };
        let a = run();
        let b = run();
        prop_assert_eq!(&a, &b);
        // Metric keys are real model names (ids resolved at the boundary).
        for key in &a.2 {
            prop_assert!(MODELS.contains(&key.as_str()), "unexpected metric key {key}");
        }
        // Every logged endpoint is a real endpoint name or the cache marker.
        for line in &a.1 {
            let endpoint = line.split('|').nth(3).unwrap();
            prop_assert!(
                endpoint.is_empty()
                    || endpoint == "sophia-endpoint"
                    || endpoint == "polaris-endpoint",
                "unexpected endpoint {endpoint}"
            );
        }
    }
}
