//! Direct exercises of the `first-core::invariants` public API: the clock
//! monitor, the run ledger, the run-invariant checker over a hand-driven
//! gateway, and replay-mode conservation against a real recorded cassette.
//! These cover the checker *as a library* — independent of the automatic
//! debug-build hook inside `ScenarioRun`.

use first_core::{
    check_replay_invariants, check_run_invariants, ChatCompletionRequest, ClockMonitor,
    DeploymentBuilder, RunLedger, ScenarioRun,
};
use first_desim::{SimProcess, SimTime};
use first_workload::{ArrivalProcess, DeploymentRef, ScenarioSpec, TenantClass};

const MODEL: &str = "meta-llama/Meta-Llama-3.1-8B-Instruct";

#[test]
fn clock_monitor_tracks_monotone_and_backward_steps() {
    let mut clock = ClockMonitor::new();
    assert_eq!(clock.last(), SimTime::ZERO);
    assert!(clock.observe(SimTime::from_secs(3)));
    assert!(clock.observe(SimTime::from_secs(3)), "repeats are monotone");
    assert!(!clock.observe(SimTime::from_secs(1)), "backward step");
    assert!(
        !clock.observe(SimTime::ZERO),
        "still behind the high-water mark"
    );
    assert_eq!(clock.violations(), 2);
    // A backward step never lowers the high-water mark.
    assert_eq!(clock.last(), SimTime::from_secs(3));
    assert!(clock.observe(SimTime::from_secs(4)));
    assert_eq!(clock.violations(), 2);
}

#[test]
fn ledger_counts_submissions_and_responses() {
    let mut ledger = RunLedger::new();
    ledger.on_submission(true);
    ledger.on_submission(true);
    ledger.on_submission(false);
    ledger.on_response(true);
    ledger.on_response(false);
    assert_eq!(
        (ledger.offered, ledger.accepted, ledger.rejected),
        (3, 2, 1)
    );
    assert_eq!((ledger.completed, ledger.failed), (1, 1));
}

/// Drive a small run by hand, ledger alongside, and check every invariant.
#[test]
fn hand_driven_run_satisfies_the_checker() {
    let (mut gw, tokens) = DeploymentBuilder::single_cluster_test()
        .prewarm(1)
        .build_with_tokens();
    let mut ledger = RunLedger::new();
    for i in 0..8u64 {
        let req = ChatCompletionRequest::simple(MODEL, &format!("direct {i}"), 96);
        let ok = gw
            .chat_completions(&req, &tokens.alice, Some(64), SimTime::from_secs(i * 2))
            .is_ok();
        ledger.on_submission(ok);
    }
    let mut now = SimTime::ZERO;
    while let Some(t) = SimProcess::next_event_time(&gw) {
        now = now.max(t);
        ledger.clock.observe(now);
        gw.advance(now);
        for r in gw.take_responses() {
            ledger.on_response(r.success);
        }
        if gw.is_drained() {
            break;
        }
    }
    ledger.drained = gw.is_drained();
    check_run_invariants(&gw, &ledger).expect("hand-driven run holds all invariants");
    assert_eq!(ledger.offered, ledger.accepted + ledger.rejected);
    assert_eq!(ledger.completed + ledger.failed, ledger.accepted);
}

#[test]
fn each_forged_ledger_defect_is_named_in_the_violations() {
    let (gw, _tokens) = DeploymentBuilder::single_cluster_test()
        .prewarm(1)
        .build_with_tokens();
    let clean = RunLedger {
        offered: 4,
        accepted: 4,
        rejected: 0,
        completed: 4,
        failed: 0,
        clock: ClockMonitor::new(),
        drained: true,
    };
    check_run_invariants(&gw, &clean).expect("baseline forged ledger is clean");

    // Conservation at the submission boundary.
    let unbalanced = RunLedger {
        rejected: 1,
        ..clean.clone()
    };
    let v = check_run_invariants(&gw, &unbalanced).unwrap_err();
    assert!(v.iter().any(|m| m.contains("offered")), "{v:?}");

    // More answers than acceptances is wrong even mid-run.
    let overdelivered = RunLedger {
        completed: 5,
        drained: false,
        ..clean.clone()
    };
    let v = check_run_invariants(&gw, &overdelivered).unwrap_err();
    assert!(v.iter().any(|m| m.contains("more responses")), "{v:?}");

    // A backwards clock is reported no matter how the counts look.
    let mut clock = ClockMonitor::new();
    clock.observe(SimTime::from_secs(9));
    clock.observe(SimTime::from_secs(1));
    let time_traveller = RunLedger { clock, ..clean };
    let v = check_run_invariants(&gw, &time_traveller).unwrap_err();
    assert!(v.iter().any(|m| m.contains("backwards")), "{v:?}");
}

/// Replay-mode conservation against a genuinely recorded cassette: the
/// recorded report passes, and every forgeable divergence — count, seed,
/// scenario name, tenant partition — is called out by name.
#[test]
fn replay_conservation_holds_for_a_real_recording_and_names_forgeries() {
    let spec = ScenarioSpec::new(
        "replay-conservation",
        "two-tenant recording for replay invariant checks",
        DeploymentRef::SingleClusterTest,
        vec![
            TenantClass::synthetic("gold", 6, ArrivalProcess::Poisson(2.0), MODEL),
            TenantClass::synthetic("bronze", 4, ArrivalProcess::FixedRate(1.0), MODEL),
        ],
    );
    let out = ScenarioRun::new(&spec)
        .seed(7)
        .recorded()
        .execute()
        .expect("spec records");
    let (report, cassette) = (out.report, out.cassette.expect("recorded"));

    // The genuine pair conserves: offered == cassette length, per tenant too.
    check_replay_invariants(&report, &cassette).expect("recording conserves");
    assert_eq!(report.offered, cassette.len());

    // Whole-run count forgery.
    let mut forged = report.clone();
    forged.offered += 1;
    let v = check_replay_invariants(&forged, &cassette).unwrap_err();
    assert!(v.iter().any(|m| m.contains("recorded")), "{v:?}");

    // Identity forgeries.
    let mut renamed = report.clone();
    renamed.scenario = "somebody-else".to_string();
    renamed.seed = 8;
    let v = check_replay_invariants(&renamed, &cassette).unwrap_err();
    assert!(v.iter().any(|m| m.contains("scenario")), "{v:?}");
    assert!(v.iter().any(|m| m.contains("seed")), "{v:?}");

    // Per-tenant partition forgeries: a dropped partition, then a renamed
    // tenant with a shifted per-tenant count.
    let mut dropped = report.clone();
    dropped.tenants.pop();
    let v = check_replay_invariants(&dropped, &cassette).unwrap_err();
    assert!(v.iter().any(|m| m.contains("partition")), "{v:?}");

    let mut shifted = report.clone();
    shifted.tenants[0].tenant = "impostor".to_string();
    shifted.tenants[1].offered += 1;
    let v = check_replay_invariants(&shifted, &cassette).unwrap_err();
    assert!(v.iter().any(|m| m.contains("impostor")), "{v:?}");
    assert!(v.iter().any(|m| m.contains("bronze")), "{v:?}");
}
