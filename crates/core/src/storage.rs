//! Request logging and the metrics layer (§3.1.1).
//!
//! The production gateway logs every user activity in PostgreSQL and exposes
//! real-time and summary metrics through a dashboard. Here the log is an
//! in-memory append-only store with the query patterns the dashboard needs
//! (per-user, per-model, deployment totals), and the metrics layer keeps the
//! counters and latency histograms the benchmark reports read.

use first_desim::{Histogram, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One logged request (the PostgreSQL row equivalent).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestLogEntry {
    /// Gateway-assigned request id.
    pub request_id: u64,
    /// Submitting user.
    pub user: String,
    /// Target model.
    pub model: String,
    /// Endpoint the request was routed to.
    pub endpoint: String,
    /// API operation.
    pub operation: String,
    /// Arrival time at the gateway.
    pub arrived_at: SimTime,
    /// Completion time (response returned to the user).
    pub finished_at: SimTime,
    /// Prompt tokens.
    pub prompt_tokens: u32,
    /// Completion tokens.
    pub completion_tokens: u32,
    /// Whether the request succeeded.
    pub success: bool,
    /// Whether the request was part of a batch job.
    pub batch: bool,
}

impl RequestLogEntry {
    /// End-to-end latency of the request.
    pub fn latency(&self) -> SimDuration {
        self.finished_at - self.arrived_at
    }

    /// Total tokens processed.
    pub fn total_tokens(&self) -> u64 {
        self.prompt_tokens as u64 + self.completion_tokens as u64
    }
}

/// Aggregates the dashboard shows per user or per model.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct UsageSummary {
    /// Requests logged.
    pub requests: u64,
    /// Prompt + completion tokens.
    pub total_tokens: u64,
    /// Completion tokens only.
    pub completion_tokens: u64,
    /// Failed requests.
    pub failures: u64,
}

/// Append-only request log (PostgreSQL substitute).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RequestLog {
    entries: Vec<RequestLogEntry>,
}

impl RequestLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an entry.
    pub fn record(&mut self, entry: RequestLogEntry) {
        self.entries.push(entry);
    }

    /// Number of logged requests.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over all entries.
    pub fn entries(&self) -> &[RequestLogEntry] {
        &self.entries
    }

    /// Number of distinct users seen.
    pub fn distinct_users(&self) -> usize {
        let mut users: Vec<&str> = self.entries.iter().map(|e| e.user.as_str()).collect();
        users.sort_unstable();
        users.dedup();
        users.len()
    }

    /// Total tokens generated (completion side), the paper's headline metric.
    pub fn total_completion_tokens(&self) -> u64 {
        self.entries
            .iter()
            .map(|e| e.completion_tokens as u64)
            .sum()
    }

    /// Per-user usage aggregates.
    pub fn usage_by_user(&self) -> BTreeMap<String, UsageSummary> {
        let mut out: BTreeMap<String, UsageSummary> = BTreeMap::new();
        for e in &self.entries {
            let s = out.entry(e.user.clone()).or_default();
            s.requests += 1;
            s.total_tokens += e.total_tokens();
            s.completion_tokens += e.completion_tokens as u64;
            if !e.success {
                s.failures += 1;
            }
        }
        out
    }

    /// Per-model usage aggregates.
    pub fn usage_by_model(&self) -> BTreeMap<String, UsageSummary> {
        let mut out: BTreeMap<String, UsageSummary> = BTreeMap::new();
        for e in &self.entries {
            let s = out.entry(e.model.clone()).or_default();
            s.requests += 1;
            s.total_tokens += e.total_tokens();
            s.completion_tokens += e.completion_tokens as u64;
            if !e.success {
                s.failures += 1;
            }
        }
        out
    }

    /// Interactive vs batch request counts.
    pub fn interactive_batch_split(&self) -> (u64, u64) {
        let batch = self.entries.iter().filter(|e| e.batch).count() as u64;
        (self.entries.len() as u64 - batch, batch)
    }
}

/// Live metrics the gateway exposes (§3.1.1 "metrics layer").
#[derive(Debug, Clone, Default)]
pub struct GatewayMetrics {
    /// Requests received, keyed by operation.
    pub received: BTreeMap<String, u64>,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests failed (any stage).
    pub failed: u64,
    /// Requests rejected before dispatch (auth, rate limit, validation).
    pub rejected: u64,
    /// Output tokens returned to users.
    pub output_tokens: u64,
    /// Retries of failed idempotent requests (resilience layer).
    pub retries: u64,
    /// Requests failed over to a different endpoint than the one that
    /// originally failed them.
    pub failovers: u64,
    /// Circuit-breaker trips observed across all endpoints.
    pub breaker_trips: u64,
    /// Hedged (duplicated) requests issued for slow in-flight calls.
    pub hedges: u64,
    /// End-to-end latency histogram (seconds), per model.
    pub latency_by_model: BTreeMap<String, Histogram>,
}

impl GatewayMetrics {
    /// Create empty metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count a received request for an operation.
    ///
    /// Runs once per request on the gateway's hottest path: the existing-key
    /// fast path avoids allocating the operation name (the map only ever
    /// holds a handful of operations, all inserted on their first request).
    pub fn on_received(&mut self, operation: &str) {
        if let Some(count) = self.received.get_mut(operation) {
            *count += 1;
        } else {
            self.received.insert(operation.to_string(), 1);
        }
    }

    /// Count a rejection.
    pub fn on_rejected(&mut self) {
        self.rejected += 1;
    }

    /// Count a completion and record its latency.
    ///
    /// Same fast-path shape as [`GatewayMetrics::on_received`]: the model
    /// name is only allocated the first time a model completes a request.
    pub fn on_completed(&mut self, model: &str, latency: SimDuration, output_tokens: u32) {
        self.completed += 1;
        self.output_tokens += output_tokens as u64;
        if let Some(h) = self.latency_by_model.get_mut(model) {
            h.record(latency.as_secs_f64());
        } else {
            let mut h = Histogram::new();
            h.record(latency.as_secs_f64());
            self.latency_by_model.insert(model.to_string(), h);
        }
    }

    /// Count a failure.
    pub fn on_failed(&mut self) {
        self.failed += 1;
    }

    /// Count a retry of a failed idempotent request.
    pub fn on_retry(&mut self) {
        self.retries += 1;
    }

    /// Count a failover to a different endpoint.
    pub fn on_failover(&mut self) {
        self.failovers += 1;
    }

    /// Count a circuit-breaker trip.
    pub fn on_breaker_trip(&mut self) {
        self.breaker_trips += 1;
    }

    /// Count a hedged (duplicated) request.
    pub fn on_hedge(&mut self) {
        self.hedges += 1;
    }

    /// Total requests received across operations.
    pub fn total_received(&self) -> u64 {
        self.received.values().sum()
    }

    /// Median end-to-end latency for a model, in seconds.
    pub fn median_latency(&mut self, model: &str) -> Option<f64> {
        self.latency_by_model.get_mut(model).map(|h| h.median())
    }

    /// Render the dashboard summary as a plain-text table.
    pub fn dashboard_summary(&mut self) -> String {
        let mut out =
            String::from("model                                    reqs    median_s   p95_s\n");
        let models: Vec<String> = self.latency_by_model.keys().cloned().collect();
        for model in models {
            let h = self
                .latency_by_model
                .get_mut(&model)
                .expect("model present");
            out.push_str(&format!(
                "{model:<40} {:>6} {:>10.2} {:>7.2}\n",
                h.count(),
                h.median(),
                h.p95()
            ));
        }
        out.push_str(&format!(
            "totals: received={} completed={} failed={} rejected={} output_tokens={}\n",
            self.total_received(),
            self.completed,
            self.failed,
            self.rejected,
            self.output_tokens
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(user: &str, model: &str, tokens: u32, success: bool, batch: bool) -> RequestLogEntry {
        RequestLogEntry {
            request_id: 0,
            user: user.into(),
            model: model.into(),
            endpoint: "sophia-endpoint".into(),
            operation: "chat".into(),
            arrived_at: SimTime::from_secs(1),
            finished_at: SimTime::from_secs(4),
            prompt_tokens: 100,
            completion_tokens: tokens,
            success,
            batch,
        }
    }

    #[test]
    fn log_aggregates_by_user_and_model() {
        let mut log = RequestLog::new();
        log.record(entry("alice", "llama-70b", 200, true, false));
        log.record(entry("alice", "llama-8b", 100, true, false));
        log.record(entry("bob", "llama-70b", 50, false, true));
        assert_eq!(log.len(), 3);
        assert_eq!(log.distinct_users(), 2);
        assert_eq!(log.total_completion_tokens(), 350);
        let by_user = log.usage_by_user();
        assert_eq!(by_user["alice"].requests, 2);
        assert_eq!(by_user["alice"].completion_tokens, 300);
        assert_eq!(by_user["bob"].failures, 1);
        let by_model = log.usage_by_model();
        assert_eq!(by_model["llama-70b"].requests, 2);
        assert_eq!(log.interactive_batch_split(), (2, 1));
    }

    #[test]
    fn log_entry_latency() {
        let e = entry("alice", "m", 10, true, false);
        assert_eq!(e.latency(), SimDuration::from_secs(3));
        assert_eq!(e.total_tokens(), 110);
    }

    #[test]
    fn metrics_track_lifecycle() {
        let mut m = GatewayMetrics::new();
        m.on_received("chat");
        m.on_received("chat");
        m.on_received("embeddings");
        m.on_rejected();
        m.on_completed("llama-70b", SimDuration::from_secs(5), 150);
        m.on_completed("llama-70b", SimDuration::from_secs(7), 180);
        m.on_failed();
        assert_eq!(m.total_received(), 3);
        assert_eq!(m.completed, 2);
        assert_eq!(m.output_tokens, 330);
        let median = m.median_latency("llama-70b").unwrap();
        assert!((5.0..=7.0).contains(&median));
        assert!(m.median_latency("unknown").is_none());
    }

    #[test]
    fn dashboard_renders_all_models() {
        let mut m = GatewayMetrics::new();
        m.on_received("chat");
        m.on_completed("llama-70b", SimDuration::from_secs(2), 10);
        m.on_completed("llama-8b", SimDuration::from_secs(1), 10);
        let dash = m.dashboard_summary();
        assert!(dash.contains("llama-70b"));
        assert!(dash.contains("llama-8b"));
        assert!(dash.contains("output_tokens=20"));
    }
}
