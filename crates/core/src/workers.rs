//! Gateway worker-pool models (Optimization 3, §5.3.1).
//!
//! The original gateway used synchronous Django REST under Gunicorn: nine
//! worker processes, each blocked for the full duration of the request it was
//! relaying, so only nine requests could be in flight and the API's CPU sat
//! idle waiting on results. The production gateway uses asynchronous Django
//! Ninja with Uvicorn workers (`cpu_count()*2 + 1` workers, 4 threads each):
//! a request occupies a worker only for its brief CPU slice, so the gateway
//! can continuously offload work to the HPC cluster.

use first_desim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Worker-pool behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkerMode {
    /// Synchronous workers: a worker is held from admission until the
    /// response is delivered back to the client.
    Sync,
    /// Asynchronous workers: a worker is held only while the gateway does CPU
    /// work for the request (validation, serialisation, dispatch).
    Async,
}

/// Worker-pool configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkerPoolConfig {
    /// Behaviour mode.
    pub mode: WorkerMode,
    /// Number of worker slots.
    pub workers: usize,
    /// CPU time the gateway spends on each request (parse, validate, convert
    /// to a Compute task, log).
    pub per_request_cpu: SimDuration,
}

impl WorkerPoolConfig {
    /// The pre-optimization configuration: nine synchronous workers.
    pub fn sync_legacy() -> Self {
        WorkerPoolConfig {
            mode: WorkerMode::Sync,
            workers: 9,
            per_request_cpu: SimDuration::from_millis(25),
        }
    }

    /// The production configuration: asynchronous Gunicorn/Uvicorn deployment
    /// (`cpu_count()×2 + 1` workers × 4 threads ≈ 260 concurrent slots on the
    /// 32-core gateway VM; the precise number matters far less than the mode).
    pub fn async_production() -> Self {
        WorkerPoolConfig {
            mode: WorkerMode::Async,
            workers: 260,
            per_request_cpu: SimDuration::from_millis(15),
        }
    }
}

/// Tracks worker occupancy over virtual time.
///
/// Workers are modelled as a pool of slots that each become free at a known
/// time; admission picks the earliest-free slot.
#[derive(Debug, Clone)]
pub struct WorkerPool {
    config: WorkerPoolConfig,
    free_at: Vec<SimTime>,
    /// Async-mode accelerator: `(free_at, worker)` min-heap so admission is
    /// O(log workers) instead of scanning all 260 production slots per
    /// request. Ties pop in worker-index order, matching the scan's
    /// first-minimum choice. Sync mode keeps the scan (slots parked at
    /// `SimTime::MAX` until released make heap bookkeeping messier than the
    /// nine-slot walk it would replace).
    free_heap: std::collections::BinaryHeap<std::cmp::Reverse<(SimTime, usize)>>,
    admitted: u64,
    peak_wait_secs: f64,
}

/// The admission decision for one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Admission {
    /// When a worker became available and gateway CPU work started.
    pub started_at: SimTime,
    /// When the request is ready to be forwarded to the compute fabric.
    pub dispatch_ready_at: SimTime,
    /// Index of the worker slot used (needed to release sync workers).
    pub worker: usize,
}

impl WorkerPool {
    /// Create a pool with all workers free at time zero.
    pub fn new(config: WorkerPoolConfig) -> Self {
        let workers = config.workers.max(1);
        let free_heap = if config.mode == WorkerMode::Async {
            (0..workers)
                .map(|w| std::cmp::Reverse((SimTime::ZERO, w)))
                .collect()
        } else {
            std::collections::BinaryHeap::new()
        };
        WorkerPool {
            free_at: vec![SimTime::ZERO; workers],
            free_heap,
            config,
            admitted: 0,
            peak_wait_secs: 0.0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &WorkerPoolConfig {
        &self.config
    }

    /// Requests admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Largest admission wait observed, in seconds.
    pub fn peak_wait_secs(&self) -> f64 {
        self.peak_wait_secs
    }

    /// Admit a request arriving at `now`: wait for the earliest free worker,
    /// spend the per-request CPU, and (for async mode) release the slot at
    /// dispatch time. Sync-mode slots stay held until [`WorkerPool::release`].
    pub fn admit(&mut self, now: SimTime) -> Admission {
        let (worker, slot_free) = match self.config.mode {
            WorkerMode::Async => {
                let std::cmp::Reverse((t, w)) =
                    self.free_heap.pop().expect("pool has at least one worker");
                (w, t)
            }
            WorkerMode::Sync => {
                let (worker, &slot_free) = self
                    .free_at
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &t)| t)
                    .expect("pool has at least one worker");
                (worker, slot_free)
            }
        };
        let started_at = now.max(slot_free);
        let dispatch_ready_at = started_at + self.config.per_request_cpu;
        self.free_at[worker] = match self.config.mode {
            // Async workers free up as soon as the CPU slice is done.
            WorkerMode::Async => {
                self.free_heap
                    .push(std::cmp::Reverse((dispatch_ready_at, worker)));
                dispatch_ready_at
            }
            // Sync workers stay busy until release() is called; park them far
            // in the future so they are not picked again.
            WorkerMode::Sync => SimTime::MAX,
        };
        self.admitted += 1;
        let wait = started_at.saturating_since(now).as_secs_f64();
        if wait > self.peak_wait_secs {
            self.peak_wait_secs = wait;
        }
        Admission {
            started_at,
            dispatch_ready_at,
            worker,
        }
    }

    /// Release a sync worker when its request's response has been delivered.
    /// No-op in async mode.
    pub fn release(&mut self, worker: usize, now: SimTime) {
        if self.config.mode == WorkerMode::Sync {
            if let Some(slot) = self.free_at.get_mut(worker) {
                *slot = now;
            }
        }
    }

    /// Number of workers that are free at `now`.
    pub fn free_workers(&self, now: SimTime) -> usize {
        self.free_at.iter().filter(|&&t| t <= now).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn async_pool_admits_large_bursts_with_small_delay() {
        let mut pool = WorkerPool::new(WorkerPoolConfig::async_production());
        let mut worst = SimDuration::ZERO;
        for _ in 0..1000 {
            let a = pool.admit(SimTime::ZERO);
            let delay = a.dispatch_ready_at - SimTime::ZERO;
            if delay > worst {
                worst = delay;
            }
        }
        // 1000 requests over 260 async slots at 15 ms each: worst-case wait
        // stays well under a second.
        assert!(worst.as_secs_f64() < 0.2, "worst delay {worst}");
        assert_eq!(pool.admitted(), 1000);
    }

    #[test]
    fn sync_pool_blocks_at_nine_in_flight() {
        let mut pool = WorkerPool::new(WorkerPoolConfig::sync_legacy());
        let mut admissions = Vec::new();
        for _ in 0..9 {
            admissions.push(pool.admit(SimTime::ZERO));
        }
        assert_eq!(pool.free_workers(SimTime::from_secs(1)), 0);
        // The tenth request cannot start until a worker is released.
        let tenth = pool.admit(SimTime::from_secs(1));
        assert_eq!(tenth.started_at, SimTime::MAX);
        // Release one worker at t=30 s (its response came back); a fresh
        // admission then starts at 30 s.
        pool.release(admissions[0].worker, SimTime::from_secs(30));
        let eleventh = pool.admit(SimTime::from_secs(5));
        assert_eq!(eleventh.started_at, SimTime::from_secs(30));
    }

    #[test]
    fn sync_release_is_noop_for_async() {
        let mut pool = WorkerPool::new(WorkerPoolConfig::async_production());
        let a = pool.admit(SimTime::ZERO);
        pool.release(a.worker, SimTime::from_secs(100));
        // Async slot already became free at dispatch time, far before 100 s.
        assert!(pool.free_workers(SimTime::from_secs(1)) >= 259);
    }

    #[test]
    fn admission_waits_are_tracked() {
        let mut pool = WorkerPool::new(WorkerPoolConfig {
            mode: WorkerMode::Async,
            workers: 1,
            per_request_cpu: SimDuration::from_millis(100),
        });
        pool.admit(SimTime::ZERO);
        pool.admit(SimTime::ZERO);
        assert!(pool.peak_wait_secs() >= 0.1);
    }
}
