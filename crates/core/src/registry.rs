//! Model/endpoint registry and the federation router (§4.5).
//!
//! The registry records which endpoints can host each model, in configuration
//! order. The router implements the paper's priority-based endpoint selection:
//! (1) an endpoint where the model is already running or queued, then (2) an
//! endpoint whose cluster has free nodes, then (3) the first endpoint listed
//! for the model in the configuration registry.
//!
//! The paper notes the proof-of-concept algorithm is deliberately simple and
//! lists "improve scheduling for resource optimization" as future work (§7);
//! [`RoutingPolicy`] therefore also provides round-robin, least-outstanding
//! and most-idle-nodes alternatives, which the federation ablation benchmark
//! compares against the paper's priority scheme.

use first_chaos::{HealthState, HealthTracker};
use first_desim::SimTime;
use first_fabric::ComputeService;
use serde::{Deserialize, Serialize};
use std::cell::Cell;

/// A model's registration: the endpoints able to host it, in priority order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelRegistration {
    /// Model name.
    pub model: String,
    /// Endpoint names able to host the model, in configuration order.
    pub endpoints: Vec<String>,
}

/// The deployment's model registry.
///
/// Registrations are kept sorted by model name (an invariant `register`
/// maintains), so every per-request lookup is a binary search instead of the
/// linear scan the router used to pay on each routing decision. Endpoint
/// order *within* a registration stays configuration order — that order is
/// the §4.5 priority list.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ModelRegistry {
    registrations: Vec<ModelRegistration>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a model on an endpoint (appended in configuration order).
    /// Registering the same pair twice is a no-op.
    pub fn register(&mut self, model: &str, endpoint: &str) {
        match self
            .registrations
            .binary_search_by(|r| r.model.as_str().cmp(model))
        {
            Ok(i) => {
                let reg = &mut self.registrations[i];
                if !reg.endpoints.iter().any(|e| e == endpoint) {
                    reg.endpoints.push(endpoint.to_string());
                }
            }
            Err(i) => self.registrations.insert(
                i,
                ModelRegistration {
                    model: model.to_string(),
                    endpoints: vec![endpoint.to_string()],
                },
            ),
        }
    }

    /// Remove a model entirely (dashboard "deregister" action).
    pub fn deregister_model(&mut self, model: &str) -> bool {
        match self
            .registrations
            .binary_search_by(|r| r.model.as_str().cmp(model))
        {
            Ok(i) => {
                self.registrations.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Endpoints registered for a model, in configuration order.
    pub fn endpoints_for(&self, model: &str) -> Option<&[String]> {
        self.registrations
            .binary_search_by(|r| r.model.as_str().cmp(model))
            .ok()
            .map(|i| self.registrations[i].endpoints.as_slice())
    }

    /// All registered model names.
    pub fn models(&self) -> Vec<String> {
        self.registrations.iter().map(|r| r.model.clone()).collect()
    }

    /// Whether the model is registered anywhere.
    pub fn is_registered(&self, model: &str) -> bool {
        self.endpoints_for(model).is_some()
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.registrations.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.registrations.is_empty()
    }
}

/// Why the router picked the endpoint it picked (exposed for observability
/// and asserted on by the federation tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoutingReason {
    /// The model is already running (hot) or starting/queued on the endpoint.
    ActiveInstance,
    /// The endpoint's cluster reported free nodes.
    FreeCapacity,
    /// Fallback: first endpoint in the configuration registry.
    ConfigurationOrder,
    /// Round-robin rotation over the registered endpoints.
    RoundRobinRotation,
    /// The endpoint had the fewest outstanding tasks for the model.
    LeastOutstanding,
    /// The endpoint's cluster had the most idle nodes.
    MostIdleNodes,
}

/// Endpoint-selection policy used by the federation router.
///
/// [`RoutingPolicy::PaperPriority`] is the algorithm described in §4.5 and is
/// the default everywhere; the alternatives are the "improved scheduling"
/// candidates from §7, evaluated by `ablation_federation` in `first-bench`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoutingPolicy {
    /// §4.5: active instance → cluster with free nodes → configuration order.
    #[default]
    PaperPriority,
    /// Rotate over the registered endpoints regardless of their state.
    RoundRobin,
    /// Send to the endpoint with the fewest outstanding tasks (backlog plus
    /// in-flight) for the requested model; ties break toward more idle nodes,
    /// then configuration order.
    LeastOutstanding,
    /// Send to the endpoint whose cluster reports the most idle nodes; ties
    /// break toward configuration order.
    MostIdleNodes,
}

impl RoutingPolicy {
    /// All policies, in the order the ablation benchmark sweeps them.
    pub fn all() -> [RoutingPolicy; 4] {
        [
            RoutingPolicy::PaperPriority,
            RoutingPolicy::RoundRobin,
            RoutingPolicy::LeastOutstanding,
            RoutingPolicy::MostIdleNodes,
        ]
    }

    /// Short human-readable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            RoutingPolicy::PaperPriority => "paper-priority",
            RoutingPolicy::RoundRobin => "round-robin",
            RoutingPolicy::LeastOutstanding => "least-outstanding",
            RoutingPolicy::MostIdleNodes => "most-idle-nodes",
        }
    }
}

/// A routing decision.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutingDecision {
    /// Chosen endpoint.
    pub endpoint: String,
    /// Why it was chosen.
    pub reason: RoutingReason,
}

/// The federation router.
#[derive(Debug, Clone, Default)]
pub struct FederationRouter {
    policy: RoutingPolicy,
    rotation: Cell<usize>,
}

impl FederationRouter {
    /// A router using the paper's §4.5 priority algorithm.
    pub fn new() -> Self {
        Self::default()
    }

    /// A router using an alternative selection policy.
    pub fn with_policy(policy: RoutingPolicy) -> Self {
        FederationRouter {
            policy,
            rotation: Cell::new(0),
        }
    }

    /// The active routing policy.
    pub fn policy(&self) -> RoutingPolicy {
        self.policy
    }

    /// Pick an endpoint for `model` following the configured policy.
    /// Returns `None` when the model is not registered on any endpoint.
    pub fn route(
        &self,
        registry: &ModelRegistry,
        service: &ComputeService,
        model: &str,
    ) -> Option<RoutingDecision> {
        let endpoints = registry.endpoints_for(model)?;
        if endpoints.is_empty() {
            return None;
        }
        Some(self.route_over(endpoints, service, model))
    }

    /// Failover-aware routing: apply the configured policy over the subset of
    /// endpoints the health tracker allows at `now`, preferring fully healthy
    /// endpoints over degraded ones. When the breaker has every endpoint open
    /// the full registration list is used as a last resort (a request that
    /// will likely fail beats a request that cannot be routed at all).
    ///
    /// The candidate subsets are borrowed from the registry's per-model
    /// candidate list in a single pass — no endpoint names are cloned on this
    /// per-request path.
    pub fn route_with_health(
        &self,
        registry: &ModelRegistry,
        service: &ComputeService,
        model: &str,
        health: &HealthTracker,
        now: SimTime,
    ) -> Option<RoutingDecision> {
        let endpoints = registry.endpoints_for(model)?;
        if endpoints.is_empty() {
            return None;
        }
        let mut healthy: Vec<&str> = Vec::with_capacity(endpoints.len());
        let mut allowed: Vec<&str> = Vec::with_capacity(endpoints.len());
        for e in endpoints {
            match health.state(e, now) {
                HealthState::Healthy => {
                    healthy.push(e);
                    allowed.push(e);
                }
                _ if health.allows(e, now) => allowed.push(e),
                _ => {}
            }
        }
        let subset: &[&str] = if !healthy.is_empty() {
            &healthy
        } else if !allowed.is_empty() {
            &allowed
        } else {
            return Some(self.route_over(endpoints, service, model));
        };
        Some(self.route_over(subset, service, model))
    }

    /// Routing for a retry of a request that just failed on `failed_endpoint`:
    /// like [`FederationRouter::route_with_health`], but the failed endpoint
    /// is excluded whenever any alternative is still allowed, so the retry
    /// fails over instead of hammering the same site.
    pub fn route_for_retry(
        &self,
        registry: &ModelRegistry,
        service: &ComputeService,
        model: &str,
        health: &HealthTracker,
        now: SimTime,
        failed_endpoint: &str,
    ) -> Option<RoutingDecision> {
        let endpoints = registry.endpoints_for(model)?;
        let alternatives: Vec<&str> = endpoints
            .iter()
            .map(String::as_str)
            .filter(|e| *e != failed_endpoint && health.allows(e, now))
            .collect();
        if alternatives.is_empty() {
            return self.route_with_health(registry, service, model, health, now);
        }
        Some(self.route_over(&alternatives, service, model))
    }

    fn route_over<S: AsRef<str>>(
        &self,
        endpoints: &[S],
        service: &ComputeService,
        model: &str,
    ) -> RoutingDecision {
        match self.policy {
            RoutingPolicy::PaperPriority => Self::paper_priority(endpoints, service, model),
            RoutingPolicy::RoundRobin => self.round_robin(endpoints),
            RoutingPolicy::LeastOutstanding => Self::least_outstanding(endpoints, service, model),
            RoutingPolicy::MostIdleNodes => Self::most_idle_nodes(endpoints, service),
        }
    }

    /// The §4.5 priority algorithm.
    fn paper_priority<S: AsRef<str>>(
        endpoints: &[S],
        service: &ComputeService,
        model: &str,
    ) -> RoutingDecision {
        // 1. Prefer an endpoint where the model is already running or queued.
        for name in endpoints {
            if let Some(ep) = service.endpoint(name.as_ref()) {
                let activity = ep.model_activity(model);
                if activity.running > 0 || activity.starting > 0 || activity.queued > 0 {
                    return RoutingDecision {
                        endpoint: name.as_ref().to_string(),
                        reason: RoutingReason::ActiveInstance,
                    };
                }
            }
        }

        // 2. Otherwise an endpoint whose cluster has idle nodes.
        for name in endpoints {
            if let Some(ep) = service.endpoint(name.as_ref()) {
                if ep.cluster_status().idle_nodes > 0 {
                    return RoutingDecision {
                        endpoint: name.as_ref().to_string(),
                        reason: RoutingReason::FreeCapacity,
                    };
                }
            }
        }

        // 3. Fall back to the first configured endpoint.
        RoutingDecision {
            endpoint: endpoints[0].as_ref().to_string(),
            reason: RoutingReason::ConfigurationOrder,
        }
    }

    fn round_robin<S: AsRef<str>>(&self, endpoints: &[S]) -> RoutingDecision {
        let idx = self.rotation.get() % endpoints.len();
        self.rotation.set(self.rotation.get().wrapping_add(1));
        RoutingDecision {
            endpoint: endpoints[idx].as_ref().to_string(),
            reason: RoutingReason::RoundRobinRotation,
        }
    }

    fn least_outstanding<S: AsRef<str>>(
        endpoints: &[S],
        service: &ComputeService,
        model: &str,
    ) -> RoutingDecision {
        let mut best: Option<(&str, usize, u32)> = None;
        for name in endpoints {
            let Some(ep) = service.endpoint(name.as_ref()) else {
                continue;
            };
            let activity = ep.model_activity(model);
            let in_flight: usize = ep
                .instances()
                .iter()
                .filter(|i| i.model == model)
                .map(|i| i.in_flight())
                .sum();
            let outstanding = activity.backlog + in_flight;
            let idle = ep.cluster_status().idle_nodes;
            let better = match best {
                None => true,
                Some((_, best_out, best_idle)) => {
                    outstanding < best_out || (outstanding == best_out && idle > best_idle)
                }
            };
            if better {
                best = Some((name.as_ref(), outstanding, idle));
            }
        }
        match best {
            Some((name, _, _)) => RoutingDecision {
                endpoint: name.to_string(),
                reason: RoutingReason::LeastOutstanding,
            },
            None => RoutingDecision {
                endpoint: endpoints[0].as_ref().to_string(),
                reason: RoutingReason::ConfigurationOrder,
            },
        }
    }

    fn most_idle_nodes<S: AsRef<str>>(
        endpoints: &[S],
        service: &ComputeService,
    ) -> RoutingDecision {
        let mut best: Option<(&str, u32)> = None;
        for name in endpoints {
            let Some(ep) = service.endpoint(name.as_ref()) else {
                continue;
            };
            let idle = ep.cluster_status().idle_nodes;
            if best.map(|(_, b)| idle > b).unwrap_or(true) {
                best = Some((name.as_ref(), idle));
            }
        }
        match best {
            Some((name, _)) => RoutingDecision {
                endpoint: name.to_string(),
                reason: RoutingReason::MostIdleNodes,
            },
            None => RoutingDecision {
                endpoint: endpoints[0].as_ref().to_string(),
                reason: RoutingReason::ConfigurationOrder,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use first_desim::SimTime;
    use first_fabric::{ComputeEndpoint, EndpointConfig, FabricLatencyModel, ModelHostingConfig};
    use first_hpc::{Cluster, GpuModel};
    use first_serving::find_model;

    const MODEL: &str = "meta-llama/Llama-3.3-70B-Instruct";

    fn two_cluster_service() -> (ModelRegistry, ComputeService) {
        let hosting =
            || ModelHostingConfig::new(find_model("llama-70b").unwrap(), GpuModel::A100_40);
        let sophia = ComputeEndpoint::new(
            EndpointConfig::new("sophia-endpoint", "sophia", GpuModel::A100_40).host(hosting()),
            Cluster::tiny("sophia", 4, 8),
        );
        let polaris = ComputeEndpoint::new(
            EndpointConfig::new("polaris-endpoint", "polaris", GpuModel::A100_40).host(hosting()),
            Cluster::tiny("polaris", 4, 8),
        );
        let mut service = ComputeService::new(FabricLatencyModel::default());
        service.add_endpoint(sophia);
        service.add_endpoint(polaris);
        let mut registry = ModelRegistry::new();
        registry.register(MODEL, "sophia-endpoint");
        registry.register(MODEL, "polaris-endpoint");
        (registry, service)
    }

    #[test]
    fn registry_preserves_configuration_order_and_dedups() {
        let mut reg = ModelRegistry::new();
        reg.register("m", "b-endpoint");
        reg.register("m", "a-endpoint");
        reg.register("m", "b-endpoint");
        assert_eq!(
            reg.endpoints_for("m").unwrap(),
            &["b-endpoint".to_string(), "a-endpoint".to_string()]
        );
        assert!(reg.is_registered("m"));
        assert!(reg.deregister_model("m"));
        assert!(!reg.is_registered("m"));
    }

    #[test]
    fn router_prefers_endpoint_with_active_instance() {
        let (registry, mut service) = two_cluster_service();
        // Warm the model on Polaris only.
        service
            .endpoint_mut("polaris-endpoint")
            .unwrap()
            .prewarm(MODEL, 1, SimTime::ZERO);
        let decision = FederationRouter::new()
            .route(&registry, &service, MODEL)
            .unwrap();
        assert_eq!(decision.endpoint, "polaris-endpoint");
        assert_eq!(decision.reason, RoutingReason::ActiveInstance);
    }

    #[test]
    fn router_falls_back_to_free_capacity_then_config_order() {
        let (registry, mut service) = two_cluster_service();
        // Nothing running anywhere: both clusters idle → free capacity on the
        // first configured endpoint wins.
        let d = FederationRouter::new()
            .route(&registry, &service, MODEL)
            .unwrap();
        assert_eq!(d.endpoint, "sophia-endpoint");
        assert_eq!(d.reason, RoutingReason::FreeCapacity);

        // Fill both clusters with background jobs so no node is idle.
        for name in ["sophia-endpoint", "polaris-endpoint"] {
            let ep = service.endpoint_mut(name).unwrap();
            for _ in 0..4 {
                ep.scheduler_mut().submit(
                    first_hpc::JobRequest::single_node(
                        8,
                        first_desim::SimDuration::from_hours(8),
                        "background",
                    ),
                    SimTime::ZERO,
                );
            }
        }
        let d = FederationRouter::new()
            .route(&registry, &service, MODEL)
            .unwrap();
        assert_eq!(d.endpoint, "sophia-endpoint");
        assert_eq!(d.reason, RoutingReason::ConfigurationOrder);
    }

    #[test]
    fn unregistered_model_routes_nowhere() {
        let (registry, service) = two_cluster_service();
        assert!(FederationRouter::new()
            .route(&registry, &service, "unknown")
            .is_none());
    }

    #[test]
    fn round_robin_rotates_over_registered_endpoints() {
        let (registry, service) = two_cluster_service();
        let router = FederationRouter::with_policy(RoutingPolicy::RoundRobin);
        let picks: Vec<String> = (0..4)
            .map(|_| router.route(&registry, &service, MODEL).unwrap().endpoint)
            .collect();
        assert_eq!(
            picks,
            vec![
                "sophia-endpoint".to_string(),
                "polaris-endpoint".to_string(),
                "sophia-endpoint".to_string(),
                "polaris-endpoint".to_string(),
            ]
        );
        assert_eq!(
            router.route(&registry, &service, MODEL).unwrap().reason,
            RoutingReason::RoundRobinRotation
        );
        assert_eq!(router.policy(), RoutingPolicy::RoundRobin);
    }

    #[test]
    fn least_outstanding_avoids_the_backlogged_endpoint() {
        let (registry, mut service) = two_cluster_service();
        // Warm one instance on each site, then pile tasks onto Sophia only so
        // its instance accumulates in-flight work.
        for name in ["sophia-endpoint", "polaris-endpoint"] {
            service
                .endpoint_mut(name)
                .unwrap()
                .prewarm(MODEL, 1, SimTime::ZERO);
        }
        let function = service
            .registry()
            .find_by_name("run_vllm_inference")
            .map(|f| f.id)
            .unwrap();
        for i in 0..6 {
            let req = first_serving::InferenceRequest::chat(i, MODEL, 256, 64);
            service
                .submit(function, "sophia-endpoint", req, SimTime::from_secs(i))
                .unwrap();
            // Push the dispatch through so the tasks land on the endpoint.
            first_desim::SimProcess::advance(&mut service, SimTime::from_secs(i + 1));
        }
        let router = FederationRouter::with_policy(RoutingPolicy::LeastOutstanding);
        let d = router.route(&registry, &service, MODEL).unwrap();
        assert_eq!(d.endpoint, "polaris-endpoint");
        assert_eq!(d.reason, RoutingReason::LeastOutstanding);

        // The paper's priority policy would have stuck with Sophia (active
        // instance, configuration order) — the contrast the ablation measures.
        let paper = FederationRouter::new()
            .route(&registry, &service, MODEL)
            .unwrap();
        assert_eq!(paper.endpoint, "sophia-endpoint");
    }

    #[test]
    fn most_idle_nodes_prefers_the_emptier_cluster() {
        let (registry, mut service) = two_cluster_service();
        // Occupy three of Sophia's four nodes with background jobs.
        let ep = service.endpoint_mut("sophia-endpoint").unwrap();
        for _ in 0..3 {
            ep.scheduler_mut().submit(
                first_hpc::JobRequest::single_node(
                    8,
                    first_desim::SimDuration::from_hours(8),
                    "background",
                ),
                SimTime::ZERO,
            );
        }
        let router = FederationRouter::with_policy(RoutingPolicy::MostIdleNodes);
        let d = router.route(&registry, &service, MODEL).unwrap();
        assert_eq!(d.endpoint, "polaris-endpoint");
        assert_eq!(d.reason, RoutingReason::MostIdleNodes);
    }

    #[test]
    fn health_aware_routing_avoids_unavailable_endpoints() {
        let (registry, mut service) = two_cluster_service();
        // Sophia has the active instance, so the paper policy pins it there.
        service
            .endpoint_mut("sophia-endpoint")
            .unwrap()
            .prewarm(MODEL, 1, SimTime::ZERO);
        let router = FederationRouter::new();
        let mut health = first_chaos::HealthTracker::default();
        let now = SimTime::from_secs(10);
        let d = router
            .route_with_health(&registry, &service, MODEL, &health, now)
            .unwrap();
        assert_eq!(d.endpoint, "sophia-endpoint");

        // Trip Sophia's breaker: routing fails over to Polaris.
        for _ in 0..3 {
            health.on_failure("sophia-endpoint", now);
        }
        let d = router
            .route_with_health(&registry, &service, MODEL, &health, now)
            .unwrap();
        assert_eq!(d.endpoint, "polaris-endpoint");

        // With every endpoint open the router still returns something.
        for _ in 0..3 {
            health.on_failure("polaris-endpoint", now);
        }
        assert!(router
            .route_with_health(&registry, &service, MODEL, &health, now)
            .is_some());
    }

    #[test]
    fn degraded_endpoints_lose_to_healthy_ones_but_stay_routable() {
        let (registry, service) = two_cluster_service();
        let router = FederationRouter::new();
        let mut health = first_chaos::HealthTracker::default();
        let now = SimTime::from_secs(10);
        // One failure on Sophia: degraded, so the healthy Polaris wins even
        // though Sophia comes first in configuration order.
        health.on_failure("sophia-endpoint", now);
        let d = router
            .route_with_health(&registry, &service, MODEL, &health, now)
            .unwrap();
        assert_eq!(d.endpoint, "polaris-endpoint");
        // If Polaris is degraded too, the allowed set is used as configured.
        health.on_failure("polaris-endpoint", now);
        let d = router
            .route_with_health(&registry, &service, MODEL, &health, now)
            .unwrap();
        assert_eq!(d.endpoint, "sophia-endpoint");
    }

    #[test]
    fn retry_routing_excludes_the_endpoint_that_just_failed() {
        let (registry, service) = two_cluster_service();
        let router = FederationRouter::new();
        let health = first_chaos::HealthTracker::default();
        let now = SimTime::from_secs(5);
        let d = router
            .route_for_retry(&registry, &service, MODEL, &health, now, "sophia-endpoint")
            .unwrap();
        assert_eq!(d.endpoint, "polaris-endpoint");
        // Single-endpoint registrations fall back to the failed endpoint
        // rather than refusing to route.
        let mut single = ModelRegistry::new();
        single.register(MODEL, "sophia-endpoint");
        let d = router
            .route_for_retry(&single, &service, MODEL, &health, now, "sophia-endpoint")
            .unwrap();
        assert_eq!(d.endpoint, "sophia-endpoint");
    }

    #[test]
    fn policy_labels_are_distinct() {
        let labels: Vec<&str> = RoutingPolicy::all().iter().map(|p| p.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
        assert_eq!(RoutingPolicy::default(), RoutingPolicy::PaperPriority);
    }
}
