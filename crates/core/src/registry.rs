//! Model/endpoint registry and the federation router (§4.5).
//!
//! The registry records which endpoints can host each model, in configuration
//! order. The router implements the paper's priority-based endpoint selection:
//! (1) an endpoint where the model is already running or queued, then (2) an
//! endpoint whose cluster has free nodes, then (3) the first endpoint listed
//! for the model in the configuration registry.
//!
//! The paper notes the proof-of-concept algorithm is deliberately simple and
//! lists "improve scheduling for resource optimization" as future work (§7);
//! [`RoutingPolicy`] therefore also provides round-robin, least-outstanding
//! and most-idle-nodes alternatives, which the federation ablation benchmark
//! compares against the paper's priority scheme.

use first_chaos::{HealthState, HealthTracker};
use first_desim::{Interner, SimTime, SymbolId};
use first_fabric::{ComputeEndpoint, ComputeService, EndpointId};
use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};
use std::sync::Arc;

/// Dense model identifier assigned by the registry's interner, in
/// first-registration order. The gateway resolves a request's model name to
/// its `ModelId` once at the API boundary; every hot-path map and routing
/// probe downstream carries the id.
pub type ModelId = SymbolId;

/// One routing candidate for a model, resolved against the compute service:
/// the endpoint's dense id (or `None` when the registry names an endpoint the
/// service does not know — the request then fails at submission exactly as
/// the string-keyed path did) plus the hosting-entry index of the model on
/// that endpoint. The configured name rides along as a shared `Arc<str>` for
/// health lookups and reports — cloning it is an atomic bump, not an
/// allocation.
#[derive(Debug, Clone)]
pub struct RouteCandidate {
    /// Configured endpoint name.
    pub name: Arc<str>,
    /// Dense id in the compute service, when the endpoint exists there.
    pub endpoint: Option<EndpointId>,
    /// Hosting-entry index of the model on that endpoint, when hosted.
    pub hosting: Option<u32>,
}

/// An id-based routing decision — the per-request form of
/// [`RoutingDecision`], with the endpoint name as a shared `Arc<str>` and the
/// dense id the gateway submits to.
#[derive(Debug, Clone)]
pub struct RoutedTarget {
    /// Configured endpoint name (shared, not reallocated per request).
    pub name: Arc<str>,
    /// Dense endpoint id, `None` when the configured endpoint is unknown to
    /// the service (submission will fail with `UnknownEndpoint`, matching the
    /// string-keyed behaviour).
    pub endpoint: Option<EndpointId>,
    /// Why it was chosen.
    pub reason: RoutingReason,
}

/// Cached per-model candidate lists, resolved against a compute service.
/// Rebuilt whenever the registry changes (version bump) or the service
/// identity/topology stamp changes; hosting sets are fixed once an endpoint
/// is built, so they need no stamp of their own.
#[derive(Debug, Clone, Default)]
struct RouteBinding {
    registry_version: u64,
    /// The service's [`ComputeService::topology_stamp`] the binding was
    /// resolved against — `(instance id, topology version)`, so routing the
    /// same registry against a *different* service (or one that grew an
    /// endpoint) rebuilds instead of reusing stale ids.
    service_stamp: (u64, u64),
    /// Candidate list per [`ModelId`] index.
    per_model: Vec<Vec<RouteCandidate>>,
}

/// A model's registration: the endpoints able to host it, in priority order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelRegistration {
    /// Model name.
    pub model: String,
    /// Endpoint names able to host the model, in configuration order.
    pub endpoints: Vec<String>,
}

/// The deployment's model registry.
///
/// Registrations are kept sorted by model name (an invariant `register`
/// maintains), so every per-request lookup is a binary search instead of the
/// linear scan the router used to pay on each routing decision. Endpoint
/// order *within* a registration stays configuration order — that order is
/// the §4.5 priority list.
#[derive(Debug, Clone, Default)]
pub struct ModelRegistry {
    registrations: Vec<ModelRegistration>,
    /// Model name → dense [`ModelId`], append-only in first-registration
    /// order. Deregistered models keep their id (their candidate list just
    /// becomes empty), so ids held by in-flight requests never dangle.
    models: Interner,
    /// Bumped on every mutation; invalidates the route binding.
    version: u64,
    binding: RefCell<RouteBinding>,
}

impl serde::Serialize for ModelRegistry {
    fn serialize(&self) -> serde::Value {
        serde::Value::Object(vec![(
            "registrations".to_string(),
            self.registrations.serialize(),
        )])
    }
}

impl serde::Deserialize for ModelRegistry {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {
        let entries = value
            .as_object()
            .ok_or_else(|| serde::Error::custom("ModelRegistry expects an object"))?;
        let regs = entries
            .iter()
            .find(|(k, _)| k == "registrations")
            .map(|(_, v)| Vec::<ModelRegistration>::deserialize(v))
            .transpose()?
            .unwrap_or_default();
        // Rebuild the interner from the registrations (ids are assigned in
        // the stored — sorted — order; only internal consistency matters).
        let mut registry = ModelRegistry::new();
        for reg in &regs {
            registry.models.intern(&reg.model);
        }
        registry.registrations = regs;
        Ok(registry)
    }
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a model on an endpoint (appended in configuration order).
    /// Registering the same pair twice is a no-op.
    pub fn register(&mut self, model: &str, endpoint: &str) {
        self.models.intern(model);
        self.version += 1;
        match self
            .registrations
            .binary_search_by(|r| r.model.as_str().cmp(model))
        {
            Ok(i) => {
                let reg = &mut self.registrations[i];
                if !reg.endpoints.iter().any(|e| e == endpoint) {
                    reg.endpoints.push(endpoint.to_string());
                }
            }
            Err(i) => self.registrations.insert(
                i,
                ModelRegistration {
                    model: model.to_string(),
                    endpoints: vec![endpoint.to_string()],
                },
            ),
        }
    }

    /// Remove a model entirely (dashboard "deregister" action).
    pub fn deregister_model(&mut self, model: &str) -> bool {
        self.version += 1;
        match self
            .registrations
            .binary_search_by(|r| r.model.as_str().cmp(model))
        {
            Ok(i) => {
                self.registrations.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Endpoints registered for a model, in configuration order.
    pub fn endpoints_for(&self, model: &str) -> Option<&[String]> {
        self.registrations
            .binary_search_by(|r| r.model.as_str().cmp(model))
            .ok()
            .map(|i| self.registrations[i].endpoints.as_slice())
    }

    /// All registered model names.
    pub fn models(&self) -> Vec<String> {
        self.registrations.iter().map(|r| r.model.clone()).collect()
    }

    /// Whether the model is registered anywhere.
    pub fn is_registered(&self, model: &str) -> bool {
        self.endpoints_for(model).is_some()
    }

    /// Resolve a model name to its dense id — the API-boundary step. Returns
    /// ids for deregistered models too (their candidate lists are empty);
    /// `None` means the name was never registered.
    #[inline]
    pub fn model_id(&self, model: &str) -> Option<ModelId> {
        self.models.get(model)
    }

    /// Resolve a model id back to its name (reports, telemetry, logs).
    #[inline]
    pub fn model_name(&self, id: ModelId) -> &str {
        self.models.resolve(id)
    }

    /// Run `f` over the model's routing candidates resolved against
    /// `service`, rebuilding the cached binding when the registry or the
    /// service's endpoint set changed. Returns `None` when the model has no
    /// candidates (never registered, or deregistered).
    fn with_candidates<R>(
        &self,
        service: &ComputeService,
        model: ModelId,
        f: impl FnOnce(&[RouteCandidate]) -> R,
    ) -> Option<R> {
        let mut binding = self.binding.borrow_mut();
        if binding.registry_version != self.version
            || binding.service_stamp != service.topology_stamp()
            || binding.per_model.len() != self.models.len()
        {
            self.rebuild_binding(&mut binding, service);
        }
        let candidates = binding.per_model.get(model.index())?;
        if candidates.is_empty() {
            return None;
        }
        Some(f(candidates))
    }

    fn rebuild_binding(&self, binding: &mut RouteBinding, service: &ComputeService) {
        binding.registry_version = self.version;
        binding.service_stamp = service.topology_stamp();
        binding.per_model = vec![Vec::new(); self.models.len()];
        for reg in &self.registrations {
            let Some(id) = self.models.get(&reg.model) else {
                continue;
            };
            binding.per_model[id.index()] = reg
                .endpoints
                .iter()
                .map(|name| {
                    let endpoint = service.endpoint_id(name);
                    let hosting = endpoint
                        .and_then(|e| service.endpoint_by_id(e))
                        .and_then(|ep| ep.config().hosting_index(&reg.model))
                        .map(|h| h as u32);
                    RouteCandidate {
                        name: Arc::from(name.as_str()),
                        endpoint,
                        hosting,
                    }
                })
                .collect();
        }
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.registrations.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.registrations.is_empty()
    }
}

/// Why the router picked the endpoint it picked (exposed for observability
/// and asserted on by the federation tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoutingReason {
    /// The model is already running (hot) or starting/queued on the endpoint.
    ActiveInstance,
    /// The endpoint's cluster reported free nodes.
    FreeCapacity,
    /// Fallback: first endpoint in the configuration registry.
    ConfigurationOrder,
    /// Round-robin rotation over the registered endpoints.
    RoundRobinRotation,
    /// The endpoint had the fewest outstanding tasks for the model.
    LeastOutstanding,
    /// The endpoint's cluster had the most idle nodes.
    MostIdleNodes,
}

/// Endpoint-selection policy used by the federation router.
///
/// [`RoutingPolicy::PaperPriority`] is the algorithm described in §4.5 and is
/// the default everywhere; the alternatives are the "improved scheduling"
/// candidates from §7, evaluated by `ablation_federation` in `first-bench`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoutingPolicy {
    /// §4.5: active instance → cluster with free nodes → configuration order.
    #[default]
    PaperPriority,
    /// Rotate over the registered endpoints regardless of their state.
    RoundRobin,
    /// Send to the endpoint with the fewest outstanding tasks (backlog plus
    /// in-flight) for the requested model; ties break toward more idle nodes,
    /// then configuration order.
    LeastOutstanding,
    /// Send to the endpoint whose cluster reports the most idle nodes; ties
    /// break toward configuration order.
    MostIdleNodes,
}

impl RoutingPolicy {
    /// All policies, in the order the ablation benchmark sweeps them.
    pub fn all() -> [RoutingPolicy; 4] {
        [
            RoutingPolicy::PaperPriority,
            RoutingPolicy::RoundRobin,
            RoutingPolicy::LeastOutstanding,
            RoutingPolicy::MostIdleNodes,
        ]
    }

    /// Short human-readable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            RoutingPolicy::PaperPriority => "paper-priority",
            RoutingPolicy::RoundRobin => "round-robin",
            RoutingPolicy::LeastOutstanding => "least-outstanding",
            RoutingPolicy::MostIdleNodes => "most-idle-nodes",
        }
    }
}

/// A routing decision.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutingDecision {
    /// Chosen endpoint.
    pub endpoint: String,
    /// Why it was chosen.
    pub reason: RoutingReason,
}

/// The federation router.
#[derive(Debug, Clone, Default)]
pub struct FederationRouter {
    policy: RoutingPolicy,
    rotation: Cell<usize>,
}

impl FederationRouter {
    /// A router using the paper's §4.5 priority algorithm.
    pub fn new() -> Self {
        Self::default()
    }

    /// A router using an alternative selection policy.
    pub fn with_policy(policy: RoutingPolicy) -> Self {
        FederationRouter {
            policy,
            rotation: Cell::new(0),
        }
    }

    /// The active routing policy.
    pub fn policy(&self) -> RoutingPolicy {
        self.policy
    }

    /// Pick an endpoint for `model` following the configured policy.
    /// Returns `None` when the model is not registered on any endpoint.
    pub fn route(
        &self,
        registry: &ModelRegistry,
        service: &ComputeService,
        model: &str,
    ) -> Option<RoutingDecision> {
        let id = registry.model_id(model)?;
        self.route_target(registry, service, id)
            .map(RoutedTarget::into_decision)
    }

    /// Failover-aware routing: apply the configured policy over the subset of
    /// endpoints the health tracker allows at `now`, preferring fully healthy
    /// endpoints over degraded ones. When the breaker has every endpoint open
    /// the full registration list is used as a last resort (a request that
    /// will likely fail beats a request that cannot be routed at all).
    pub fn route_with_health(
        &self,
        registry: &ModelRegistry,
        service: &ComputeService,
        model: &str,
        health: &HealthTracker,
        now: SimTime,
    ) -> Option<RoutingDecision> {
        let id = registry.model_id(model)?;
        self.route_target_with_health(registry, service, id, health, now)
            .map(RoutedTarget::into_decision)
    }

    /// Routing for a retry of a request that just failed on `failed_endpoint`:
    /// like [`FederationRouter::route_with_health`], but the failed endpoint
    /// is excluded whenever any alternative is still allowed, so the retry
    /// fails over instead of hammering the same site.
    pub fn route_for_retry(
        &self,
        registry: &ModelRegistry,
        service: &ComputeService,
        model: &str,
        health: &HealthTracker,
        now: SimTime,
        failed_endpoint: &str,
    ) -> Option<RoutingDecision> {
        let id = registry.model_id(model)?;
        self.route_target_for_retry(registry, service, id, health, now, failed_endpoint)
            .map(RoutedTarget::into_decision)
    }

    /// Id-based form of [`FederationRouter::route`]: the per-request path the
    /// gateway uses. The candidate list comes from the registry's cached
    /// binding, so no endpoint name is hashed, compared or cloned here.
    pub fn route_target(
        &self,
        registry: &ModelRegistry,
        service: &ComputeService,
        model: ModelId,
    ) -> Option<RoutedTarget> {
        registry.with_candidates(service, model, |cands| {
            self.route_over_filtered(cands, None, service)
        })
    }

    /// Id-based form of [`FederationRouter::route_with_health`].
    pub fn route_target_with_health(
        &self,
        registry: &ModelRegistry,
        service: &ComputeService,
        model: ModelId,
        health: &HealthTracker,
        now: SimTime,
    ) -> Option<RoutedTarget> {
        registry.with_candidates(service, model, |cands| {
            let mut healthy: Vec<usize> = Vec::with_capacity(cands.len());
            let mut allowed: Vec<usize> = Vec::with_capacity(cands.len());
            for (i, c) in cands.iter().enumerate() {
                match health.state(&c.name, now) {
                    HealthState::Healthy => {
                        healthy.push(i);
                        allowed.push(i);
                    }
                    _ if health.allows(&c.name, now) => allowed.push(i),
                    _ => {}
                }
            }
            if !healthy.is_empty() {
                self.route_over_filtered(cands, Some(&healthy), service)
            } else if !allowed.is_empty() {
                self.route_over_filtered(cands, Some(&allowed), service)
            } else {
                self.route_over_filtered(cands, None, service)
            }
        })
    }

    /// Id-based form of [`FederationRouter::route_for_retry`].
    pub fn route_target_for_retry(
        &self,
        registry: &ModelRegistry,
        service: &ComputeService,
        model: ModelId,
        health: &HealthTracker,
        now: SimTime,
        failed_endpoint: &str,
    ) -> Option<RoutedTarget> {
        let routed = registry.with_candidates(service, model, |cands| {
            let alternatives: Vec<usize> = cands
                .iter()
                .enumerate()
                .filter(|(_, c)| c.name.as_ref() != failed_endpoint && health.allows(&c.name, now))
                .map(|(i, _)| i)
                .collect();
            if alternatives.is_empty() {
                None
            } else {
                Some(self.route_over_filtered(cands, Some(&alternatives), service))
            }
        })?;
        match routed {
            Some(target) => Some(target),
            None => self.route_target_with_health(registry, service, model, health, now),
        }
    }

    /// Apply the configured policy over `cands`, optionally restricted to a
    /// `subset` of candidate indices. All probes are id-based: instance
    /// activity via the hosting-entry index, endpoints via their dense id.
    fn route_over_filtered(
        &self,
        cands: &[RouteCandidate],
        subset: Option<&[usize]>,
        service: &ComputeService,
    ) -> RoutedTarget {
        let n = subset.map_or(cands.len(), <[usize]>::len);
        debug_assert!(n > 0, "route_over_filtered requires candidates");
        let cand = |k: usize| -> &RouteCandidate {
            match subset {
                Some(s) => &cands[s[k]],
                None => &cands[k],
            }
        };
        let resolve = |c: &RouteCandidate| -> Option<&ComputeEndpoint> {
            c.endpoint.and_then(|e| service.endpoint_by_id(e))
        };
        let activity = |c: &RouteCandidate| -> first_fabric::ModelActivity {
            resolve(c)
                .zip(c.hosting)
                .map(|(ep, h)| ep.model_activity_at(h as usize))
                .unwrap_or_default()
        };
        let (winner, reason) = match self.policy {
            RoutingPolicy::PaperPriority => 'paper: {
                // 1. Prefer an endpoint where the model is already running or
                //    queued.
                for k in 0..n {
                    let a = activity(cand(k));
                    if a.running > 0 || a.starting > 0 || a.queued > 0 {
                        break 'paper (k, RoutingReason::ActiveInstance);
                    }
                }
                // 2. Otherwise an endpoint whose cluster has idle nodes.
                for k in 0..n {
                    if let Some(ep) = resolve(cand(k)) {
                        if ep.cluster_status().idle_nodes > 0 {
                            break 'paper (k, RoutingReason::FreeCapacity);
                        }
                    }
                }
                // 3. Fall back to the first configured endpoint.
                (0, RoutingReason::ConfigurationOrder)
            }
            RoutingPolicy::RoundRobin => {
                let idx = self.rotation.get() % n;
                self.rotation.set(self.rotation.get().wrapping_add(1));
                (idx, RoutingReason::RoundRobinRotation)
            }
            RoutingPolicy::LeastOutstanding => {
                let mut best: Option<(usize, usize, u32)> = None;
                for k in 0..n {
                    let c = cand(k);
                    let Some(ep) = resolve(c) else {
                        continue;
                    };
                    let in_flight = c
                        .hosting
                        .map(|h| ep.model_in_flight_at(h as usize))
                        .unwrap_or(0);
                    let outstanding = activity(c).backlog + in_flight;
                    let idle = ep.cluster_status().idle_nodes;
                    let better = match best {
                        None => true,
                        Some((_, best_out, best_idle)) => {
                            outstanding < best_out || (outstanding == best_out && idle > best_idle)
                        }
                    };
                    if better {
                        best = Some((k, outstanding, idle));
                    }
                }
                match best {
                    Some((k, _, _)) => (k, RoutingReason::LeastOutstanding),
                    None => (0, RoutingReason::ConfigurationOrder),
                }
            }
            RoutingPolicy::MostIdleNodes => {
                let mut best: Option<(usize, u32)> = None;
                for k in 0..n {
                    let Some(ep) = resolve(cand(k)) else {
                        continue;
                    };
                    let idle = ep.cluster_status().idle_nodes;
                    if best.map(|(_, b)| idle > b).unwrap_or(true) {
                        best = Some((k, idle));
                    }
                }
                match best {
                    Some((k, _)) => (k, RoutingReason::MostIdleNodes),
                    None => (0, RoutingReason::ConfigurationOrder),
                }
            }
        };
        let c = cand(winner);
        RoutedTarget {
            name: Arc::clone(&c.name),
            endpoint: c.endpoint,
            reason,
        }
    }
}

impl RoutedTarget {
    /// The string-API form of this decision (allocates the endpoint name, as
    /// the boundary requires an owned `String`).
    pub fn into_decision(self) -> RoutingDecision {
        RoutingDecision {
            endpoint: self.name.to_string(),
            reason: self.reason,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use first_desim::SimTime;
    use first_fabric::{ComputeEndpoint, EndpointConfig, FabricLatencyModel, ModelHostingConfig};
    use first_hpc::{Cluster, GpuModel};
    use first_serving::find_model;

    const MODEL: &str = "meta-llama/Llama-3.3-70B-Instruct";

    fn two_cluster_service() -> (ModelRegistry, ComputeService) {
        let hosting =
            || ModelHostingConfig::new(find_model("llama-70b").unwrap(), GpuModel::A100_40);
        let sophia = ComputeEndpoint::new(
            EndpointConfig::new("sophia-endpoint", "sophia", GpuModel::A100_40).host(hosting()),
            Cluster::tiny("sophia", 4, 8),
        );
        let polaris = ComputeEndpoint::new(
            EndpointConfig::new("polaris-endpoint", "polaris", GpuModel::A100_40).host(hosting()),
            Cluster::tiny("polaris", 4, 8),
        );
        let mut service = ComputeService::new(FabricLatencyModel::default());
        service.add_endpoint(sophia);
        service.add_endpoint(polaris);
        let mut registry = ModelRegistry::new();
        registry.register(MODEL, "sophia-endpoint");
        registry.register(MODEL, "polaris-endpoint");
        (registry, service)
    }

    #[test]
    fn registry_preserves_configuration_order_and_dedups() {
        let mut reg = ModelRegistry::new();
        reg.register("m", "b-endpoint");
        reg.register("m", "a-endpoint");
        reg.register("m", "b-endpoint");
        assert_eq!(
            reg.endpoints_for("m").unwrap(),
            &["b-endpoint".to_string(), "a-endpoint".to_string()]
        );
        assert!(reg.is_registered("m"));
        assert!(reg.deregister_model("m"));
        assert!(!reg.is_registered("m"));
    }

    #[test]
    fn router_prefers_endpoint_with_active_instance() {
        let (registry, mut service) = two_cluster_service();
        // Warm the model on Polaris only.
        service
            .endpoint_mut("polaris-endpoint")
            .unwrap()
            .prewarm(MODEL, 1, SimTime::ZERO);
        let decision = FederationRouter::new()
            .route(&registry, &service, MODEL)
            .unwrap();
        assert_eq!(decision.endpoint, "polaris-endpoint");
        assert_eq!(decision.reason, RoutingReason::ActiveInstance);
    }

    #[test]
    fn router_falls_back_to_free_capacity_then_config_order() {
        let (registry, mut service) = two_cluster_service();
        // Nothing running anywhere: both clusters idle → free capacity on the
        // first configured endpoint wins.
        let d = FederationRouter::new()
            .route(&registry, &service, MODEL)
            .unwrap();
        assert_eq!(d.endpoint, "sophia-endpoint");
        assert_eq!(d.reason, RoutingReason::FreeCapacity);

        // Fill both clusters with background jobs so no node is idle.
        for name in ["sophia-endpoint", "polaris-endpoint"] {
            let ep = service.endpoint_mut(name).unwrap();
            for _ in 0..4 {
                ep.scheduler_mut().submit(
                    first_hpc::JobRequest::single_node(
                        8,
                        first_desim::SimDuration::from_hours(8),
                        "background",
                    ),
                    SimTime::ZERO,
                );
            }
        }
        let d = FederationRouter::new()
            .route(&registry, &service, MODEL)
            .unwrap();
        assert_eq!(d.endpoint, "sophia-endpoint");
        assert_eq!(d.reason, RoutingReason::ConfigurationOrder);
    }

    #[test]
    fn unregistered_model_routes_nowhere() {
        let (registry, service) = two_cluster_service();
        assert!(FederationRouter::new()
            .route(&registry, &service, "unknown")
            .is_none());
    }

    #[test]
    fn round_robin_rotates_over_registered_endpoints() {
        let (registry, service) = two_cluster_service();
        let router = FederationRouter::with_policy(RoutingPolicy::RoundRobin);
        let picks: Vec<String> = (0..4)
            .map(|_| router.route(&registry, &service, MODEL).unwrap().endpoint)
            .collect();
        assert_eq!(
            picks,
            vec![
                "sophia-endpoint".to_string(),
                "polaris-endpoint".to_string(),
                "sophia-endpoint".to_string(),
                "polaris-endpoint".to_string(),
            ]
        );
        assert_eq!(
            router.route(&registry, &service, MODEL).unwrap().reason,
            RoutingReason::RoundRobinRotation
        );
        assert_eq!(router.policy(), RoutingPolicy::RoundRobin);
    }

    #[test]
    fn least_outstanding_avoids_the_backlogged_endpoint() {
        let (registry, mut service) = two_cluster_service();
        // Warm one instance on each site, then pile tasks onto Sophia only so
        // its instance accumulates in-flight work.
        for name in ["sophia-endpoint", "polaris-endpoint"] {
            service
                .endpoint_mut(name)
                .unwrap()
                .prewarm(MODEL, 1, SimTime::ZERO);
        }
        let function = service
            .registry()
            .find_by_name("run_vllm_inference")
            .map(|f| f.id)
            .unwrap();
        for i in 0..6 {
            let req = first_serving::InferenceRequest::chat(i, MODEL, 256, 64);
            service
                .submit(function, "sophia-endpoint", req, SimTime::from_secs(i))
                .unwrap();
            // Push the dispatch through so the tasks land on the endpoint.
            first_desim::SimProcess::advance(&mut service, SimTime::from_secs(i + 1));
        }
        let router = FederationRouter::with_policy(RoutingPolicy::LeastOutstanding);
        let d = router.route(&registry, &service, MODEL).unwrap();
        assert_eq!(d.endpoint, "polaris-endpoint");
        assert_eq!(d.reason, RoutingReason::LeastOutstanding);

        // The paper's priority policy would have stuck with Sophia (active
        // instance, configuration order) — the contrast the ablation measures.
        let paper = FederationRouter::new()
            .route(&registry, &service, MODEL)
            .unwrap();
        assert_eq!(paper.endpoint, "sophia-endpoint");
    }

    #[test]
    fn most_idle_nodes_prefers_the_emptier_cluster() {
        let (registry, mut service) = two_cluster_service();
        // Occupy three of Sophia's four nodes with background jobs.
        let ep = service.endpoint_mut("sophia-endpoint").unwrap();
        for _ in 0..3 {
            ep.scheduler_mut().submit(
                first_hpc::JobRequest::single_node(
                    8,
                    first_desim::SimDuration::from_hours(8),
                    "background",
                ),
                SimTime::ZERO,
            );
        }
        let router = FederationRouter::with_policy(RoutingPolicy::MostIdleNodes);
        let d = router.route(&registry, &service, MODEL).unwrap();
        assert_eq!(d.endpoint, "polaris-endpoint");
        assert_eq!(d.reason, RoutingReason::MostIdleNodes);
    }

    #[test]
    fn health_aware_routing_avoids_unavailable_endpoints() {
        let (registry, mut service) = two_cluster_service();
        // Sophia has the active instance, so the paper policy pins it there.
        service
            .endpoint_mut("sophia-endpoint")
            .unwrap()
            .prewarm(MODEL, 1, SimTime::ZERO);
        let router = FederationRouter::new();
        let mut health = first_chaos::HealthTracker::default();
        let now = SimTime::from_secs(10);
        let d = router
            .route_with_health(&registry, &service, MODEL, &health, now)
            .unwrap();
        assert_eq!(d.endpoint, "sophia-endpoint");

        // Trip Sophia's breaker: routing fails over to Polaris.
        for _ in 0..3 {
            health.on_failure("sophia-endpoint", now);
        }
        let d = router
            .route_with_health(&registry, &service, MODEL, &health, now)
            .unwrap();
        assert_eq!(d.endpoint, "polaris-endpoint");

        // With every endpoint open the router still returns something.
        for _ in 0..3 {
            health.on_failure("polaris-endpoint", now);
        }
        assert!(router
            .route_with_health(&registry, &service, MODEL, &health, now)
            .is_some());
    }

    #[test]
    fn degraded_endpoints_lose_to_healthy_ones_but_stay_routable() {
        let (registry, service) = two_cluster_service();
        let router = FederationRouter::new();
        let mut health = first_chaos::HealthTracker::default();
        let now = SimTime::from_secs(10);
        // One failure on Sophia: degraded, so the healthy Polaris wins even
        // though Sophia comes first in configuration order.
        health.on_failure("sophia-endpoint", now);
        let d = router
            .route_with_health(&registry, &service, MODEL, &health, now)
            .unwrap();
        assert_eq!(d.endpoint, "polaris-endpoint");
        // If Polaris is degraded too, the allowed set is used as configured.
        health.on_failure("polaris-endpoint", now);
        let d = router
            .route_with_health(&registry, &service, MODEL, &health, now)
            .unwrap();
        assert_eq!(d.endpoint, "sophia-endpoint");
    }

    #[test]
    fn retry_routing_excludes_the_endpoint_that_just_failed() {
        let (registry, service) = two_cluster_service();
        let router = FederationRouter::new();
        let health = first_chaos::HealthTracker::default();
        let now = SimTime::from_secs(5);
        let d = router
            .route_for_retry(&registry, &service, MODEL, &health, now, "sophia-endpoint")
            .unwrap();
        assert_eq!(d.endpoint, "polaris-endpoint");
        // Single-endpoint registrations fall back to the failed endpoint
        // rather than refusing to route.
        let mut single = ModelRegistry::new();
        single.register(MODEL, "sophia-endpoint");
        let d = router
            .route_for_retry(&single, &service, MODEL, &health, now, "sophia-endpoint")
            .unwrap();
        assert_eq!(d.endpoint, "sophia-endpoint");
    }

    #[test]
    fn policy_labels_are_distinct() {
        let labels: Vec<&str> = RoutingPolicy::all().iter().map(|p| p.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
        assert_eq!(RoutingPolicy::default(), RoutingPolicy::PaperPriority);
    }
}
