//! The scenario runner: compiles a declarative [`ScenarioSpec`] into a
//! request stream and replays it against a live deployment.
//!
//! [`run_scenario`] is the single seam every scenario-matrix consumer shares:
//! it resolves the spec's deployment reference, enrolls one auth user per
//! tenant class (so the request log, dashboard and metric export partition
//! per tenant for free), replays the merged stream open-loop with the spec's
//! embedded fault plan applied along the way, and reports per-tenant metric
//! partitions and SLO attainment in a [`GatewayReport`]. In debug builds the
//! run finishes with the [`crate::invariants`] check, so every `cargo test`
//! that touches a scenario also proves request conservation and task-slab
//! hygiene.

use crate::deploy::DeploymentBuilder;
use crate::gateway::Gateway;
use crate::invariants::{check_replay_invariants, check_run_invariants, RunLedger};
use crate::sim::{run_webui_closed_loop, synthetic_chat_request, WebUiCell};
use first_auth::{Identity, Scope, TokenString, UserId};
use first_chaos::{FaultInjector, ResilienceConfig};
use first_desim::{Histogram, SimDuration, SimProcess, SimTime};
use first_telemetry::{PhaseBreakdown, SpanTree, TraceConfig};
use first_workload::{
    Cassette, CassetteError, ConversationSample, DeploymentRef, RequestOutcome, ScenarioSpec,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-tenant metric partition of one scenario run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantReport {
    /// Tenant-class name.
    pub tenant: String,
    /// Tenant priority (from the spec).
    pub priority: u8,
    /// Requests the tenant offered.
    pub offered: usize,
    /// Requests answered successfully.
    pub completed: usize,
    /// Requests that failed after acceptance.
    pub failed: usize,
    /// Requests rejected at the API boundary.
    pub rejected: usize,
    /// `completed / offered`.
    pub availability: f64,
    /// Median end-to-end latency of successful requests, seconds.
    pub median_latency_s: f64,
    /// 95th-percentile end-to-end latency, seconds.
    pub p95_latency_s: f64,
    /// Mean end-to-end latency, seconds.
    pub mean_latency_s: f64,
    /// Output tokens delivered to this tenant.
    pub output_tokens: u64,
    /// Output tokens per second over the run.
    pub output_tok_per_s: f64,
    /// SLO target: 95th-percentile latency, seconds.
    pub slo_p95_target_s: f64,
    /// SLO target: availability.
    pub slo_availability_target: f64,
    /// Fraction of completed requests inside the latency target.
    pub slo_latency_attainment: f64,
    /// Whether the tenant's measured p95 and availability met the target.
    pub slo_met: bool,
}

impl TenantReport {
    /// One formatted table row (used by `scenario_matrix` and the dashboard
    /// example).
    pub fn table_row(&self) -> String {
        format!(
            "{:<18} {:>4} {:>7} {:>7} {:>5} {:>5} {:>7.2}% {:>9.1} {:>9.1} {:>10} {:>8.1}% {:>5}",
            self.tenant,
            self.priority,
            self.offered,
            self.completed,
            self.failed,
            self.rejected,
            self.availability * 100.0,
            self.median_latency_s,
            self.p95_latency_s,
            self.output_tokens,
            self.slo_latency_attainment * 100.0,
            if self.slo_met { "met" } else { "MISS" },
        )
    }

    /// The table header matching [`TenantReport::table_row`].
    pub fn table_header() -> String {
        format!(
            "{:<18} {:>4} {:>7} {:>7} {:>5} {:>5} {:>8} {:>9} {:>9} {:>10} {:>9} {:>5}",
            "tenant",
            "prio",
            "offered",
            "done",
            "fail",
            "rej",
            "avail",
            "med (s)",
            "p95 (s)",
            "out_tok",
            "slo_att",
            "slo"
        )
    }
}

/// The full result of one scenario run: whole-run totals plus the per-tenant
/// partitions. Contains no wall-clock measurement, so two runs of the same
/// spec and seed serialize byte-identically — the property the golden tests
/// and the CI thread-count diff pin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GatewayReport {
    /// Scenario name (from the spec).
    pub scenario: String,
    /// Seed the run used.
    pub seed: u64,
    /// Requests offered across all tenants.
    pub offered: usize,
    /// Requests accepted by the gateway.
    pub accepted: usize,
    /// Requests rejected at the API boundary.
    pub rejected: usize,
    /// Requests answered successfully.
    pub completed: usize,
    /// Requests failed after acceptance.
    pub failed: usize,
    /// Run duration in seconds (first arrival → last delivery).
    pub duration_s: f64,
    /// Completed requests per second.
    pub request_throughput: f64,
    /// Output tokens per second.
    pub output_token_throughput: f64,
    /// Faults the injector actually applied.
    pub faults_injected: usize,
    /// Gateway retries issued.
    pub retries: u64,
    /// Failovers to a different endpoint.
    pub failovers: u64,
    /// Circuit-breaker trips.
    pub breaker_trips: u64,
    /// Hedged requests issued.
    pub hedges: u64,
    /// Per-tenant partitions, in spec order.
    pub tenants: Vec<TenantReport>,
    /// Tenants whose SLO was met.
    pub slo_attained_tenants: usize,
    /// Closed-loop session cell, when the spec carried a session rider.
    pub webui: Option<WebUiCell>,
    /// Phase-latency breakdown of the sampled span trees; `None` unless the
    /// run was traced ([`run_scenario_traced`]) and sampled at least one
    /// request.
    #[serde(default)]
    pub phases: Option<PhaseBreakdown>,
}

impl GatewayReport {
    /// Look up a tenant partition by name.
    pub fn tenant(&self, name: &str) -> Option<&TenantReport> {
        self.tenants.iter().find(|t| t.tenant == name)
    }

    /// Render the whole report as the table the bench binaries print.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "scenario '{}' (seed {}): offered={} accepted={} rejected={} completed={} failed={} \
             in {:.1}s ({:.2} req/s, {:.1} tok/s), faults={} retries={} failovers={} trips={} hedges={}",
            self.scenario,
            self.seed,
            self.offered,
            self.accepted,
            self.rejected,
            self.completed,
            self.failed,
            self.duration_s,
            self.request_throughput,
            self.output_token_throughput,
            self.faults_injected,
            self.retries,
            self.failovers,
            self.breaker_trips,
            self.hedges,
        );
        if !self.tenants.is_empty() {
            let _ = writeln!(out, "{}", TenantReport::table_header());
            for t in &self.tenants {
                let _ = writeln!(out, "{}", t.table_row());
            }
        }
        if let Some(cell) = &self.webui {
            let _ = writeln!(
                out,
                "webui sessions: {} concurrent, {} turns in {:.0}s ({:.2} req/s, {:.1} tok/s)",
                cell.concurrency,
                cell.completed,
                cell.duration_s,
                cell.request_throughput,
                cell.token_throughput,
            );
        }
        if let Some(phases) = &self.phases {
            let _ = writeln!(
                out,
                "phase latency ({} sampled, {} dropped):",
                phases.sampled, phases.dropped
            );
            let _ = writeln!(
                out,
                "{:<14} {:>7} {:>10} {:>10} {:>10} {:>10}",
                "phase", "count", "p50 (s)", "p95 (s)", "mean (s)", "total (s)"
            );
            for s in &phases.by_phase {
                let _ = writeln!(
                    out,
                    "{:<14} {:>7} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
                    s.phase.name(),
                    s.count,
                    s.p50_s,
                    s.p95_s,
                    s.mean_s,
                    s.total_s,
                );
            }
            if let Some(top) = phases.critical_path.first() {
                let _ = writeln!(
                    out,
                    "critical path: {} dominates {} requests ({:.0}% of attributed time)",
                    top.phase.name(),
                    top.requests,
                    top.time_share * 100.0,
                );
            }
        }
        out
    }
}

/// Resolve a [`DeploymentRef`] to its concrete builder.
fn builder_for(deployment: DeploymentRef) -> DeploymentBuilder {
    match deployment {
        DeploymentRef::SingleClusterTest => DeploymentBuilder::single_cluster_test(),
        DeploymentRef::SophiaSingleInstance => DeploymentBuilder::sophia_single_instance(),
        DeploymentRef::Sophia => DeploymentBuilder::sophia(),
        DeploymentRef::FederatedSophiaPolaris => DeploymentBuilder::federated_sophia_polaris(),
    }
}

/// Enroll one auth user for `name` and return their bearer token.
fn enroll_tenant_user(gateway: &mut Gateway, name: &str) -> TokenString {
    let auth = gateway.auth_mut();
    auth.enroll_user(&UserId::new(name));
    let (token, _) = auth
        .login(
            &Identity::new(name, "anl.gov").with_project("scenario-matrix"),
            &[Scope::InferenceApi],
            SimTime::ZERO,
        )
        .unwrap_or_else(|e| panic!("tenant '{name}' login failed: {e:?}"));
    token.token
}

/// Compile `spec` at `seed`, replay it against the spec's deployment and
/// report per-tenant metrics and SLO attainment.
///
/// The run is deterministic for a fixed `(spec, seed)` pair: the report
/// carries no wall-clock measurement and every random draw derives from the
/// seed. Debug builds finish with the [`crate::invariants`] check.
///
/// A spec may carry either open-loop tenants or a closed-loop session rider,
/// not both (the two drivers would fight over the same simulation clock).
pub fn run_scenario(spec: &ScenarioSpec, seed: u64) -> GatewayReport {
    run_scenario_impl(spec, seed, TraceConfig::default()).0
}

/// Run `spec` with request-lifecycle tracing enabled: every `sample_every`-th
/// accepted request yields a [`SpanTree`] in the returned vector, and the
/// report's [`GatewayReport::phases`] carries the aggregated breakdown.
///
/// With `trace` disabled this is exactly [`run_scenario`] (and the trees come
/// back empty). Tracing never perturbs the simulation — sim-time outcomes are
/// identical whether or not a request is sampled — and the sampled trees are
/// seed-deterministic: two runs with the same `(spec, seed, trace)` export
/// byte-identical traces.
pub fn run_scenario_traced(
    spec: &ScenarioSpec,
    seed: u64,
    trace: TraceConfig,
) -> (GatewayReport, Vec<SpanTree>) {
    let (report, _, trees) = run_scenario_impl(spec, seed, trace);
    (report, trees)
}

/// Run `spec` exactly as [`run_scenario`] would and additionally record the
/// run as a [`Cassette`]: the compiled request stream, what the gateway did
/// with every request, and the spec's fault timeline. The returned report is
/// identical to what `run_scenario(spec, seed)` yields, and
/// [`replay_cassette`] on the returned cassette reproduces it byte-for-byte.
///
/// Closed-loop session specs are [`CassetteError::Unrecordable`]: their
/// driver submits outside the compiled stream, so a cassette could not
/// reproduce them.
pub fn run_scenario_recorded(
    spec: &ScenarioSpec,
    seed: u64,
) -> Result<(GatewayReport, Cassette), CassetteError> {
    let (report, cassette, _) = run_scenario_recorded_traced(spec, seed, TraceConfig::default())?;
    Ok((report, cassette))
}

/// [`run_scenario_recorded`] with tracing: record the cassette *and* sample
/// span trees along the way. The report carries the phase breakdown, so a
/// traced replay with the same `trace` config reproduces it byte-for-byte.
pub fn run_scenario_recorded_traced(
    spec: &ScenarioSpec,
    seed: u64,
    trace: TraceConfig,
) -> Result<(GatewayReport, Cassette, Vec<SpanTree>), CassetteError> {
    if spec.sessions.is_some() {
        return Err(CassetteError::Unrecordable(format!(
            "scenario '{}' carries a closed-loop session rider",
            spec.name
        )));
    }
    let (report, outcomes, trees) = run_scenario_impl(spec, seed, trace);
    let compiled = spec.compile(seed);
    let cassette = Cassette::from_run(spec, seed, &compiled, outcomes)?;
    Ok((report, cassette, trees))
}

/// Replay a recorded cassette: validate it, compile it back into a
/// self-contained spec (outcomes stripped, tenants replaying their recorded
/// tracks) and run it against the recorded deployment. The returned report
/// is byte-identical to the recording's — enforced here by
/// [`check_replay_invariants`], which turns any divergence in offered counts
/// or identity into a typed [`CassetteError::ReplayMismatch`].
pub fn replay_cassette(cassette: &Cassette) -> Result<GatewayReport, CassetteError> {
    Ok(replay_cassette_traced(cassette, TraceConfig::default())?.0)
}

/// [`replay_cassette`] with tracing: replay the recording while sampling span
/// trees. Replaying with the same `trace` config the recording used yields a
/// byte-identical report (phase breakdown included) and byte-identical trees.
pub fn replay_cassette_traced(
    cassette: &Cassette,
    trace: TraceConfig,
) -> Result<(GatewayReport, Vec<SpanTree>), CassetteError> {
    let spec = cassette.to_spec()?;
    let (report, trees) = run_scenario_traced(&spec, cassette.seed, trace);
    check_replay_invariants(&report, cassette)
        .map_err(|violations| CassetteError::ReplayMismatch(violations.join("; ")))?;
    Ok((report, trees))
}

/// The replay-mode dashboard banner for a cassette: what an operator sees
/// when the traffic on the dashboard is a recording, not live users.
pub fn replay_dashboard_cell(cassette: &Cassette) -> first_telemetry::ReplayCell {
    first_telemetry::ReplayCell {
        cassette: cassette.scenario.clone(),
        seed: cassette.seed,
        entries: cassette.len() as u64,
        fault_events: cassette.faults.len() as u64,
    }
}

/// The shared body of [`run_scenario`] and [`run_scenario_recorded`]: drive
/// the compiled stream and return the report, the per-request outcomes
/// aligned with the compiled stream by index (always collected — it is two
/// vector writes per request), and the sampled span trees (empty unless
/// `trace` is enabled).
fn run_scenario_impl(
    spec: &ScenarioSpec,
    seed: u64,
    trace: TraceConfig,
) -> (GatewayReport, Vec<RequestOutcome>, Vec<SpanTree>) {
    assert!(
        spec.tenants.is_empty() || spec.sessions.is_none(),
        "scenario '{}': open-loop tenants and a session rider are mutually exclusive",
        spec.name
    );

    let mut builder = builder_for(spec.deployment)
        .prewarm(spec.prewarm)
        .trace(trace);
    if spec.resilience {
        builder = builder.resilience(ResilienceConfig::production());
    }
    let mut gateway = builder.build();

    let tokens: Vec<TokenString> = spec
        .tenants
        .iter()
        .map(|t| enroll_tenant_user(&mut gateway, &t.name))
        .collect();
    let tenant_by_user: HashMap<String, usize> = spec
        .tenants
        .iter()
        .enumerate()
        .map(|(i, t)| (t.name.clone(), i))
        .collect();

    let compiled = spec.compile(seed);
    let horizon = compiled.horizon;
    let mut injector = FaultInjector::new(spec.faults.clone());
    let mut ledger = RunLedger::new();

    // Per-tenant accumulators.
    let n_tenants = spec.tenants.len();
    let mut offered = vec![0usize; n_tenants];
    let mut rejected = vec![0usize; n_tenants];
    let mut failed = vec![0usize; n_tenants];
    let mut output_tokens = vec![0u64; n_tenants];
    let mut latencies: Vec<Histogram> = (0..n_tenants).map(|_| Histogram::new()).collect();

    let mut next = 0usize;
    let mut last_delivery = SimTime::ZERO;
    let first_arrival = compiled
        .requests
        .first()
        .map(|r| r.at)
        .unwrap_or(SimTime::ZERO);

    // Per-request outcomes, aligned with `compiled.requests` by index; the
    // gateway's dense request ids map responses back to stream positions.
    let mut outcomes: Vec<RequestOutcome> = Vec::with_capacity(compiled.requests.len());
    let mut request_index: HashMap<u64, usize> = HashMap::new();

    let mut collect = |gateway: &mut Gateway,
                       ledger: &mut RunLedger,
                       last_delivery: &mut SimTime,
                       outcomes: &mut Vec<RequestOutcome>,
                       request_index: &HashMap<u64, usize>| {
        for r in gateway.take_responses() {
            ledger.on_response(r.success);
            *last_delivery = (*last_delivery).max(r.finished_at);
            if let Some(&idx) = request_index.get(&r.request_id) {
                let o = &mut outcomes[idx];
                o.delivered = true;
                o.success = r.success;
                o.latency_s = r.latency().as_secs_f64();
                o.completion_tokens = r.usage.completion_tokens;
            }
            let Some(&tenant) = tenant_by_user.get(&r.user) else {
                continue;
            };
            if r.success {
                latencies[tenant].record(r.latency().as_secs_f64());
                output_tokens[tenant] += r.usage.completion_tokens as u64;
            } else {
                failed[tenant] += 1;
            }
        }
    };

    // Pure closed-loop specs skip the open-loop drive entirely: advancing
    // the gateway through its prewarm events here would fast-forward the
    // clock past the session window before the session driver starts.
    while !compiled.requests.is_empty() || injector.is_active() {
        let next_arrival = compiled.requests.get(next).map(|r| r.at);
        let step = match (next_arrival, injector.next_event_merged(&gateway)) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        };
        let Some(step) = step else {
            break;
        };
        if step > horizon {
            break;
        }
        ledger.clock.observe(step);
        injector.apply_due(gateway.service_mut(), step);
        gateway.advance(step);
        while next < compiled.requests.len() && compiled.requests[next].at <= step {
            let request = &compiled.requests[next];
            let tenant = request.tenant as usize;
            let sample = ConversationSample {
                prompt_tokens: request.prompt_tokens,
                output_tokens: request.output_tokens,
                prompt_text: String::new(),
            };
            // The global stream index keeps every prompt unique, so the
            // response cache cannot collapse tenants into each other.
            let body = synthetic_chat_request(&request.model, next, &sample);
            let result = gateway.chat_completions(
                &body,
                &tokens[tenant],
                Some(request.output_tokens),
                request.at,
            );
            let accepted = result.is_ok();
            if let Ok(id) = result {
                request_index.insert(id, next);
            }
            outcomes.push(RequestOutcome {
                accepted,
                ..RequestOutcome::default()
            });
            ledger.on_submission(accepted);
            offered[tenant] += 1;
            if !accepted {
                rejected[tenant] += 1;
            }
            next += 1;
        }
        collect(
            &mut gateway,
            &mut ledger,
            &mut last_delivery,
            &mut outcomes,
            &request_index,
        );
        if next >= compiled.requests.len() && gateway.is_drained() && injector.is_exhausted() {
            break;
        }
    }
    collect(
        &mut gateway,
        &mut ledger,
        &mut last_delivery,
        &mut outcomes,
        &request_index,
    );
    ledger.drained = next >= compiled.requests.len() && gateway.is_drained();

    // Closed-loop session rider (pure closed-loop specs only; the gateway is
    // untouched at this point, so the session window starts at t=0).
    let webui = spec.sessions.as_ref().map(|rider| {
        let token = enroll_tenant_user(&mut gateway, "webui-sessions");
        run_webui_closed_loop(
            &mut gateway,
            &token,
            &rider.config,
            SimDuration::from_millis(rider.webui_overhead_ms),
            seed ^ 0x5E55_10A5,
        )
    });

    #[cfg(debug_assertions)]
    if spec.sessions.is_none() {
        if let Err(violations) = check_run_invariants(&gateway, &ledger) {
            panic!(
                "scenario '{}' violated run invariants:\n  {}",
                spec.name,
                violations.join("\n  ")
            );
        }
    }

    let duration_s = if let Some(cell) = &webui {
        cell.duration_s
    } else {
        (last_delivery.saturating_since(first_arrival))
            .as_secs_f64()
            .max(1e-9)
    };

    let tenants: Vec<TenantReport> = spec
        .tenants
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let completed = latencies[i].count();
            let availability = completed as f64 / offered[i].max(1) as f64;
            let within_target = latencies[i]
                .samples()
                .iter()
                .filter(|&&l| l <= t.slo.p95_latency_s)
                .count();
            let p95 = latencies[i].p95();
            TenantReport {
                tenant: t.name.clone(),
                priority: t.priority,
                offered: offered[i],
                completed,
                failed: failed[i],
                rejected: rejected[i],
                availability,
                median_latency_s: latencies[i].median(),
                p95_latency_s: p95,
                mean_latency_s: latencies[i].mean(),
                output_tokens: output_tokens[i],
                output_tok_per_s: output_tokens[i] as f64 / duration_s,
                slo_p95_target_s: t.slo.p95_latency_s,
                slo_availability_target: t.slo.availability,
                slo_latency_attainment: within_target as f64 / completed.max(1) as f64,
                slo_met: t.slo.met(p95, availability),
            }
        })
        .collect();
    let slo_attained_tenants = tenants.iter().filter(|t| t.slo_met).count();

    // Drain the sampled span trees and derive the phase breakdown before the
    // report is sealed; both are deterministic functions of `(spec, seed,
    // trace)`, so traced reports stay byte-identical across runs.
    let trees = gateway.recorder_mut().take_trees();
    let phases = if trees.is_empty() {
        None
    } else {
        Some(PhaseBreakdown::from_trees(
            trees.iter(),
            gateway.recorder().sampled(),
            gateway.recorder().dropped(),
        ))
    };

    let metrics = gateway.metrics_mut();
    let completed_total = ledger.completed + webui.as_ref().map_or(0, |c| c.completed);
    let report = GatewayReport {
        scenario: spec.name.clone(),
        seed,
        offered: ledger.offered + webui.as_ref().map_or(0, |c| c.completed),
        accepted: ledger.accepted + webui.as_ref().map_or(0, |c| c.completed),
        rejected: ledger.rejected,
        completed: completed_total,
        failed: ledger.failed,
        duration_s,
        request_throughput: completed_total as f64 / duration_s,
        output_token_throughput: (output_tokens.iter().sum::<u64>() as f64
            + webui
                .as_ref()
                .map_or(0.0, |c| c.token_throughput * c.duration_s))
            / duration_s,
        faults_injected: injector.applied().len(),
        retries: metrics.retries,
        failovers: metrics.failovers,
        breaker_trips: metrics.breaker_trips,
        hedges: metrics.hedges,
        tenants,
        slo_attained_tenants,
        webui,
        phases,
    };
    (report, outcomes, trees)
}

#[cfg(test)]
mod tests {
    use super::*;
    use first_workload::{
        scenario::models, ArrivalProcess, DeploymentRef, ScenarioSpec, SloTarget, TenantClass,
    };

    fn small_spec() -> ScenarioSpec {
        ScenarioSpec::new(
            "unit-steady",
            "unit-test steady load",
            DeploymentRef::SingleClusterTest,
            vec![TenantClass::synthetic(
                "unit-tenant",
                25,
                ArrivalProcess::Poisson(2.0),
                models::LLAMA_70B,
            )],
        )
    }

    #[test]
    fn steady_scenario_completes_everything_and_partitions_by_tenant() {
        let report = run_scenario(&small_spec(), 42);
        assert_eq!(report.offered, 25);
        assert_eq!(report.accepted, 25);
        assert_eq!(report.completed, 25);
        assert_eq!(report.failed, 0);
        assert_eq!(report.tenants.len(), 1);
        let t = report.tenant("unit-tenant").unwrap();
        assert_eq!(t.completed, 25);
        assert!((t.availability - 1.0).abs() < 1e-9);
        assert!(t.p95_latency_s > 0.0);
        assert!(t.output_tokens > 0);
        let text = report.render_text();
        assert!(text.contains("unit-tenant"));
        assert!(text.contains("unit-steady"));
    }

    #[test]
    fn reports_are_seed_deterministic_and_seed_sensitive() {
        let spec = small_spec();
        let a = run_scenario(&spec, 7);
        let b = run_scenario(&spec, 7);
        assert_eq!(a, b);
        let c = run_scenario(&spec, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn multi_tenant_runs_keep_per_tenant_slo_accounting() {
        let spec = ScenarioSpec::new(
            "unit-two-tenants",
            "",
            DeploymentRef::SingleClusterTest,
            vec![
                TenantClass::synthetic(
                    "interactive",
                    15,
                    ArrivalProcess::Poisson(1.0),
                    models::LLAMA_70B,
                )
                .with_priority(200)
                .with_slo(SloTarget {
                    p95_latency_s: 300.0,
                    availability: 0.9,
                }),
                TenantClass::synthetic("flood", 20, ArrivalProcess::Infinite, models::LLAMA_8B)
                    .with_priority(10)
                    .with_slo(SloTarget::batch()),
            ],
        );
        let report = run_scenario(&spec, 42);
        assert_eq!(report.offered, 35);
        assert_eq!(report.completed, 35);
        let interactive = report.tenant("interactive").unwrap();
        let flood = report.tenant("flood").unwrap();
        assert_eq!(interactive.offered, 15);
        assert_eq!(flood.offered, 20);
        assert!(interactive.slo_met, "generous SLO is met");
        assert_eq!(
            report.slo_attained_tenants,
            report.tenants.iter().filter(|t| t.slo_met).count()
        );
    }

    #[test]
    fn traced_runs_sample_complete_trees_without_perturbing_the_sim() {
        let spec = small_spec();
        let plain = run_scenario(&spec, 42);
        let (traced, trees) = run_scenario_traced(&spec, 42, TraceConfig::every_request(4096));
        // Tracing must not move sim time: everything but the breakdown is
        // identical to the untraced run.
        let mut stripped = traced.clone();
        stripped.phases = None;
        assert_eq!(plain, stripped, "tracing perturbed the simulation");
        // Every accepted request yielded a well-formed tree that reconciles
        // with its end-to-end latency (clean run: no idle time at all).
        assert_eq!(trees.len(), traced.accepted);
        for tree in &trees {
            assert!(tree.well_formed(), "malformed tree: {tree:?}");
            assert_eq!(
                tree.phase_total_micros() + tree.idle_micros(),
                tree.end_to_end_micros()
            );
            assert_eq!(tree.idle_micros(), 0, "clean run has no idle gaps");
        }
        let phases = traced.phases.as_ref().expect("breakdown present");
        assert_eq!(phases.sampled, trees.len() as u64);
        assert_eq!(phases.by_tenant.len(), 1);
        assert!(!phases.critical_path.is_empty());
        // Traced runs are themselves deterministic, trees included.
        let (again, trees_again) = run_scenario_traced(&spec, 42, TraceConfig::every_request(4096));
        assert_eq!(traced, again);
        assert_eq!(trees, trees_again);
    }

    #[test]
    fn recording_matches_the_plain_run_and_replays_byte_identically() {
        let spec = small_spec();
        let plain = run_scenario(&spec, 42);
        let (recorded, cassette) = run_scenario_recorded(&spec, 42).expect("recordable");
        assert_eq!(plain, recorded, "recording must not perturb the run");
        assert_eq!(cassette.len(), recorded.offered);
        // Every accepted request in this clean run was delivered and succeeded.
        assert!(cassette
            .entries
            .iter()
            .all(|e| e.outcome.accepted && e.outcome.delivered && e.outcome.success));
        assert!(cassette
            .entries
            .iter()
            .all(|e| e.outcome.latency_s > 0.0 && e.outcome.completion_tokens > 0));

        let replayed = replay_cassette(&cassette).expect("replays");
        assert_eq!(plain, replayed, "replay reproduces the report");
        // Byte-level, not just structural: what the golden files pin.
        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&replayed).unwrap()
        );
        // And the cassette survives a serde round trip on the way.
        let thawed = first_workload::Cassette::from_json(&cassette.to_json()).expect("round trips");
        assert_eq!(replay_cassette(&thawed).expect("replays"), plain);
    }

    #[test]
    fn empty_cassette_replays_to_a_clean_empty_report() {
        let spec = ScenarioSpec::new(
            "unit-empty",
            "no tenants at all",
            DeploymentRef::SingleClusterTest,
            Vec::new(),
        );
        let (report, cassette) = run_scenario_recorded(&spec, 1).expect("recordable");
        assert!(cassette.is_empty());
        assert_eq!(report.offered, 0);
        let replayed = replay_cassette(&cassette).expect("empty replay is clean");
        assert_eq!(report, replayed);
        assert_eq!(replayed.completed, 0);
    }

    #[test]
    fn session_specs_are_unrecordable_with_a_typed_error() {
        let mut spec = ScenarioSpec::new(
            "unit-sessions",
            "",
            DeploymentRef::SingleClusterTest,
            Vec::new(),
        );
        spec.sessions = Some(first_workload::SessionClosedLoop {
            config: first_workload::SessionWorkloadConfig::table1(models::LLAMA_8B, 4, 60),
            webui_overhead_ms: 1200,
        });
        match run_scenario_recorded(&spec, 1) {
            Err(CassetteError::Unrecordable(msg)) => assert!(msg.contains("unit-sessions")),
            other => panic!("expected Unrecordable, got {other:?}"),
        }
    }

    #[test]
    fn replay_invariants_catch_divergence() {
        let (_, cassette) = run_scenario_recorded(&small_spec(), 42).expect("recordable");
        let replayed = replay_cassette(&cassette).expect("replays");
        assert_eq!(replayed.seed, cassette.seed, "replay reuses the seed");
        // Forge a diverging report: the conservation check must trip on the
        // offered count and on a renamed tenant partition.
        let mut forged = replayed.clone();
        forged.offered += 1;
        forged.tenants[0].tenant = "impostor".to_string();
        let violations = check_replay_invariants(&forged, &cassette).unwrap_err();
        assert!(
            violations.iter().any(|v| v.contains("offered")),
            "{violations:?}"
        );
        assert!(
            violations.iter().any(|v| v.contains("impostor")),
            "{violations:?}"
        );
    }
}
