//! The scenario runner: compiles a declarative [`ScenarioSpec`] into a
//! request stream and replays it against a live deployment — one gateway or
//! a sharded federation of peers.
//!
//! [`ScenarioRun`] is the single seam every scenario-matrix consumer shares:
//! a builder that composes the orthogonal run axes — seed, shard topology,
//! tracing, recording, replay — into one `execute()`. The run resolves the
//! spec's deployment reference (once per shard), enrolls one auth user per
//! tenant class on every shard (so the request log, dashboard and metric
//! export partition per tenant for free, and a credential is valid wherever
//! the ring or a spill sends the request), replays the merged stream
//! open-loop with the spec's embedded fault plan applied along the way, and
//! reports per-tenant metric partitions and SLO attainment in a
//! [`GatewayReport`] — with a per-shard [`ShardSection`] rollup when the run
//! was sharded. In debug builds the run finishes with the
//! [`crate::invariants`] check, so every `cargo test` that touches a
//! scenario also proves request conservation and task-slab hygiene.
//!
//! The older free-function family (`run_scenario`, `run_scenario_traced`,
//! `run_scenario_recorded`, `run_scenario_recorded_traced`,
//! `replay_cassette`, `replay_cassette_traced`) survives as thin
//! `#[deprecated]` delegations — each axis used to multiply the function
//! count, and sharding would have doubled it again.

use crate::deploy::DeploymentBuilder;
use crate::gateway::Gateway;
#[cfg(debug_assertions)]
use crate::invariants::{
    check_failover_run_invariants, check_run_invariants, check_sharded_run_invariants,
};
use crate::invariants::{check_replay_invariants, RunLedger};
use crate::shard::{FrontTierPolicy, ShardReport, ShardedGateway, ShardingConfig, SpilloverPolicy};
use crate::sim::{run_webui_closed_loop, synthetic_chat_request, WebUiCell};
use first_auth::{Identity, Scope, TokenString, UserId};
use first_chaos::{FaultInjector, ResilienceConfig, ShardFaultKind};
use first_desim::{Histogram, SimDuration, SimProcess, SimTime};
use first_telemetry::{PhaseBreakdown, SpanTree, TraceConfig};
use first_workload::{
    Cassette, CassetteError, ConversationSample, DeploymentRef, RequestOutcome, ScenarioRequest,
    ScenarioSpec,
};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Per-tenant metric partition of one scenario run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantReport {
    /// Tenant-class name.
    pub tenant: String,
    /// Tenant priority (from the spec).
    pub priority: u8,
    /// Requests the tenant offered.
    pub offered: usize,
    /// Requests answered successfully.
    pub completed: usize,
    /// Requests that failed after acceptance.
    pub failed: usize,
    /// Requests rejected at the API boundary.
    pub rejected: usize,
    /// `completed / offered`.
    pub availability: f64,
    /// Median end-to-end latency of successful requests, seconds.
    pub median_latency_s: f64,
    /// 95th-percentile end-to-end latency, seconds.
    pub p95_latency_s: f64,
    /// Mean end-to-end latency, seconds.
    pub mean_latency_s: f64,
    /// Output tokens delivered to this tenant.
    pub output_tokens: u64,
    /// Output tokens per second over the run.
    pub output_tok_per_s: f64,
    /// SLO target: 95th-percentile latency, seconds.
    pub slo_p95_target_s: f64,
    /// SLO target: availability.
    pub slo_availability_target: f64,
    /// Fraction of completed requests inside the latency target.
    pub slo_latency_attainment: f64,
    /// Whether the tenant's measured p95 and availability met the target.
    pub slo_met: bool,
}

impl TenantReport {
    /// One formatted table row (used by `scenario_matrix` and the dashboard
    /// example).
    pub fn table_row(&self) -> String {
        format!(
            "{:<18} {:>4} {:>7} {:>7} {:>5} {:>5} {:>7.2}% {:>9.1} {:>9.1} {:>10} {:>8.1}% {:>5}",
            self.tenant,
            self.priority,
            self.offered,
            self.completed,
            self.failed,
            self.rejected,
            self.availability * 100.0,
            self.median_latency_s,
            self.p95_latency_s,
            self.output_tokens,
            self.slo_latency_attainment * 100.0,
            if self.slo_met { "met" } else { "MISS" },
        )
    }

    /// The table header matching [`TenantReport::table_row`].
    pub fn table_header() -> String {
        format!(
            "{:<18} {:>4} {:>7} {:>7} {:>5} {:>5} {:>8} {:>9} {:>9} {:>10} {:>9} {:>5}",
            "tenant",
            "prio",
            "offered",
            "done",
            "fail",
            "rej",
            "avail",
            "med (s)",
            "p95 (s)",
            "out_tok",
            "slo_att",
            "slo"
        )
    }
}

/// The sharded-federation rollup of one run: how the front tier split the
/// traffic, what each shard did with its share and how much crossed shards
/// under the spillover policy. `None` on the report when the run used the
/// transparent single-shard configuration, so unsharded reports serialize
/// exactly as they did before sharding existed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardSection {
    /// Number of peer gateway shards.
    pub count: usize,
    /// DNS/LB fan-in latency modelled between client and shard, seconds.
    pub fanin_latency_s: f64,
    /// The spillover policy the front tier ran under.
    pub spillover: SpilloverPolicy,
    /// Requests that crossed shards under the spillover policy.
    pub spilled_requests: usize,
    /// Per-shard rollups, in shard order.
    pub shards: Vec<ShardReport>,
}

/// The failover rollup of one run under shard-scoped faults or a non-default
/// front-tier policy: what the chaos plan did to the federation tier and how
/// the front tier absorbed it — retries, hedges, re-homes, and typed sheds.
/// `None` on the report when the run had neither, so reports from before
/// shard faults existed keep serializing exactly as they did.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FailoverSection {
    /// Whole-shard crashes applied from the plan.
    pub crashes: usize,
    /// Shard restarts applied (fresh replica, cold caches, re-enrolled
    /// tenants).
    pub restarts: usize,
    /// Front-tier partitions applied (shard alive but unroutable).
    pub partitions: usize,
    /// Fan-in latency spikes applied.
    pub fanin_spikes: usize,
    /// Physical in-flight copies lost to shard crashes.
    pub lost_in_flight: usize,
    /// Arrivals routed to a surviving peer because their home shard was dead
    /// or partitioned at arrival time.
    pub rehomed_requests: usize,
    /// Front-tier re-dispatches: crash-loss retries under exponential
    /// backoff plus request-timeout re-dispatches.
    pub retries_dispatched: usize,
    /// Requests that resolved on a non-hedge attempt after more than one
    /// dispatch.
    pub retried_to_completion: usize,
    /// Hedged duplicate dispatches issued by the front tier.
    pub hedges_dispatched: usize,
    /// Requests whose hedged duplicate answered first.
    pub hedge_wins: usize,
    /// Responses that arrived after their request had already been resolved
    /// by a duplicate; dropped at the front tier, counted on the shard.
    pub stale_responses: usize,
    /// Typed overload sheds: arrivals below the shed policy's priority floor
    /// rejected while their home shard's queue exceeded the depth bound.
    pub shed_overload: usize,
    /// Typed sheds because no shard was routable at arrival time.
    pub shed_no_live_shard: usize,
    /// Accepted requests failed back to the client after the retry budget
    /// ran out, or with no routable shard left to retry on.
    pub shed_retries_exhausted: usize,
    /// Circuit-breaker trips recorded by the fleet's per-shard health
    /// tracker.
    pub breaker_trips: u64,
}

/// The full result of one scenario run: whole-run totals plus the per-tenant
/// partitions. Contains no wall-clock measurement, so two runs of the same
/// spec and seed serialize byte-identically — the property the golden tests
/// and the CI thread-count diff pin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GatewayReport {
    /// Scenario name (from the spec).
    pub scenario: String,
    /// Seed the run used.
    pub seed: u64,
    /// Requests offered across all tenants.
    pub offered: usize,
    /// Requests accepted by the gateway.
    pub accepted: usize,
    /// Requests rejected at the API boundary.
    pub rejected: usize,
    /// Requests answered successfully.
    pub completed: usize,
    /// Requests failed after acceptance.
    pub failed: usize,
    /// Run duration in seconds (first arrival → last delivery).
    pub duration_s: f64,
    /// Completed requests per second.
    pub request_throughput: f64,
    /// Output tokens per second.
    pub output_token_throughput: f64,
    /// Faults the injector actually applied.
    pub faults_injected: usize,
    /// Gateway retries issued.
    pub retries: u64,
    /// Failovers to a different endpoint.
    pub failovers: u64,
    /// Circuit-breaker trips.
    pub breaker_trips: u64,
    /// Hedged requests issued.
    pub hedges: u64,
    /// Per-tenant partitions, in spec order.
    pub tenants: Vec<TenantReport>,
    /// Tenants whose SLO was met.
    pub slo_attained_tenants: usize,
    /// Closed-loop session cell, when the spec carried a session rider.
    pub webui: Option<WebUiCell>,
    /// Phase-latency breakdown of the sampled span trees; `None` unless the
    /// run was traced ([`ScenarioRun::traced`]) and sampled at least one
    /// request.
    #[serde(default)]
    pub phases: Option<PhaseBreakdown>,
    /// Per-shard federation rollup; `None` for single-shard runs, so
    /// unsharded reports stay byte-compatible with pre-sharding ones.
    #[serde(default)]
    pub shards: Option<ShardSection>,
    /// Shard-fault failover rollup; `None` unless the run carried a shard
    /// fault plan or a non-default front-tier policy, so existing reports
    /// stay byte-compatible.
    #[serde(default)]
    pub failover: Option<FailoverSection>,
}

impl GatewayReport {
    /// Look up a tenant partition by name.
    pub fn tenant(&self, name: &str) -> Option<&TenantReport> {
        self.tenants.iter().find(|t| t.tenant == name)
    }

    /// Render the whole report as the table the bench binaries print.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "scenario '{}' (seed {}): offered={} accepted={} rejected={} completed={} failed={} \
             in {:.1}s ({:.2} req/s, {:.1} tok/s), faults={} retries={} failovers={} trips={} hedges={}",
            self.scenario,
            self.seed,
            self.offered,
            self.accepted,
            self.rejected,
            self.completed,
            self.failed,
            self.duration_s,
            self.request_throughput,
            self.output_token_throughput,
            self.faults_injected,
            self.retries,
            self.failovers,
            self.breaker_trips,
            self.hedges,
        );
        if !self.tenants.is_empty() {
            let _ = writeln!(out, "{}", TenantReport::table_header());
            for t in &self.tenants {
                let _ = writeln!(out, "{}", t.table_row());
            }
        }
        if let Some(sh) = &self.shards {
            let _ = writeln!(
                out,
                "sharded federation: {} shards, fan-in {:.3}s, spillover {}, {} spilled",
                sh.count,
                sh.fanin_latency_s,
                if sh.spillover.enabled {
                    "bounded"
                } else {
                    "off"
                },
                sh.spilled_requests,
            );
            let _ = writeln!(out, "{}", ShardReport::table_header());
            for s in &sh.shards {
                let _ = writeln!(out, "{}", s.table_row());
            }
        }
        if let Some(fo) = &self.failover {
            let _ = writeln!(
                out,
                "failover: {} crashed / {} restarted / {} partitioned / {} fan-in spikes; \
                 lost {} in flight, rehomed {}, retries {} ({} won), hedges {} ({} won), \
                 {} stale; shed {} overload + {} no-shard + {} exhausted; {} breaker trips",
                fo.crashes,
                fo.restarts,
                fo.partitions,
                fo.fanin_spikes,
                fo.lost_in_flight,
                fo.rehomed_requests,
                fo.retries_dispatched,
                fo.retried_to_completion,
                fo.hedges_dispatched,
                fo.hedge_wins,
                fo.stale_responses,
                fo.shed_overload,
                fo.shed_no_live_shard,
                fo.shed_retries_exhausted,
                fo.breaker_trips,
            );
        }
        if let Some(cell) = &self.webui {
            let _ = writeln!(
                out,
                "webui sessions: {} concurrent, {} turns in {:.0}s ({:.2} req/s, {:.1} tok/s)",
                cell.concurrency,
                cell.completed,
                cell.duration_s,
                cell.request_throughput,
                cell.token_throughput,
            );
        }
        if let Some(phases) = &self.phases {
            let _ = writeln!(
                out,
                "phase latency ({} sampled, {} dropped):",
                phases.sampled, phases.dropped
            );
            let _ = writeln!(
                out,
                "{:<14} {:>7} {:>10} {:>10} {:>10} {:>10}",
                "phase", "count", "p50 (s)", "p95 (s)", "mean (s)", "total (s)"
            );
            for s in &phases.by_phase {
                let _ = writeln!(
                    out,
                    "{:<14} {:>7} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
                    s.phase.name(),
                    s.count,
                    s.p50_s,
                    s.p95_s,
                    s.mean_s,
                    s.total_s,
                );
            }
            if let Some(top) = phases.critical_path.first() {
                let _ = writeln!(
                    out,
                    "critical path: {} dominates {} requests ({:.0}% of attributed time)",
                    top.phase.name(),
                    top.requests,
                    top.time_share * 100.0,
                );
            }
        }
        out
    }
}

/// Everything one [`ScenarioRun::execute`] yields: the report, plus the
/// cassette when the run was [`ScenarioRun::recorded`] and the sampled span
/// trees when it was [`ScenarioRun::traced`].
#[derive(Debug)]
pub struct RunOutput {
    /// The scenario report (per-tenant partitions, SLO attainment, optional
    /// per-shard rollup).
    pub report: GatewayReport,
    /// The recorded cassette; `Some` exactly when the run was
    /// [`ScenarioRun::recorded`].
    pub cassette: Option<Cassette>,
    /// The sampled span trees; `Some` exactly when the run was
    /// [`ScenarioRun::traced`] with tracing enabled.
    pub traces: Option<Vec<SpanTree>>,
}

/// A composable scenario run: the one entrypoint behind which seed, shard
/// topology, tracing, recording and replay compose instead of multiplying
/// the API.
///
/// ```
/// use first_core::ScenarioRun;
/// use first_workload::{catalog, ScenarioSpec};
///
/// let spec = &catalog(32)[0];
/// // Plain run.
/// let report = ScenarioRun::new(spec).seed(42).execute().unwrap().report;
/// // The same traffic over a 3-shard federation.
/// let sharded = ScenarioRun::new(spec).seed(42).shards(3).execute().unwrap().report;
/// assert_eq!(report.offered, sharded.offered);
/// assert_eq!(sharded.shards.as_ref().unwrap().count, 3);
/// ```
///
/// The run is deterministic for a fixed configuration: the report carries no
/// wall-clock measurement and every random draw derives from the seed.
/// Debug builds finish with the [`crate::invariants`] check. A spec may
/// carry either open-loop tenants or a closed-loop session rider, not both
/// (the two drivers would fight over the same simulation clock).
#[derive(Debug, Clone)]
pub struct ScenarioRun<'c> {
    spec: ScenarioSpec,
    seed: u64,
    sharding: ShardingConfig,
    trace: TraceConfig,
    record: bool,
    replay_of: Option<&'c Cassette>,
}

impl ScenarioRun<'static> {
    /// A run of `spec` with the default configuration: seed 0, one shard,
    /// no tracing, no recording.
    pub fn new(spec: &ScenarioSpec) -> Self {
        ScenarioRun {
            spec: spec.clone(),
            seed: 0,
            sharding: ShardingConfig::single(),
            trace: TraceConfig::default(),
            record: false,
            replay_of: None,
        }
    }
}

impl<'c> ScenarioRun<'c> {
    /// A replay of a recorded cassette: validates it, compiles it back into
    /// a self-contained spec (outcomes stripped, tenants replaying their
    /// recorded tracks) and pins the recorded seed. `execute()` then runs it
    /// against the recorded deployment and enforces byte-level fidelity via
    /// [`check_replay_invariants`], turning any divergence in offered counts
    /// or identity into a typed [`CassetteError::ReplayMismatch`].
    pub fn replay(cassette: &'c Cassette) -> Result<ScenarioRun<'c>, CassetteError> {
        let spec = cassette.to_spec()?;
        Ok(ScenarioRun {
            spec,
            seed: cassette.seed,
            sharding: ShardingConfig::single(),
            trace: TraceConfig::default(),
            record: false,
            replay_of: Some(cassette),
        })
    }

    /// Set the run seed (replays pin the recorded seed instead).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Run the spec over `n` peer gateway shards (consistent-hash routed,
    /// zero fan-in latency, no spillover unless configured separately).
    /// `n = 1` is the transparent configuration, bit-identical to not
    /// calling this at all.
    pub fn shards(mut self, n: usize) -> Self {
        self.sharding.shards = n.max(1);
        self
    }

    /// Model the DNS/LB fan-in hop: every request reaches its shard
    /// `latency` after the client sent it, and client-observed latencies
    /// include the hop.
    pub fn fanin_latency(mut self, latency: SimDuration) -> Self {
        self.sharding.fanin_latency = latency;
        self
    }

    /// Allow bounded cross-shard spillover when a home shard is saturated.
    pub fn spillover(mut self, policy: SpilloverPolicy) -> Self {
        self.sharding.spillover = policy;
        self
    }

    /// Replace the whole sharding configuration at once.
    pub fn sharding(mut self, config: ShardingConfig) -> Self {
        self.sharding = config;
        self
    }

    /// Configure the front-tier failover policy: retry/backoff for requests
    /// lost to shard crashes, an optional per-request timeout re-dispatch,
    /// an optional hedge, and an optional lowest-priority shed under
    /// overload. Setting any non-default policy (or running a spec with a
    /// shard fault plan) switches the run onto the failover driver and adds
    /// a [`FailoverSection`] to the report.
    pub fn front_tier(mut self, policy: FrontTierPolicy) -> Self {
        self.sharding.front_tier = policy;
        self
    }

    /// Enable request-lifecycle tracing: every `sample_every`-th accepted
    /// request yields a [`SpanTree`] in [`RunOutput::traces`], and the
    /// report's [`GatewayReport::phases`] carries the aggregated breakdown.
    /// Tracing never perturbs the simulation — sim-time outcomes are
    /// identical whether or not a request is sampled — and the sampled trees
    /// are seed-deterministic.
    pub fn traced(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// Record the run as a [`Cassette`] in [`RunOutput::cassette`]: the
    /// compiled request stream, what the gateway did with every request, and
    /// the spec's fault timeline. Only transparent single-shard runs are
    /// recordable — the cassette format deliberately carries no shard
    /// topology, so a recording replays bit-exactly everywhere.
    pub fn recorded(mut self) -> Self {
        self.record = true;
        self
    }

    /// Execute the configured run.
    ///
    /// Infallible unless the run was [`ScenarioRun::recorded`] (closed-loop
    /// session specs and sharded configurations are
    /// [`CassetteError::Unrecordable`]) or is a [`ScenarioRun::replay`]
    /// (divergence is [`CassetteError::ReplayMismatch`]).
    pub fn execute(self) -> Result<RunOutput, CassetteError> {
        if self.record {
            if self.spec.sessions.is_some() {
                return Err(CassetteError::Unrecordable(format!(
                    "scenario '{}' carries a closed-loop session rider",
                    self.spec.name
                )));
            }
            if !self.spec.shard_faults.is_empty() {
                return Err(CassetteError::Unrecordable(format!(
                    "scenario '{}' carries a shard-scoped fault plan; cassettes replay on one \
                     transparent shard, which cannot express federation-tier faults",
                    self.spec.name
                )));
            }
            let transparent = self.sharding.shards <= 1
                && self.sharding.fanin_latency == SimDuration::ZERO
                && !self.sharding.spillover.enabled
                && self.sharding.front_tier == FrontTierPolicy::default();
            if !transparent {
                return Err(CassetteError::Unrecordable(format!(
                    "scenario '{}' runs on a sharded front tier; cassettes carry no shard \
                     topology, so only transparent single-shard runs are recordable",
                    self.spec.name
                )));
            }
        }
        let (report, outcomes, trees) =
            run_scenario_impl(&self.spec, self.seed, self.trace, &self.sharding);
        let cassette = if self.record {
            let compiled = self.spec.compile(self.seed);
            Some(Cassette::from_run(
                &self.spec, self.seed, &compiled, outcomes,
            )?)
        } else {
            None
        };
        if let Some(recording) = self.replay_of {
            check_replay_invariants(&report, recording)
                .map_err(|violations| CassetteError::ReplayMismatch(violations.join("; ")))?;
        }
        let traces = self.trace.enabled().then_some(trees);
        Ok(RunOutput {
            report,
            cassette,
            traces,
        })
    }
}

/// Resolve a [`DeploymentRef`] to its concrete builder.
fn builder_for(deployment: DeploymentRef) -> DeploymentBuilder {
    match deployment {
        DeploymentRef::SingleClusterTest => DeploymentBuilder::single_cluster_test(),
        DeploymentRef::SophiaSingleInstance => DeploymentBuilder::sophia_single_instance(),
        DeploymentRef::Sophia => DeploymentBuilder::sophia(),
        DeploymentRef::FederatedSophiaPolaris => DeploymentBuilder::federated_sophia_polaris(),
    }
}

/// Enroll one auth user for `name` and return their bearer token.
fn enroll_tenant_user(gateway: &mut Gateway, name: &str) -> TokenString {
    let auth = gateway.auth_mut();
    auth.enroll_user(&UserId::new(name));
    let (token, _) = auth
        .login(
            &Identity::new(name, "anl.gov").with_project("scenario-matrix"),
            &[Scope::InferenceApi],
            SimTime::ZERO,
        )
        .unwrap_or_else(|e| panic!("tenant '{name}' login failed: {e:?}"));
    token.token
}

/// Compile `spec` at `seed`, replay it against the spec's deployment and
/// report per-tenant metrics and SLO attainment.
#[deprecated(
    note = "use `ScenarioRun::new(spec).seed(seed).execute()` — the builder composes seed, \
            shards, tracing, recording and replay behind one `execute()`"
)]
pub fn run_scenario(spec: &ScenarioSpec, seed: u64) -> GatewayReport {
    ScenarioRun::new(spec)
        .seed(seed)
        .execute()
        .expect("unrecorded runs are infallible")
        .report
}

/// Run `spec` with request-lifecycle tracing enabled.
#[deprecated(
    note = "use `ScenarioRun::new(spec).seed(seed).traced(trace).execute()`; the trees come \
            back in `RunOutput::traces`"
)]
pub fn run_scenario_traced(
    spec: &ScenarioSpec,
    seed: u64,
    trace: TraceConfig,
) -> (GatewayReport, Vec<SpanTree>) {
    let out = ScenarioRun::new(spec)
        .seed(seed)
        .traced(trace)
        .execute()
        .expect("unrecorded runs are infallible");
    (out.report, out.traces.unwrap_or_default())
}

/// Run `spec` exactly as a plain run would and additionally record the run
/// as a [`Cassette`].
#[deprecated(
    note = "use `ScenarioRun::new(spec).seed(seed).recorded().execute()`; the cassette comes \
            back in `RunOutput::cassette`"
)]
pub fn run_scenario_recorded(
    spec: &ScenarioSpec,
    seed: u64,
) -> Result<(GatewayReport, Cassette), CassetteError> {
    let out = ScenarioRun::new(spec).seed(seed).recorded().execute()?;
    Ok((out.report, out.cassette.expect("recorded run")))
}

/// Record the run as a cassette *and* sample span trees along the way.
#[deprecated(
    note = "use `ScenarioRun::new(spec).seed(seed).recorded().traced(trace).execute()` — \
            recording and tracing compose on the builder"
)]
pub fn run_scenario_recorded_traced(
    spec: &ScenarioSpec,
    seed: u64,
    trace: TraceConfig,
) -> Result<(GatewayReport, Cassette, Vec<SpanTree>), CassetteError> {
    let out = ScenarioRun::new(spec)
        .seed(seed)
        .recorded()
        .traced(trace)
        .execute()?;
    Ok((
        out.report,
        out.cassette.expect("recorded run"),
        out.traces.unwrap_or_default(),
    ))
}

/// Replay a recorded cassette and enforce byte-level replay fidelity.
#[deprecated(
    note = "use `ScenarioRun::replay(cassette)?.execute()` — replay is a `ScenarioRun` \
            configuration, not a separate entrypoint"
)]
pub fn replay_cassette(cassette: &Cassette) -> Result<GatewayReport, CassetteError> {
    Ok(ScenarioRun::replay(cassette)?.execute()?.report)
}

/// Replay a recording while sampling span trees.
#[deprecated(
    note = "use `ScenarioRun::replay(cassette)?.traced(trace).execute()` — replay and tracing \
            compose on the builder"
)]
pub fn replay_cassette_traced(
    cassette: &Cassette,
    trace: TraceConfig,
) -> Result<(GatewayReport, Vec<SpanTree>), CassetteError> {
    let out = ScenarioRun::replay(cassette)?.traced(trace).execute()?;
    Ok((out.report, out.traces.unwrap_or_default()))
}

/// The replay-mode dashboard banner for a cassette: what an operator sees
/// when the traffic on the dashboard is a recording, not live users.
pub fn replay_dashboard_cell(cassette: &Cassette) -> first_telemetry::ReplayCell {
    first_telemetry::ReplayCell {
        cassette: cassette.scenario.clone(),
        seed: cassette.seed,
        entries: cassette.len() as u64,
        fault_events: cassette.faults.len() as u64,
    }
}

/// Front-tier actions scheduled on the failover event queue. Ordering within
/// one instant follows the queue's monotone sequence number, so the enum's
/// own derived order only ever breaks exact duplicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum FrontAction {
    /// Re-dispatch request `idx` after a crash lost its in-flight copy.
    Retry(usize),
    /// Request-timeout check for request `idx`, armed at attempt snapshot.
    Timeout(usize, u32),
    /// Hedge request `idx` if the attempt snapshot is still current.
    Hedge(usize, u32),
    /// A front-tier partition of `shard` heals.
    Heal(usize),
}

/// Mutable front-tier failover state for one run. Only allocated when the
/// run carries shard-scoped faults or a non-default [`FrontTierPolicy`]; the
/// fault-free path never touches it, which is what keeps those reports
/// byte-identical to the pre-failover driver.
struct FrontState {
    policy: FrontTierPolicy,
    /// Per-request resolution flag, aligned with the compiled stream.
    resolved: Vec<bool>,
    /// Physical dispatch attempts per request (initial submit included).
    attempts: Vec<u32>,
    /// Physical copies currently in flight per request.
    outstanding: Vec<u32>,
    /// Shard the latest non-hedge attempt went to (hedges go elsewhere).
    last_shard: Vec<usize>,
    /// Accepted-but-unresolved logical requests.
    unresolved: usize,
    /// Event queue keyed by `(time, seq)`; the seq keeps ordering
    /// deterministic within one instant.
    queue: BinaryHeap<Reverse<(SimTime, u64, FrontAction)>>,
    seq: u64,
    /// Cursor into the spec's shard fault plan.
    cursor: usize,
    /// Active fan-in latency spikes: `(expires, extra latency)`.
    spikes: Vec<(SimTime, SimDuration)>,
    /// Shards that crashed at least once; their physical ledgers can never
    /// report drained because the in-flight work they lost is gone.
    ever_crashed: Vec<bool>,
    counters: FailoverSection,
}

impl FrontState {
    fn new(policy: FrontTierPolicy, requests: usize, shards: usize) -> Self {
        FrontState {
            policy,
            resolved: vec![false; requests],
            attempts: vec![0; requests],
            outstanding: vec![0; requests],
            last_shard: vec![0; requests],
            unresolved: 0,
            queue: BinaryHeap::new(),
            seq: 0,
            cursor: 0,
            spikes: Vec::new(),
            ever_crashed: vec![false; shards],
            counters: FailoverSection::default(),
        }
    }

    fn push(&mut self, at: SimTime, action: FrontAction) {
        self.queue.push(Reverse((at, self.seq, action)));
        self.seq += 1;
    }

    fn next_at(&self) -> Option<SimTime> {
        self.queue.peek().map(|Reverse((at, _, _))| *at)
    }

    /// Fan-in latency including any active spike at `now`. Expired spikes
    /// are pruned here — arrivals are non-decreasing, so an entry that has
    /// lapsed can never contribute again and would otherwise accumulate for
    /// the whole run (one per injected spike, scanned on every request).
    fn effective_fanin(&mut self, base: SimDuration, now: SimTime) -> SimDuration {
        self.spikes.retain(|&(until, _)| until > now);
        let extra = self
            .spikes
            .iter()
            .map(|&(_, extra)| extra)
            .max()
            .unwrap_or(SimDuration::ZERO);
        base + extra
    }

    /// Resolve `idx` as failed-back-to-the-client when nothing is in flight
    /// for it any more and the front tier has no further move.
    fn give_up(&mut self, idx: usize, tenant: usize, ledger: &mut RunLedger, failed: &mut [usize]) {
        if self.outstanding[idx] > 0 || self.resolved[idx] {
            return;
        }
        self.resolved[idx] = true;
        self.unresolved -= 1;
        ledger.on_response(false);
        failed[tenant] += 1;
        self.counters.shed_retries_exhausted += 1;
    }
}

/// One front-tier re-dispatch of request `idx` at `now`: a crash-loss or
/// timeout retry (`hedge == false`, budgeted by the retry policy) or a
/// hedged duplicate to a different shard (`hedge == true`). Resolves the
/// request as failed when the budget is exhausted or no shard is routable
/// and nothing is in flight.
#[allow(clippy::too_many_arguments)]
fn front_dispatch(
    fleet: &mut ShardedGateway,
    f: &mut FrontState,
    ledger: &mut RunLedger,
    shard_ledgers: &mut [RunLedger],
    request_index: &mut HashMap<(usize, u64), (usize, bool)>,
    requests: &[ScenarioRequest],
    spec: &ScenarioSpec,
    tokens: &[Vec<TokenString>],
    failed: &mut [usize],
    idx: usize,
    now: SimTime,
    hedge: bool,
) {
    let request = &requests[idx];
    let tenant = request.tenant as usize;
    let budget = 1 + f.policy.retry.max_retries;
    if !hedge && f.attempts[idx] >= budget {
        f.give_up(idx, tenant, ledger, failed);
        return;
    }
    let target = if hedge {
        // Hedge to the least-loaded routable shard other than the one the
        // primary attempt went to; with nowhere else to go, skip quietly —
        // the primary is still in flight.
        let exclude = f.last_shard[idx];
        (0..fleet.shard_count())
            .filter(|&i| i != exclude && fleet.routable(i))
            .min_by_key(|&i| (fleet.shard(i).load_depth(), i))
    } else {
        fleet.routable_home(&spec.tenants[tenant].name)
    };
    let Some(shard) = target else {
        if !hedge {
            f.give_up(idx, tenant, ledger, failed);
        }
        return;
    };
    let sample = ConversationSample {
        prompt_tokens: request.prompt_tokens,
        output_tokens: request.output_tokens,
        prompt_text: String::new(),
    };
    let body = synthetic_chat_request(&request.model, idx, &sample);
    let result = fleet.shard_mut(shard).chat_completions(
        &body,
        &tokens[shard][tenant],
        Some(request.output_tokens),
        now,
    );
    f.attempts[idx] += 1;
    if hedge {
        f.counters.hedges_dispatched += 1;
    } else {
        f.counters.retries_dispatched += 1;
    }
    match result {
        Ok(id) => {
            request_index.insert((shard, id), (idx, hedge));
            f.outstanding[idx] += 1;
            shard_ledgers[shard].on_submission(true);
            if !hedge {
                f.last_shard[idx] = shard;
                let snap = f.attempts[idx];
                if let Some(timeout) = f.policy.request_timeout {
                    f.push(now + timeout, FrontAction::Timeout(idx, snap));
                }
                if let Some(after) = f.policy.hedge_after {
                    f.push(now + after, FrontAction::Hedge(idx, snap));
                }
            }
        }
        Err(_) => {
            shard_ledgers[shard].on_submission(false);
            if !hedge {
                if f.attempts[idx] >= budget {
                    f.give_up(idx, tenant, ledger, failed);
                } else {
                    // The shard refused the retry outright: burn one backoff
                    // step and try again within the same budget.
                    let backoff = f.policy.retry.backoff(f.attempts[idx].saturating_sub(1));
                    f.push(now + backoff, FrontAction::Retry(idx));
                }
            }
        }
    }
}

/// Drain every reachable shard's responses into the ledgers, outcomes and
/// per-tenant accumulators. On the failover path (`front` present) the first
/// response to a logical request wins — duplicates are counted stale and
/// dropped at the front tier — and dead or partitioned shards deliver
/// nothing: a crash loses its in-flight copies outright and a partition
/// buffers responses until it heals.
#[allow(clippy::too_many_arguments)]
fn collect_responses(
    fleet: &mut ShardedGateway,
    ledger: &mut RunLedger,
    shard_ledgers: &mut [RunLedger],
    last_delivery: &mut SimTime,
    outcomes: &mut [RequestOutcome],
    request_index: &mut HashMap<(usize, u64), (usize, bool)>,
    mut front: Option<&mut FrontState>,
    requests: &[ScenarioRequest],
    tenant_by_user: &HashMap<String, usize>,
    fanin_s: f64,
    latencies: &mut [Histogram],
    output_tokens: &mut [u64],
    failed: &mut [usize],
) {
    for (shard, shard_ledger) in shard_ledgers.iter_mut().enumerate() {
        if front.is_some() && (!fleet.is_live(shard) || !fleet.is_reachable(shard)) {
            continue;
        }
        for r in fleet.shard_mut(shard).take_responses() {
            *last_delivery = (*last_delivery).max(r.finished_at);
            if let Some(f) = front.as_deref_mut() {
                shard_ledger.on_response(r.success);
                let Some((idx, was_hedge)) = request_index.remove(&(shard, r.request_id)) else {
                    continue;
                };
                f.outstanding[idx] = f.outstanding[idx].saturating_sub(1);
                if f.resolved[idx] {
                    f.counters.stale_responses += 1;
                    continue;
                }
                f.resolved[idx] = true;
                f.unresolved -= 1;
                ledger.on_response(r.success);
                // Client-observed latency spans from the original arrival:
                // backoff, re-dispatch and hedge delay all count against the
                // SLO, as does any fan-in spike baked into the arrival time.
                let observed = r
                    .finished_at
                    .saturating_since(requests[idx].at)
                    .as_secs_f64();
                let o = &mut outcomes[idx];
                o.delivered = true;
                o.success = r.success;
                o.latency_s = observed;
                o.completion_tokens = r.usage.completion_tokens;
                if f.attempts[idx] > 1 {
                    if was_hedge {
                        f.counters.hedge_wins += 1;
                    } else {
                        f.counters.retried_to_completion += 1;
                    }
                }
                let Some(&tenant) = tenant_by_user.get(&r.user) else {
                    continue;
                };
                if r.success {
                    latencies[tenant].record(observed);
                    output_tokens[tenant] += r.usage.completion_tokens as u64;
                } else {
                    failed[tenant] += 1;
                }
                continue;
            }
            ledger.on_response(r.success);
            shard_ledger.on_response(r.success);
            // Client-observed latency includes the fan-in hop (zero on
            // the transparent configuration, leaving values bit-exact).
            let observed = r.latency().as_secs_f64() + fanin_s;
            if let Some(&(idx, _)) = request_index.get(&(shard, r.request_id)) {
                let o = &mut outcomes[idx];
                o.delivered = true;
                o.success = r.success;
                o.latency_s = observed;
                o.completion_tokens = r.usage.completion_tokens;
            }
            let Some(&tenant) = tenant_by_user.get(&r.user) else {
                continue;
            };
            if r.success {
                latencies[tenant].record(observed);
                output_tokens[tenant] += r.usage.completion_tokens as u64;
            } else {
                failed[tenant] += 1;
            }
        }
    }
}

/// The shared body of every [`ScenarioRun`]: drive the compiled stream over
/// the (possibly single-shard) federation and return the report, the
/// per-request outcomes aligned with the compiled stream by index (always
/// collected — it is two vector writes per request), and the sampled span
/// trees (empty unless `trace` is enabled).
///
/// With the transparent sharding configuration (1 shard, zero fan-in, no
/// spillover) this loop degenerates exactly to the pre-federation
/// single-gateway driver, which is what keeps unsharded reports
/// byte-identical across the redesign.
fn run_scenario_impl(
    spec: &ScenarioSpec,
    seed: u64,
    trace: TraceConfig,
    sharding: &ShardingConfig,
) -> (GatewayReport, Vec<RequestOutcome>, Vec<SpanTree>) {
    assert!(
        spec.tenants.is_empty() || spec.sessions.is_none(),
        "scenario '{}': open-loop tenants and a session rider are mutually exclusive",
        spec.name
    );
    assert!(
        spec.shard_faults.is_empty() || spec.sessions.is_none(),
        "scenario '{}': shard-scoped faults drive the open-loop front tier and cannot compose \
         with a closed-loop session rider",
        spec.name
    );

    let mut builder = builder_for(spec.deployment)
        .prewarm(spec.prewarm)
        .trace(trace);
    if spec.resilience {
        builder = builder.resilience(ResilienceConfig::production());
    }
    let mut fleet = ShardedGateway::from_builder(&builder, sharding.clone());
    let n_shards = fleet.shard_count();
    let fanin = sharding.fanin_latency;
    let fanin_s = fanin.as_secs_f64();

    // One auth user per tenant class, enrolled identically on every shard
    // (the shared control plane): a tenant's credential is valid wherever
    // the ring or a spill sends the request. tokens[shard][tenant].
    let mut tokens: Vec<Vec<TokenString>> = fleet
        .shards_mut()
        .iter_mut()
        .map(|gw| {
            spec.tenants
                .iter()
                .map(|t| enroll_tenant_user(gw, &t.name))
                .collect()
        })
        .collect();
    let tenant_by_user: HashMap<String, usize> = spec
        .tenants
        .iter()
        .enumerate()
        .map(|(i, t)| (t.name.clone(), i))
        .collect();
    // Ring lookups cached per tenant: tenants are the routing key (API key).
    let home: Vec<usize> = spec
        .tenants
        .iter()
        .map(|t| fleet.home_shard(&t.name))
        .collect();

    let compiled = spec.compile(seed);
    let horizon = compiled.horizon;
    // The failover driver only engages when the run can actually need it;
    // otherwise `front` stays `None` and the fault-free path below is
    // byte-identical to the pre-failover driver.
    let front_active =
        !spec.shard_faults.is_empty() || sharding.front_tier != FrontTierPolicy::default();
    let mut front = front_active.then(|| {
        FrontState::new(
            sharding.front_tier.clone(),
            compiled.requests.len(),
            n_shards,
        )
    });
    // Every shard gets its own injector over the same plan: the spec's fault
    // timeline is facility-wide, hitting each shard's replica of the
    // affected endpoints at the same instants.
    let mut injectors: Vec<FaultInjector> = (0..n_shards)
        .map(|_| FaultInjector::new(spec.faults.clone()))
        .collect();
    let mut ledger = RunLedger::new();
    let mut shard_ledgers: Vec<RunLedger> = vec![RunLedger::new(); n_shards];

    // Per-tenant accumulators.
    let n_tenants = spec.tenants.len();
    let mut offered = vec![0usize; n_tenants];
    let mut rejected = vec![0usize; n_tenants];
    let mut failed = vec![0usize; n_tenants];
    let mut output_tokens = vec![0u64; n_tenants];
    let mut latencies: Vec<Histogram> = (0..n_tenants).map(|_| Histogram::new()).collect();

    let mut next = 0usize;
    let mut last_delivery = SimTime::ZERO;
    let first_arrival = compiled
        .requests
        .first()
        .map(|r| r.at)
        .unwrap_or(SimTime::ZERO);

    // Per-request outcomes, aligned with `compiled.requests` by index; each
    // shard's dense request ids map its responses back to stream positions
    // (the flag marks hedged duplicates on the failover path).
    let mut outcomes: Vec<RequestOutcome> = Vec::with_capacity(compiled.requests.len());
    let mut request_index: HashMap<(usize, u64), (usize, bool)> = HashMap::new();

    // Pure closed-loop specs skip the open-loop drive entirely: advancing
    // the gateways through their prewarm events here would fast-forward the
    // clock past the session window before the session driver starts.
    while !compiled.requests.is_empty()
        || injectors.iter().any(FaultInjector::is_active)
        || front.is_some()
    {
        let next_arrival = compiled.requests.get(next).map(|r| r.at);
        let mut internal: Option<SimTime> = None;
        for (i, injector) in injectors.iter().enumerate() {
            let candidate = if fleet.is_live(i) {
                injector.next_event_merged(fleet.shard(i))
            } else {
                // A dead shard makes no progress of its own; only the
                // injector's pending timeline still needs draining.
                injector.next_event_time()
            };
            internal = match (internal, candidate) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, None) => a,
                (None, b) => b,
            };
        }
        let front_next = front.as_ref().and_then(|f| {
            let plan = spec.shard_faults.events().get(f.cursor).map(|e| e.at);
            match (plan, f.next_at()) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, None) => a,
                (None, b) => b,
            }
        });
        let Some(step) = [next_arrival, internal, front_next]
            .into_iter()
            .flatten()
            .min()
        else {
            break;
        };
        if step > horizon {
            break;
        }
        ledger.clock.observe(step);
        for i in 0..n_shards {
            shard_ledgers[i].clock.observe(step);
            injectors[i].apply_due(fleet.shard_mut(i).service_mut(), step);
            if fleet.is_live(i) {
                fleet.shard_mut(i).advance(step);
            }
        }
        if let Some(f) = front.as_mut() {
            // Shard-plan faults due at this step, applied before arrivals so
            // routing at `step` already sees the new membership.
            while let Some(event) = spec.shard_faults.events().get(f.cursor) {
                if event.at > step {
                    break;
                }
                f.cursor += 1;
                match &event.kind {
                    ShardFaultKind::ShardCrash { shard } => {
                        let shard = *shard;
                        if !fleet.kill_shard(shard, step) {
                            continue;
                        }
                        f.ever_crashed[shard] = true;
                        // Everything in flight on the shard dies with it.
                        // Sort the purged keys so HashMap iteration order
                        // never leaks into the retry schedule.
                        let mut lost: Vec<(usize, u64)> = request_index
                            .keys()
                            .filter(|&&(s, _)| s == shard)
                            .copied()
                            .collect();
                        lost.sort_unstable();
                        for key in lost {
                            let (idx, _) = request_index.remove(&key).expect("listed above");
                            f.counters.lost_in_flight += 1;
                            f.outstanding[idx] = f.outstanding[idx].saturating_sub(1);
                            if f.resolved[idx] || f.outstanding[idx] > 0 {
                                continue;
                            }
                            if f.attempts[idx] > f.policy.retry.max_retries {
                                let tenant = compiled.requests[idx].tenant as usize;
                                f.give_up(idx, tenant, &mut ledger, &mut failed);
                            } else {
                                let backoff =
                                    f.policy.retry.backoff(f.attempts[idx].saturating_sub(1));
                                f.push(step + backoff, FrontAction::Retry(idx));
                            }
                        }
                    }
                    ShardFaultKind::ShardRestart { shard } => {
                        let shard = *shard;
                        if shard >= n_shards || fleet.is_live(shard) {
                            continue;
                        }
                        // A fresh replica from the same deployment builder:
                        // cold caches, re-enrolled tenants, clock caught up
                        // to the restart instant.
                        let mut gw = builder.clone().build();
                        let fresh: Vec<TokenString> = spec
                            .tenants
                            .iter()
                            .map(|t| enroll_tenant_user(&mut gw, &t.name))
                            .collect();
                        gw.advance(step);
                        fleet.restore_shard(shard, gw, step);
                        tokens[shard] = fresh;
                    }
                    ShardFaultKind::FrontTierPartition { shard, duration } => {
                        if fleet.partition_shard(*shard, step) {
                            f.counters.partitions += 1;
                            f.push(step + *duration, FrontAction::Heal(*shard));
                        }
                    }
                    ShardFaultKind::FanInLatencySpike { extra, duration } => {
                        f.counters.fanin_spikes += 1;
                        f.spikes.push((step + *duration, *extra));
                    }
                }
            }
            // Front-tier events due now: retries, timeouts, hedges, heals.
            while f.next_at().is_some_and(|at| at <= step) {
                let Some(Reverse((_, _, action))) = f.queue.pop() else {
                    break;
                };
                match action {
                    FrontAction::Retry(idx) => {
                        if !f.resolved[idx] {
                            front_dispatch(
                                &mut fleet,
                                f,
                                &mut ledger,
                                &mut shard_ledgers,
                                &mut request_index,
                                &compiled.requests,
                                spec,
                                &tokens,
                                &mut failed,
                                idx,
                                step,
                                false,
                            );
                        }
                    }
                    FrontAction::Timeout(idx, snap) => {
                        if !f.resolved[idx] && f.attempts[idx] == snap {
                            front_dispatch(
                                &mut fleet,
                                f,
                                &mut ledger,
                                &mut shard_ledgers,
                                &mut request_index,
                                &compiled.requests,
                                spec,
                                &tokens,
                                &mut failed,
                                idx,
                                step,
                                false,
                            );
                        }
                    }
                    FrontAction::Hedge(idx, snap) => {
                        if !f.resolved[idx] && f.attempts[idx] == snap {
                            front_dispatch(
                                &mut fleet,
                                f,
                                &mut ledger,
                                &mut shard_ledgers,
                                &mut request_index,
                                &compiled.requests,
                                spec,
                                &tokens,
                                &mut failed,
                                idx,
                                step,
                                true,
                            );
                        }
                    }
                    FrontAction::Heal(shard) => {
                        fleet.heal_shard(shard, step);
                    }
                }
            }
        }
        while next < compiled.requests.len() && compiled.requests[next].at <= step {
            let request = &compiled.requests[next];
            let tenant = request.tenant as usize;
            if let Some(f) = front.as_mut() {
                let idx = next;
                next += 1;
                offered[tenant] += 1;
                // Degraded-mode routing: home on the live ring (dead and
                // partitioned shards carry no points), shed typed when the
                // federation cannot take the request at all or the shed
                // policy says this priority must yield.
                let Some(cur_home) = fleet.routable_home(&spec.tenants[tenant].name) else {
                    outcomes.push(RequestOutcome {
                        accepted: false,
                        ..RequestOutcome::default()
                    });
                    ledger.on_submission(false);
                    rejected[tenant] += 1;
                    f.resolved[idx] = true;
                    f.counters.shed_no_live_shard += 1;
                    continue;
                };
                if let Some(shed) = f.policy.shed {
                    if request.priority < shed.priority_floor
                        && fleet.shard(cur_home).load_depth() > shed.queue_depth
                    {
                        outcomes.push(RequestOutcome {
                            accepted: false,
                            ..RequestOutcome::default()
                        });
                        ledger.on_submission(false);
                        rejected[tenant] += 1;
                        f.resolved[idx] = true;
                        f.counters.shed_overload += 1;
                        continue;
                    }
                }
                if cur_home != home[tenant] {
                    f.counters.rehomed_requests += 1;
                }
                let sample = ConversationSample {
                    prompt_tokens: request.prompt_tokens,
                    output_tokens: request.output_tokens,
                    prompt_text: String::new(),
                };
                let body = synthetic_chat_request(&request.model, idx, &sample);
                let decision = fleet.route_home(cur_home);
                let shard = decision.shard;
                let arrival = request.at + f.effective_fanin(fanin, request.at);
                let result = fleet.shard_mut(shard).chat_completions(
                    &body,
                    &tokens[shard][tenant],
                    Some(request.output_tokens),
                    arrival,
                );
                let accepted = result.is_ok();
                outcomes.push(RequestOutcome {
                    accepted,
                    ..RequestOutcome::default()
                });
                ledger.on_submission(accepted);
                shard_ledgers[shard].on_submission(accepted);
                match result {
                    Ok(id) => {
                        request_index.insert((shard, id), (idx, false));
                        f.attempts[idx] = 1;
                        f.outstanding[idx] = 1;
                        f.last_shard[idx] = shard;
                        f.unresolved += 1;
                        if let Some(timeout) = f.policy.request_timeout {
                            f.push(arrival + timeout, FrontAction::Timeout(idx, 1));
                        }
                        if let Some(after) = f.policy.hedge_after {
                            f.push(arrival + after, FrontAction::Hedge(idx, 1));
                        }
                    }
                    Err(_) => {
                        rejected[tenant] += 1;
                        f.resolved[idx] = true;
                    }
                }
                continue;
            }
            let sample = ConversationSample {
                prompt_tokens: request.prompt_tokens,
                output_tokens: request.output_tokens,
                prompt_text: String::new(),
            };
            // The global stream index keeps every prompt unique, so the
            // response cache cannot collapse tenants into each other.
            let body = synthetic_chat_request(&request.model, next, &sample);
            let decision = fleet.route_home(home[tenant]);
            let shard = decision.shard;
            let result = fleet.shard_mut(shard).chat_completions(
                &body,
                &tokens[shard][tenant],
                Some(request.output_tokens),
                request.at + fanin,
            );
            let accepted = result.is_ok();
            if let Ok(id) = result {
                request_index.insert((shard, id), (next, false));
            }
            outcomes.push(RequestOutcome {
                accepted,
                ..RequestOutcome::default()
            });
            ledger.on_submission(accepted);
            shard_ledgers[shard].on_submission(accepted);
            offered[tenant] += 1;
            if !accepted {
                rejected[tenant] += 1;
            }
            next += 1;
        }
        collect_responses(
            &mut fleet,
            &mut ledger,
            &mut shard_ledgers,
            &mut last_delivery,
            &mut outcomes,
            &mut request_index,
            front.as_mut(),
            &compiled.requests,
            &tenant_by_user,
            fanin_s,
            &mut latencies,
            &mut output_tokens,
            &mut failed,
        );
        if next >= compiled.requests.len()
            && fleet.is_drained()
            && injectors.iter().all(FaultInjector::is_exhausted)
            && front.as_ref().is_none_or(|f| {
                f.cursor >= spec.shard_faults.len() && f.queue.is_empty() && f.unresolved == 0
            })
        {
            break;
        }
    }
    collect_responses(
        &mut fleet,
        &mut ledger,
        &mut shard_ledgers,
        &mut last_delivery,
        &mut outcomes,
        &mut request_index,
        front.as_mut(),
        &compiled.requests,
        &tenant_by_user,
        fanin_s,
        &mut latencies,
        &mut output_tokens,
        &mut failed,
    );
    let all_submitted = next >= compiled.requests.len();
    ledger.drained =
        all_submitted && fleet.is_drained() && front.as_ref().is_none_or(|f| f.unresolved == 0);
    for (i, shard_ledger) in shard_ledgers.iter_mut().enumerate() {
        // A shard that ever crashed can never report drained: the physical
        // copies it lost mid-flight are gone, not answered.
        shard_ledger.drained = all_submitted
            && fleet.shard(i).is_drained()
            && front.as_ref().is_none_or(|f| !f.ever_crashed[i]);
    }

    // Closed-loop session rider (pure closed-loop specs only; the gateways
    // are untouched at this point, so the session window starts at t=0). On
    // a sharded fleet the rider lands on its ring shard, like any tenant.
    let webui = spec.sessions.as_ref().map(|rider| {
        let shard = fleet.home_shard("webui-sessions");
        let gateway = fleet.shard_mut(shard);
        let token = enroll_tenant_user(gateway, "webui-sessions");
        run_webui_closed_loop(
            gateway,
            &token,
            &rider.config,
            SimDuration::from_millis(rider.webui_overhead_ms),
            seed ^ 0x5E55_10A5,
        )
    });

    #[cfg(debug_assertions)]
    if spec.sessions.is_none() {
        let checked = if let Some(f) = front.as_ref() {
            check_failover_run_invariants(
                fleet.shards(),
                &shard_ledgers,
                &ledger,
                &f.ever_crashed,
                &f.counters,
                fleet.spilled_out(),
                fleet.spilled_in(),
            )
        } else if n_shards == 1 {
            check_run_invariants(fleet.shard(0), &ledger)
        } else {
            check_sharded_run_invariants(
                fleet.shards(),
                &shard_ledgers,
                &ledger,
                fleet.spilled_out(),
                fleet.spilled_in(),
            )
        };
        if let Err(violations) = checked {
            panic!(
                "scenario '{}' violated run invariants:\n  {}",
                spec.name,
                violations.join("\n  ")
            );
        }
    }

    let duration_s = if let Some(cell) = &webui {
        cell.duration_s
    } else {
        (last_delivery.saturating_since(first_arrival))
            .as_secs_f64()
            .max(1e-9)
    };

    let tenants: Vec<TenantReport> = spec
        .tenants
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let completed = latencies[i].count();
            let availability = completed as f64 / offered[i].max(1) as f64;
            let within_target = latencies[i]
                .samples()
                .iter()
                .filter(|&&l| l <= t.slo.p95_latency_s)
                .count();
            let p95 = latencies[i].p95();
            TenantReport {
                tenant: t.name.clone(),
                priority: t.priority,
                offered: offered[i],
                completed,
                failed: failed[i],
                rejected: rejected[i],
                availability,
                median_latency_s: latencies[i].median(),
                p95_latency_s: p95,
                mean_latency_s: latencies[i].mean(),
                output_tokens: output_tokens[i],
                output_tok_per_s: output_tokens[i] as f64 / duration_s,
                slo_p95_target_s: t.slo.p95_latency_s,
                slo_availability_target: t.slo.availability,
                slo_latency_attainment: within_target as f64 / completed.max(1) as f64,
                slo_met: t.slo.met(p95, availability),
            }
        })
        .collect();
    let slo_attained_tenants = tenants.iter().filter(|t| t.slo_met).count();

    // Drain the sampled span trees and derive the phase breakdown before the
    // report is sealed; both are deterministic functions of `(spec, seed,
    // trace, sharding)`, so traced reports stay byte-identical across runs.
    // Trees concatenate in shard order.
    let mut trees: Vec<SpanTree> = Vec::new();
    let mut sampled = 0u64;
    let mut dropped = 0u64;
    for gateway in fleet.shards_mut() {
        trees.extend(gateway.recorder_mut().take_trees());
        sampled += gateway.recorder().sampled();
        dropped += gateway.recorder().dropped();
    }
    let phases = if trees.is_empty() {
        None
    } else {
        Some(PhaseBreakdown::from_trees(trees.iter(), sampled, dropped))
    };

    // Per-shard rollup, only reported for genuinely sharded runs so
    // single-shard reports serialize exactly as before the federation.
    let shard_section = if n_shards > 1 {
        let shards: Vec<ShardReport> = shard_ledgers
            .iter()
            .enumerate()
            .map(|(i, l)| ShardReport {
                shard: i,
                offered: l.offered,
                accepted: l.accepted,
                rejected: l.rejected,
                completed: l.completed,
                failed: l.failed,
                spilled_in: fleet.spilled_in()[i],
                spilled_out: fleet.spilled_out()[i],
                faults_injected: injectors[i].applied().len(),
                peak_load_depth: fleet.peak_load()[i],
            })
            .collect();
        Some(ShardSection {
            count: n_shards,
            fanin_latency_s: fanin_s,
            spillover: sharding.spillover,
            spilled_requests: fleet.spilled_total(),
            shards,
        })
    } else {
        None
    };

    // Failover rollup: the driver's counters plus what the fleet itself
    // tracked (crashes, restarts, per-shard breaker trips).
    let failover = front.as_ref().map(|f| {
        let mut section = f.counters.clone();
        section.crashes = fleet.crashes();
        section.restarts = fleet.restarts();
        section.breaker_trips = fleet.health().trips();
        section
    });

    let (retries, failovers, breaker_trips, hedges) = fleet
        .shards()
        .iter()
        .map(Gateway::metrics)
        .fold((0, 0, 0, 0), |acc, m| {
            (
                acc.0 + m.retries,
                acc.1 + m.failovers,
                acc.2 + m.breaker_trips,
                acc.3 + m.hedges,
            )
        });
    let completed_total = ledger.completed + webui.as_ref().map_or(0, |c| c.completed);
    let report = GatewayReport {
        scenario: spec.name.clone(),
        seed,
        offered: ledger.offered + webui.as_ref().map_or(0, |c| c.completed),
        accepted: ledger.accepted + webui.as_ref().map_or(0, |c| c.completed),
        rejected: ledger.rejected,
        completed: completed_total,
        failed: ledger.failed,
        duration_s,
        request_throughput: completed_total as f64 / duration_s,
        output_token_throughput: (output_tokens.iter().sum::<u64>() as f64
            + webui
                .as_ref()
                .map_or(0.0, |c| c.token_throughput * c.duration_s))
            / duration_s,
        faults_injected: injectors[0].applied().len(),
        retries,
        failovers,
        breaker_trips,
        hedges,
        tenants,
        slo_attained_tenants,
        webui,
        phases,
        shards: shard_section,
        failover,
    };
    (report, outcomes, trees)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::{ConsistentHashRing, ShedPolicy};
    use first_workload::{
        scenario::models, ArrivalProcess, DeploymentRef, ScenarioSpec, SloTarget, TenantClass,
    };

    fn small_spec() -> ScenarioSpec {
        ScenarioSpec::new(
            "unit-steady",
            "unit-test steady load",
            DeploymentRef::SingleClusterTest,
            vec![TenantClass::synthetic(
                "unit-tenant",
                25,
                ArrivalProcess::Poisson(2.0),
                models::LLAMA_70B,
            )],
        )
    }

    fn run(spec: &ScenarioSpec, seed: u64) -> GatewayReport {
        ScenarioRun::new(spec)
            .seed(seed)
            .execute()
            .expect("plain run")
            .report
    }

    #[test]
    fn steady_scenario_completes_everything_and_partitions_by_tenant() {
        let report = run(&small_spec(), 42);
        assert_eq!(report.offered, 25);
        assert_eq!(report.accepted, 25);
        assert_eq!(report.completed, 25);
        assert_eq!(report.failed, 0);
        assert_eq!(report.tenants.len(), 1);
        assert!(
            report.shards.is_none(),
            "single-shard runs report no shard section"
        );
        let t = report.tenant("unit-tenant").unwrap();
        assert_eq!(t.completed, 25);
        assert!((t.availability - 1.0).abs() < 1e-9);
        assert!(t.p95_latency_s > 0.0);
        assert!(t.output_tokens > 0);
        let text = report.render_text();
        assert!(text.contains("unit-tenant"));
        assert!(text.contains("unit-steady"));
    }

    #[test]
    fn reports_are_seed_deterministic_and_seed_sensitive() {
        let spec = small_spec();
        let a = run(&spec, 7);
        let b = run(&spec, 7);
        assert_eq!(a, b);
        let c = run(&spec, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn explicit_single_shard_config_is_byte_identical_to_default() {
        let spec = small_spec();
        let plain = run(&spec, 42);
        let explicit = ScenarioRun::new(&spec)
            .seed(42)
            .shards(1)
            .spillover(SpilloverPolicy::disabled())
            .fanin_latency(SimDuration::ZERO)
            .execute()
            .expect("plain run")
            .report;
        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&explicit).unwrap()
        );
    }

    #[test]
    fn sharded_runs_conserve_requests_and_report_per_shard_partitions() {
        let spec = ScenarioSpec::new(
            "unit-sharded",
            "",
            DeploymentRef::SingleClusterTest,
            vec![
                TenantClass::synthetic(
                    "tenant-a",
                    20,
                    ArrivalProcess::Poisson(2.0),
                    models::LLAMA_70B,
                ),
                TenantClass::synthetic(
                    "tenant-b",
                    20,
                    ArrivalProcess::Poisson(2.0),
                    models::LLAMA_8B,
                ),
                TenantClass::synthetic(
                    "tenant-c",
                    20,
                    ArrivalProcess::Poisson(2.0),
                    models::LLAMA_8B,
                ),
            ],
        );
        let report = ScenarioRun::new(&spec)
            .seed(42)
            .shards(3)
            .execute()
            .expect("sharded run")
            .report;
        assert_eq!(report.offered, 60);
        assert_eq!(report.completed + report.failed + report.rejected, 60);
        let section = report.shards.as_ref().expect("shard section present");
        assert_eq!(section.count, 3);
        assert_eq!(section.shards.len(), 3);
        assert_eq!(
            section.shards.iter().map(|s| s.offered).sum::<usize>(),
            report.offered
        );
        assert_eq!(
            section.shards.iter().map(|s| s.completed).sum::<usize>(),
            report.completed
        );
        assert_eq!(section.spilled_requests, 0, "spillover defaults off");
        // Sharded runs are deterministic too.
        let again = ScenarioRun::new(&spec)
            .seed(42)
            .shards(3)
            .execute()
            .expect("sharded run")
            .report;
        assert_eq!(report, again);
        let text = report.render_text();
        assert!(text.contains("sharded federation: 3 shards"));
    }

    #[test]
    fn fanin_latency_defers_arrivals_and_shows_in_client_latency() {
        let spec = small_spec();
        let base = run(&spec, 42);
        let hop = SimDuration::from_millis(250);
        let delayed = ScenarioRun::new(&spec)
            .seed(42)
            .fanin_latency(hop)
            .execute()
            .expect("run")
            .report;
        assert_eq!(delayed.offered, base.offered);
        assert_eq!(delayed.completed, base.completed);
        let t_base = base.tenant("unit-tenant").unwrap();
        let t_hop = delayed.tenant("unit-tenant").unwrap();
        assert!(
            t_hop.mean_latency_s >= t_base.mean_latency_s + 0.2,
            "fan-in hop shows up in client-observed latency: {} vs {}",
            t_hop.mean_latency_s,
            t_base.mean_latency_s
        );
    }

    #[test]
    fn multi_tenant_runs_keep_per_tenant_slo_accounting() {
        let spec = ScenarioSpec::new(
            "unit-two-tenants",
            "",
            DeploymentRef::SingleClusterTest,
            vec![
                TenantClass::synthetic(
                    "interactive",
                    15,
                    ArrivalProcess::Poisson(1.0),
                    models::LLAMA_70B,
                )
                .with_priority(200)
                .with_slo(SloTarget {
                    p95_latency_s: 300.0,
                    availability: 0.9,
                }),
                TenantClass::synthetic("flood", 20, ArrivalProcess::Infinite, models::LLAMA_8B)
                    .with_priority(10)
                    .with_slo(SloTarget::batch()),
            ],
        );
        let report = run(&spec, 42);
        assert_eq!(report.offered, 35);
        assert_eq!(report.completed, 35);
        let interactive = report.tenant("interactive").unwrap();
        let flood = report.tenant("flood").unwrap();
        assert_eq!(interactive.offered, 15);
        assert_eq!(flood.offered, 20);
        assert!(interactive.slo_met, "generous SLO is met");
        assert_eq!(
            report.slo_attained_tenants,
            report.tenants.iter().filter(|t| t.slo_met).count()
        );
    }

    #[test]
    fn traced_runs_sample_complete_trees_without_perturbing_the_sim() {
        let spec = small_spec();
        let plain = run(&spec, 42);
        let out = ScenarioRun::new(&spec)
            .seed(42)
            .traced(TraceConfig::every_request(4096))
            .execute()
            .expect("traced run");
        let traced = out.report;
        let trees = out.traces.expect("traced run returns trees");
        // Tracing must not move sim time: everything but the breakdown is
        // identical to the untraced run.
        let mut stripped = traced.clone();
        stripped.phases = None;
        assert_eq!(plain, stripped, "tracing perturbed the simulation");
        // Every accepted request yielded a well-formed tree that reconciles
        // with its end-to-end latency (clean run: no idle time at all).
        assert_eq!(trees.len(), traced.accepted);
        for tree in &trees {
            assert!(tree.well_formed(), "malformed tree: {tree:?}");
            assert_eq!(
                tree.phase_total_micros() + tree.idle_micros(),
                tree.end_to_end_micros()
            );
            assert_eq!(tree.idle_micros(), 0, "clean run has no idle gaps");
        }
        let phases = traced.phases.as_ref().expect("breakdown present");
        assert_eq!(phases.sampled, trees.len() as u64);
        assert_eq!(phases.by_tenant.len(), 1);
        assert!(!phases.critical_path.is_empty());
        // Traced runs are themselves deterministic, trees included.
        let again = ScenarioRun::new(&spec)
            .seed(42)
            .traced(TraceConfig::every_request(4096))
            .execute()
            .expect("traced run");
        assert_eq!(traced, again.report);
        assert_eq!(trees, again.traces.expect("trees again"));
    }

    #[test]
    fn recording_matches_the_plain_run_and_replays_byte_identically() {
        let spec = small_spec();
        let plain = run(&spec, 42);
        let out = ScenarioRun::new(&spec)
            .seed(42)
            .recorded()
            .execute()
            .expect("recordable");
        let recorded = out.report;
        let cassette = out.cassette.expect("recorded run yields a cassette");
        assert!(out.traces.is_none(), "untraced run returns no trees");
        assert_eq!(plain, recorded, "recording must not perturb the run");
        assert_eq!(cassette.len(), recorded.offered);
        // Every accepted request in this clean run was delivered and succeeded.
        assert!(cassette
            .entries
            .iter()
            .all(|e| e.outcome.accepted && e.outcome.delivered && e.outcome.success));
        assert!(cassette
            .entries
            .iter()
            .all(|e| e.outcome.latency_s > 0.0 && e.outcome.completion_tokens > 0));

        let replayed = ScenarioRun::replay(&cassette)
            .expect("cassette compiles")
            .execute()
            .expect("replays")
            .report;
        assert_eq!(plain, replayed, "replay reproduces the report");
        // Byte-level, not just structural: what the golden files pin.
        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&replayed).unwrap()
        );
        // And the cassette survives a serde round trip on the way.
        let thawed = first_workload::Cassette::from_json(&cassette.to_json()).expect("round trips");
        let replayed_again = ScenarioRun::replay(&thawed)
            .expect("compiles")
            .execute()
            .expect("replays")
            .report;
        assert_eq!(replayed_again, plain);
    }

    #[test]
    fn empty_cassette_replays_to_a_clean_empty_report() {
        let spec = ScenarioSpec::new(
            "unit-empty",
            "no tenants at all",
            DeploymentRef::SingleClusterTest,
            Vec::new(),
        );
        let out = ScenarioRun::new(&spec)
            .seed(1)
            .recorded()
            .execute()
            .expect("recordable");
        let cassette = out.cassette.expect("cassette");
        assert!(cassette.is_empty());
        assert_eq!(out.report.offered, 0);
        let replayed = ScenarioRun::replay(&cassette)
            .expect("compiles")
            .execute()
            .expect("empty replay is clean")
            .report;
        assert_eq!(out.report, replayed);
        assert_eq!(replayed.completed, 0);
    }

    #[test]
    fn session_and_sharded_specs_are_unrecordable_with_typed_errors() {
        let mut spec = ScenarioSpec::new(
            "unit-sessions",
            "",
            DeploymentRef::SingleClusterTest,
            Vec::new(),
        );
        spec.sessions = Some(first_workload::SessionClosedLoop {
            config: first_workload::SessionWorkloadConfig::table1(models::LLAMA_8B, 4, 60),
            webui_overhead_ms: 1200,
        });
        match ScenarioRun::new(&spec).seed(1).recorded().execute() {
            Err(CassetteError::Unrecordable(msg)) => assert!(msg.contains("unit-sessions")),
            other => panic!("expected Unrecordable, got {other:?}"),
        }
        // Sharded runs are unrecordable too: the cassette format carries no
        // shard topology.
        match ScenarioRun::new(&small_spec())
            .seed(1)
            .shards(2)
            .recorded()
            .execute()
        {
            Err(CassetteError::Unrecordable(msg)) => assert!(msg.contains("sharded")),
            other => panic!("expected Unrecordable, got {other:?}"),
        }
    }

    #[test]
    fn replay_invariants_catch_divergence() {
        let out = ScenarioRun::new(&small_spec())
            .seed(42)
            .recorded()
            .execute()
            .expect("recordable");
        let cassette = out.cassette.expect("cassette");
        let replayed = ScenarioRun::replay(&cassette)
            .expect("compiles")
            .execute()
            .expect("replays")
            .report;
        assert_eq!(replayed.seed, cassette.seed, "replay reuses the seed");
        // Forge a diverging report: the conservation check must trip on the
        // offered count and on a renamed tenant partition.
        let mut forged = replayed.clone();
        forged.offered += 1;
        forged.tenants[0].tenant = "impostor".to_string();
        let violations = check_replay_invariants(&forged, &cassette).unwrap_err();
        assert!(
            violations.iter().any(|v| v.contains("offered")),
            "{violations:?}"
        );
        assert!(
            violations.iter().any(|v| v.contains("impostor")),
            "{violations:?}"
        );
    }

    /// The deprecated free functions must stay thin, faithful delegations
    /// until they are removed.
    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_still_delegate_faithfully() {
        let spec = small_spec();
        let via_builder = run(&spec, 42);
        assert_eq!(run_scenario(&spec, 42), via_builder);
        let (traced, trees) = run_scenario_traced(&spec, 42, TraceConfig::default());
        assert_eq!(traced, via_builder);
        assert!(trees.is_empty(), "disabled tracing yields no trees");
        let (recorded, cassette) = run_scenario_recorded(&spec, 42).expect("records");
        assert_eq!(recorded, via_builder);
        assert_eq!(replay_cassette(&cassette).expect("replays"), via_builder);
    }

    /// Three tenants across four shards, enough load that a mid-run crash
    /// catches requests in flight.
    fn failover_spec() -> ScenarioSpec {
        ScenarioSpec::new(
            "unit-failover",
            "shard faults under load",
            DeploymentRef::SingleClusterTest,
            vec![
                TenantClass::synthetic(
                    "tenant-a",
                    20,
                    ArrivalProcess::Poisson(2.0),
                    models::LLAMA_70B,
                ),
                TenantClass::synthetic(
                    "tenant-b",
                    20,
                    ArrivalProcess::Poisson(2.0),
                    models::LLAMA_8B,
                ),
                TenantClass::synthetic(
                    "tenant-c",
                    20,
                    ArrivalProcess::Poisson(2.0),
                    models::LLAMA_8B,
                ),
            ],
        )
    }

    /// Pick a shard that actually hosts one of the spec's tenants, so a kill
    /// is guaranteed to disturb live traffic.
    fn home_of(spec: &ScenarioSpec, shards: usize, tenant: usize) -> usize {
        ConsistentHashRing::new(shards).shard_for(&spec.tenants[tenant].name)
    }

    #[test]
    fn shard_crash_with_restart_loses_no_accepted_requests() {
        let mut spec = failover_spec();
        let victim = home_of(&spec, 4, 0);
        spec.shard_faults = first_chaos::ShardFaultPlan::kill_and_restart(
            victim,
            SimTime::from_secs(4),
            SimDuration::from_secs(30),
        );
        let report = ScenarioRun::new(&spec)
            .seed(42)
            .shards(4)
            .execute()
            .expect("failover run")
            .report;
        assert_eq!(report.offered, 60);
        assert_eq!(report.failed, 0, "front tier retried every lost request");
        assert_eq!(report.rejected, 0, "no shedding configured");
        assert_eq!(report.completed, 60, "zero accepted requests lost");
        let failover = report.failover.as_ref().expect("failover section");
        assert_eq!(failover.crashes, 1);
        assert_eq!(failover.restarts, 1);
        assert!(
            failover.lost_in_flight > 0,
            "a 30s outage on a tenant's home shard catches requests in flight: {failover:?}"
        );
        assert_eq!(
            failover.retried_to_completion, failover.lost_in_flight,
            "every lost copy was re-dispatched and completed elsewhere"
        );
        assert!(
            failover.rehomed_requests > 0,
            "arrivals during the outage re-home to surviving peers"
        );
        assert_eq!(failover.shed_retries_exhausted, 0);
        let text = report.render_text();
        assert!(text.contains("failover:"), "{text}");
        // Failover runs are byte-deterministic like everything else.
        let again = ScenarioRun::new(&spec)
            .seed(42)
            .shards(4)
            .execute()
            .expect("failover run")
            .report;
        assert_eq!(
            serde_json::to_string(&report).unwrap(),
            serde_json::to_string(&again).unwrap()
        );
    }

    #[test]
    fn fault_free_front_tier_matches_transparent_sharded_run() {
        let spec = failover_spec();
        let plain = ScenarioRun::new(&spec)
            .seed(42)
            .shards(3)
            .execute()
            .expect("plain sharded run")
            .report;
        // A timeout far beyond any real completion never fires, so the
        // failover driver must reproduce the transparent path exactly.
        let policy = FrontTierPolicy {
            request_timeout: Some(SimDuration::from_secs(3600)),
            ..FrontTierPolicy::default()
        };
        let fronted = ScenarioRun::new(&spec)
            .seed(42)
            .shards(3)
            .front_tier(policy)
            .execute()
            .expect("fronted run")
            .report;
        let failover = fronted.failover.clone().expect("failover section");
        assert_eq!(
            failover,
            FailoverSection::default(),
            "no faults, no retries, nothing shed"
        );
        let mut stripped = fronted;
        stripped.failover = None;
        assert_eq!(
            plain, stripped,
            "fault-free failover driver must not perturb the run"
        );
    }

    #[test]
    fn shed_policy_rejects_low_priority_overload_with_typed_outcome() {
        let spec = failover_spec();
        // Every tenant sits below the floor and any queued work counts as
        // overload: most of the burst sheds instead of queueing.
        let policy = FrontTierPolicy {
            shed: Some(ShedPolicy::new(0, 200)),
            ..FrontTierPolicy::default()
        };
        let report = ScenarioRun::new(&spec)
            .seed(42)
            .shards(2)
            .front_tier(policy)
            .execute()
            .expect("shedding run")
            .report;
        let failover = report.failover.as_ref().expect("failover section");
        assert!(failover.shed_overload > 0, "overload shed engaged");
        assert_eq!(
            report.rejected, failover.shed_overload,
            "typed sheds are the only rejections"
        );
        assert_eq!(report.failed, 0);
        assert_eq!(
            report.offered,
            report.completed + report.rejected,
            "every request resolves exactly once"
        );
    }

    #[test]
    fn hedged_requests_complete_without_double_counting() {
        let spec = failover_spec();
        let policy = FrontTierPolicy {
            hedge_after: Some(SimDuration::from_millis(1)),
            ..FrontTierPolicy::default()
        };
        let report = ScenarioRun::new(&spec)
            .seed(42)
            .shards(2)
            .front_tier(policy)
            .execute()
            .expect("hedged run")
            .report;
        assert_eq!(report.offered, 60);
        assert_eq!(report.completed, 60);
        assert_eq!(report.failed, 0);
        let failover = report.failover.as_ref().expect("failover section");
        assert!(failover.hedges_dispatched > 0, "1ms hedge delay fires");
        assert_eq!(
            failover.stale_responses + failover.hedge_wins,
            failover.hedges_dispatched,
            "every hedge copy either won or arrived stale"
        );
    }

    #[test]
    fn partitioned_shard_times_out_and_heals_without_losing_requests() {
        let mut spec = failover_spec();
        let victim = home_of(&spec, 4, 0);
        spec.shard_faults = first_chaos::ShardFaultPlan::partition(
            victim,
            SimTime::from_secs(3),
            SimDuration::from_secs(20),
        );
        let policy = FrontTierPolicy {
            request_timeout: Some(SimDuration::from_secs(5)),
            ..FrontTierPolicy::default()
        };
        let report = ScenarioRun::new(&spec)
            .seed(42)
            .shards(4)
            .front_tier(policy)
            .execute()
            .expect("partitioned run")
            .report;
        assert_eq!(report.offered, 60);
        assert_eq!(report.failed, 0);
        assert_eq!(report.completed, 60);
        let failover = report.failover.as_ref().expect("failover section");
        assert_eq!(failover.partitions, 1);
        assert_eq!(failover.crashes, 0, "a partition is not a crash");
        assert!(
            failover.rehomed_requests > 0,
            "arrivals during the partition route around the unreachable shard"
        );
    }

    #[test]
    fn expired_fanin_spikes_are_pruned_not_accumulated() {
        let mut f = FrontState::new(FrontTierPolicy::default(), 1, 1);
        for i in 0..1_000u64 {
            f.spikes
                .push((SimTime::from_secs(i + 1), SimDuration::from_millis(i)));
        }
        // Once every spike has lapsed, a single query drops the whole
        // backlog instead of rescanning it on every later request.
        let base = SimDuration::from_millis(5);
        assert_eq!(f.effective_fanin(base, SimTime::from_secs(2_000)), base);
        assert!(f.spikes.is_empty(), "lapsed spikes must not accumulate");
        // Active spikes survive the prune and the largest extra still wins.
        f.spikes
            .push((SimTime::from_secs(3_000), SimDuration::from_millis(40)));
        f.spikes
            .push((SimTime::from_secs(3_000), SimDuration::from_millis(70)));
        f.spikes
            .push((SimTime::from_secs(2_100), SimDuration::from_millis(90)));
        assert_eq!(
            f.effective_fanin(base, SimTime::from_secs(2_500)),
            base + SimDuration::from_millis(70)
        );
        assert_eq!(f.spikes.len(), 2, "only the lapsed spike is dropped");
    }

    #[test]
    fn fanin_spike_fault_inflates_latency_for_its_duration() {
        let mut spec = failover_spec();
        spec.shard_faults = first_chaos::ShardFaultPlan::none().with(
            SimTime::from_secs(2),
            first_chaos::ShardFaultKind::FanInLatencySpike {
                extra: SimDuration::from_secs(2),
                duration: SimDuration::from_secs(10),
            },
        );
        let report = ScenarioRun::new(&spec)
            .seed(42)
            .shards(2)
            .execute()
            .expect("spiked run")
            .report;
        assert_eq!(report.completed, 60);
        let failover = report.failover.as_ref().expect("failover section");
        assert_eq!(failover.fanin_spikes, 1);
        // The same run without the spike is strictly faster on average.
        let calm_spec = failover_spec();
        let calm = ScenarioRun::new(&calm_spec)
            .seed(42)
            .shards(2)
            .front_tier(FrontTierPolicy {
                request_timeout: Some(SimDuration::from_secs(3600)),
                ..FrontTierPolicy::default()
            })
            .execute()
            .expect("calm run")
            .report;
        let mean = |r: &GatewayReport| {
            r.tenants.iter().map(|t| t.mean_latency_s).sum::<f64>() / r.tenants.len() as f64
        };
        assert!(
            mean(&report) > mean(&calm) + 0.1,
            "spike shows in client latency: {} vs {}",
            mean(&report),
            mean(&calm)
        );
    }

    /// The shard rollup structures are part of the serialized report format
    /// the goldens pin: a JSON round trip must be lossless field-for-field.
    #[test]
    fn shard_report_and_section_round_trip_through_serde() {
        let report = crate::shard::ShardReport {
            shard: 2,
            offered: 41,
            accepted: 40,
            rejected: 1,
            completed: 38,
            failed: 2,
            spilled_in: 3,
            spilled_out: 5,
            faults_injected: 4,
            peak_load_depth: 17,
        };
        let json = serde_json::to_string(&report).unwrap();
        let thawed: crate::shard::ShardReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, thawed);

        let section = ShardSection {
            count: 3,
            fanin_latency_s: 0.25,
            spillover: SpilloverPolicy::bounded(10, 0.5),
            spilled_requests: 8,
            shards: vec![report.clone(), ShardReport::default()],
        };
        let json = serde_json::to_string_pretty(&section).unwrap();
        let thawed: ShardSection = serde_json::from_str(&json).unwrap();
        assert_eq!(section, thawed);

        let failover = FailoverSection {
            crashes: 1,
            restarts: 1,
            lost_in_flight: 16,
            retries_dispatched: 16,
            retried_to_completion: 16,
            breaker_trips: 1,
            ..FailoverSection::default()
        };
        let json = serde_json::to_string(&failover).unwrap();
        let thawed: FailoverSection = serde_json::from_str(&json).unwrap();
        assert_eq!(failover, thawed);
    }

    #[test]
    fn shard_fault_specs_are_unrecordable_with_typed_errors() {
        let mut spec = failover_spec();
        spec.shard_faults = first_chaos::ShardFaultPlan::kill(0, SimTime::from_secs(1));
        match ScenarioRun::new(&spec)
            .seed(1)
            .shards(4)
            .recorded()
            .execute()
        {
            Err(CassetteError::Unrecordable(msg)) => {
                assert!(msg.contains("federation-tier faults"), "{msg}")
            }
            other => panic!("expected Unrecordable, got {other:?}"),
        }
    }
}
