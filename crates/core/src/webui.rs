//! Web interface for interactive chat (§4.7).
//!
//! The production WebUI is an Open WebUI frontend backed by FastAPI/Uvicorn
//! behind Nginx, with PostgreSQL persisting sessions and request metadata.
//! Users pick among the currently running models, keep chat histories, and
//! compare responses from different LLMs side by side; every request is
//! forwarded to the Gateway API with the user's access token. This module
//! implements that session/history layer (the load behaviour for Table 1 is
//! driven by [`crate::sim::run_webui_closed_loop`]).

use first_desim::{SimDuration, SimTime};
use first_workload::ChatMessage;
use serde::{Deserialize, Serialize};

/// Per-message WebUI backend overhead (session lookup, history persistence,
/// markdown/LaTeX re-rendering) added on top of the gateway path.
pub const DEFAULT_WEBUI_OVERHEAD: SimDuration = SimDuration(1_200_000);

/// One message stored in a chat history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredMessage {
    /// The message.
    pub message: ChatMessage,
    /// Model that produced it (empty for user messages).
    pub model: String,
    /// When it was stored.
    pub at: SimTime,
}

/// A persistent chat session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChatSession {
    /// Session identifier.
    pub id: u64,
    /// Owning user.
    pub user: String,
    /// Session title (first user message, truncated).
    pub title: String,
    /// Models selected for this session (more than one enables the
    /// multi-column comparison view).
    pub models: Vec<String>,
    /// Message history.
    pub history: Vec<StoredMessage>,
    /// Creation time.
    pub created_at: SimTime,
}

impl ChatSession {
    /// Number of user turns in the session.
    pub fn user_turns(&self) -> usize {
        self.history
            .iter()
            .filter(|m| m.message.role == "user")
            .count()
    }
}

/// The WebUI session store (PostgreSQL substitute).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WebUiStore {
    sessions: Vec<ChatSession>,
    next_id: u64,
}

impl WebUiStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a session for `user` targeting one or more models.
    pub fn create_session(&mut self, user: &str, models: Vec<String>, now: SimTime) -> u64 {
        self.next_id += 1;
        let id = self.next_id;
        self.sessions.push(ChatSession {
            id,
            user: user.to_string(),
            title: String::new(),
            models,
            history: Vec::new(),
            created_at: now,
        });
        id
    }

    /// Append a user message to a session.
    pub fn add_user_message(&mut self, session: u64, content: &str, now: SimTime) -> bool {
        let Some(s) = self.sessions.iter_mut().find(|s| s.id == session) else {
            return false;
        };
        if s.title.is_empty() {
            s.title = content.chars().take(48).collect();
        }
        s.history.push(StoredMessage {
            message: ChatMessage::user(content),
            model: String::new(),
            at: now,
        });
        true
    }

    /// Append an assistant response from a specific model.
    pub fn add_assistant_message(
        &mut self,
        session: u64,
        model: &str,
        content: &str,
        now: SimTime,
    ) -> bool {
        let Some(s) = self.sessions.iter_mut().find(|s| s.id == session) else {
            return false;
        };
        s.history.push(StoredMessage {
            message: ChatMessage::assistant(content),
            model: model.to_string(),
            at: now,
        });
        true
    }

    /// Sessions belonging to a user, newest first.
    pub fn sessions_for(&self, user: &str) -> Vec<&ChatSession> {
        let mut out: Vec<&ChatSession> = self.sessions.iter().filter(|s| s.user == user).collect();
        out.sort_by_key(|s| std::cmp::Reverse(s.created_at));
        out
    }

    /// Look up one session.
    pub fn session(&self, id: u64) -> Option<&ChatSession> {
        self.sessions.iter().find(|s| s.id == id)
    }

    /// Total stored sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sessions_keep_history_and_titles() {
        let mut store = WebUiStore::new();
        let id = store.create_session("alice", vec!["llama-70b".into()], SimTime::ZERO);
        assert!(store.add_user_message(id, "what queues exist on sophia?", SimTime::from_secs(1)));
        assert!(store.add_assistant_message(
            id,
            "llama-70b",
            "the by-gpu and by-node queues",
            SimTime::from_secs(8),
        ));
        let s = store.session(id).unwrap();
        assert_eq!(s.user_turns(), 1);
        assert_eq!(s.history.len(), 2);
        assert!(s.title.starts_with("what queues"));
    }

    #[test]
    fn multi_model_comparison_sessions_store_both_responses() {
        let mut store = WebUiStore::new();
        let id = store.create_session(
            "alice",
            vec!["llama-70b".into(), "qwen-32b".into()],
            SimTime::ZERO,
        );
        store.add_user_message(id, "compare yourselves", SimTime::from_secs(1));
        store.add_assistant_message(id, "llama-70b", "answer A", SimTime::from_secs(5));
        store.add_assistant_message(id, "qwen-32b", "answer B", SimTime::from_secs(6));
        let s = store.session(id).unwrap();
        assert_eq!(s.models.len(), 2);
        let models: Vec<&str> = s
            .history
            .iter()
            .filter(|m| m.message.role == "assistant")
            .map(|m| m.model.as_str())
            .collect();
        assert_eq!(models, vec!["llama-70b", "qwen-32b"]);
    }

    #[test]
    fn sessions_listed_per_user_newest_first() {
        let mut store = WebUiStore::new();
        store.create_session("alice", vec!["m".into()], SimTime::from_secs(1));
        let newer = store.create_session("alice", vec!["m".into()], SimTime::from_secs(5));
        store.create_session("bob", vec!["m".into()], SimTime::from_secs(2));
        let alice = store.sessions_for("alice");
        assert_eq!(alice.len(), 2);
        assert_eq!(alice[0].id, newer);
        assert_eq!(store.sessions_for("carol").len(), 0);
    }

    #[test]
    fn unknown_session_operations_fail_gracefully() {
        let mut store = WebUiStore::new();
        assert!(!store.add_user_message(99, "hello", SimTime::ZERO));
        assert!(!store.add_assistant_message(99, "m", "hi", SimTime::ZERO));
        assert!(store.session(99).is_none());
    }
}
