//! Post-run invariant checking for simulation drivers.
//!
//! Every scenario runner moves requests through the same lifecycle:
//! offered → accepted (or rejected at the API boundary) → completed or
//! failed. A [`RunLedger`] records what the driver observed on the way;
//! [`check_run_invariants`] then cross-checks the ledger against the
//! gateway's internal queues and asserts the three properties every correct
//! run must satisfy:
//!
//! 1. **Request conservation** — `offered == accepted + rejected`, and once
//!    the run drains, `accepted == completed + failed`: no request may
//!    vanish or be answered twice.
//! 2. **Monotone simulation clock** — the driver never advanced the gateway
//!    backwards.
//! 3. **No leaked tasks** — a drained gateway holds nothing in its pending,
//!    in-flight, awaiting-delivery or outstanding-copy slabs.
//!
//! [`crate::ScenarioRun`] runs the check automatically in debug builds
//! (`#[cfg(debug_assertions)]`), which covers every `cargo test` run;
//! integration tests call it directly on their own drivers. Sharded runs go
//! through [`check_sharded_run_invariants`], which applies the same checks
//! per shard and additionally reconciles cross-shard totals and spill flow.

use crate::gateway::Gateway;
use crate::scenario::{FailoverSection, GatewayReport};
use first_desim::SimTime;
use first_workload::Cassette;

/// Watches a driver's advance instants for monotonicity.
#[derive(Debug, Clone, Default)]
pub struct ClockMonitor {
    last: SimTime,
    violations: u64,
}

impl ClockMonitor {
    /// A monitor starting at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one advance instant; returns `false` (and counts a violation)
    /// when the clock moved backwards.
    pub fn observe(&mut self, now: SimTime) -> bool {
        if now < self.last {
            self.violations += 1;
            false
        } else {
            self.last = now;
            true
        }
    }

    /// Latest instant observed.
    pub fn last(&self) -> SimTime {
        self.last
    }

    /// Number of backwards steps observed.
    pub fn violations(&self) -> u64 {
        self.violations
    }
}

/// What one driver observed over a run: the request-lifecycle counts and the
/// clock trace the invariant checker validates.
#[derive(Debug, Clone, Default)]
pub struct RunLedger {
    /// Requests the driver tried to submit.
    pub offered: usize,
    /// Requests the gateway accepted.
    pub accepted: usize,
    /// Requests rejected at the API boundary (auth, rate limit, validation,
    /// no route).
    pub rejected: usize,
    /// Successful responses collected.
    pub completed: usize,
    /// Failed responses collected.
    pub failed: usize,
    /// The driver's clock trace.
    pub clock: ClockMonitor,
    /// Whether the run ended with the gateway drained (as opposed to being
    /// cut off by the horizon with work still in flight).
    pub drained: bool,
}

impl RunLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one submission attempt.
    pub fn on_submission(&mut self, accepted: bool) {
        self.offered += 1;
        if accepted {
            self.accepted += 1;
        } else {
            self.rejected += 1;
        }
    }

    /// Record one collected response.
    pub fn on_response(&mut self, success: bool) {
        if success {
            self.completed += 1;
        } else {
            self.failed += 1;
        }
    }
}

/// Cross-check a finished run's ledger against the gateway's internal state.
/// Returns every violated invariant (empty = all hold).
pub fn check_run_invariants(gateway: &Gateway, ledger: &RunLedger) -> Result<(), Vec<String>> {
    let mut violations = Vec::new();

    if ledger.clock.violations() > 0 {
        violations.push(format!(
            "sim clock moved backwards {} time(s)",
            ledger.clock.violations()
        ));
    }
    if ledger.offered != ledger.accepted + ledger.rejected {
        violations.push(format!(
            "offered {} != accepted {} + rejected {}",
            ledger.offered, ledger.accepted, ledger.rejected
        ));
    }
    if ledger.completed + ledger.failed > ledger.accepted {
        violations.push(format!(
            "more responses ({} completed + {} failed) than accepted requests ({})",
            ledger.completed, ledger.failed, ledger.accepted
        ));
    }
    if ledger.drained {
        if ledger.completed + ledger.failed != ledger.accepted {
            violations.push(format!(
                "drained run lost requests: accepted {} != completed {} + failed {}",
                ledger.accepted, ledger.completed, ledger.failed
            ));
        }
        if !gateway.is_drained() {
            violations.push("ledger says drained but the gateway disagrees".to_string());
        }
        let queues = gateway.queue_snapshot();
        if queues.pending_dispatches != 0
            || queues.in_flight_tasks != 0
            || queues.awaiting_delivery != 0
        {
            violations.push(format!("drained gateway leaks tasks: {queues:?}"));
        }
        if queues.outstanding_copies != 0 {
            violations.push(format!(
                "drained gateway leaks {} outstanding copies",
                queues.outstanding_copies
            ));
        }
    }

    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

/// Sharded-run conservation: every per-shard ledger must satisfy the
/// single-gateway invariants against its own shard, and the cross-shard
/// accounting must reconcile — whole-run totals equal the sums over shards
/// (requests may cross shards but never leave the fleet), and every spill
/// leaving one shard arrives at another. Returns every violated invariant
/// (empty = all hold).
pub fn check_sharded_run_invariants(
    shards: &[Gateway],
    shard_ledgers: &[RunLedger],
    total: &RunLedger,
    spilled_out: &[usize],
    spilled_in: &[usize],
) -> Result<(), Vec<String>> {
    let mut violations = Vec::new();

    if shards.len() != shard_ledgers.len() {
        violations.push(format!(
            "{} shards but {} shard ledgers",
            shards.len(),
            shard_ledgers.len()
        ));
        return Err(violations);
    }
    for (i, (gateway, ledger)) in shards.iter().zip(shard_ledgers).enumerate() {
        if let Err(shard_violations) = check_run_invariants(gateway, ledger) {
            for v in shard_violations {
                violations.push(format!("shard {i}: {v}"));
            }
        }
    }
    let sum = |f: fn(&RunLedger) -> usize| shard_ledgers.iter().map(f).sum::<usize>();
    for (name, got, want) in [
        ("offered", sum(|l| l.offered), total.offered),
        ("accepted", sum(|l| l.accepted), total.accepted),
        ("rejected", sum(|l| l.rejected), total.rejected),
        ("completed", sum(|l| l.completed), total.completed),
        ("failed", sum(|l| l.failed), total.failed),
    ] {
        if got != want {
            violations.push(format!(
                "cross-shard conservation: per-shard {name} sums to {got} but the run ledger says {want}"
            ));
        }
    }
    let out: usize = spilled_out.iter().sum();
    let inn: usize = spilled_in.iter().sum();
    if out != inn {
        violations.push(format!(
            "spill flow does not reconcile: {out} spilled out but {inn} spilled in"
        ));
    }

    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

/// Conservation under failover: with shard-scoped faults and a front tier
/// retrying, hedging and shedding, the simple cross-shard sums of
/// [`check_sharded_run_invariants`] no longer hold — retries and hedges
/// multiply physical submissions, typed sheds resolve client requests
/// without one, and a crash loses in-flight copies outright. This check
/// reconciles the whole flow instead: every client request is accounted
/// exactly once across home, re-home, retry and shed paths, and every
/// physical copy is accounted as answered, lost to a crash, or still in
/// flight on an undrained shard.
///
/// The logical ledger (`total`) counts each client request once; the
/// per-shard ledgers count physical submissions (including retries and
/// hedges). `ever_crashed[i]` marks shards whose ledgers can only satisfy
/// weak conservation — the copies they lost were purged, not answered.
pub fn check_failover_run_invariants(
    shards: &[Gateway],
    shard_ledgers: &[RunLedger],
    total: &RunLedger,
    ever_crashed: &[bool],
    failover: &FailoverSection,
    spilled_out: &[usize],
    spilled_in: &[usize],
) -> Result<(), Vec<String>> {
    let mut violations = Vec::new();

    if shards.len() != shard_ledgers.len() || shards.len() != ever_crashed.len() {
        violations.push(format!(
            "{} shards but {} shard ledgers and {} crash flags",
            shards.len(),
            shard_ledgers.len(),
            ever_crashed.len()
        ));
        return Err(violations);
    }
    // Per-shard physical ledgers: strict when the shard never crashed (its
    // driver-set drained flag engages the strict checks), weak otherwise.
    for (i, (gateway, ledger)) in shards.iter().zip(shard_ledgers).enumerate() {
        if let Err(shard_violations) = check_run_invariants(gateway, ledger) {
            for v in shard_violations {
                violations.push(format!("shard {i}: {v}"));
            }
        }
    }
    // Whole-run logical conservation.
    if total.clock.violations() > 0 {
        violations.push(format!(
            "sim clock moved backwards {} time(s)",
            total.clock.violations()
        ));
    }
    if total.offered != total.accepted + total.rejected {
        violations.push(format!(
            "offered {} != accepted {} + rejected {}",
            total.offered, total.accepted, total.rejected
        ));
    }
    if total.completed + total.failed > total.accepted {
        violations.push(format!(
            "more responses ({} completed + {} failed) than accepted requests ({})",
            total.completed, total.failed, total.accepted
        ));
    }
    if total.drained && total.completed + total.failed != total.accepted {
        violations.push(format!(
            "drained run lost requests: accepted {} != completed {} + failed {}",
            total.accepted, total.completed, total.failed
        ));
    }
    // Physical dispatch flow: every client request the front tier did not
    // shed pre-submit, plus every retry and hedge, hit exactly one shard.
    let sum = |f: fn(&RunLedger) -> usize| shard_ledgers.iter().map(f).sum::<usize>();
    let phys_offered = sum(|l| l.offered);
    let expected_offered = total.offered - failover.shed_overload - failover.shed_no_live_shard
        + failover.retries_dispatched
        + failover.hedges_dispatched;
    if phys_offered != expected_offered {
        violations.push(format!(
            "physical dispatch flow does not reconcile: shards saw {} submissions but \
             offered {} - shed ({} + {}) + retries {} + hedges {} = {}",
            phys_offered,
            total.offered,
            failover.shed_overload,
            failover.shed_no_live_shard,
            failover.retries_dispatched,
            failover.hedges_dispatched,
            expected_offered
        ));
    }
    if total.drained {
        // Every physically accepted copy was answered or died in a crash…
        let phys_accepted = sum(|l| l.accepted);
        let phys_answered = sum(|l| l.completed + l.failed);
        if phys_accepted != phys_answered + failover.lost_in_flight {
            violations.push(format!(
                "physical copies leak: {} accepted != {} answered + {} lost in flight",
                phys_accepted, phys_answered, failover.lost_in_flight
            ));
        }
        // …and every physical answer either resolved a client request or
        // arrived stale; give-ups resolved a client request without one.
        let logical_answered = total.completed + total.failed;
        let expected_answered =
            logical_answered - failover.shed_retries_exhausted + failover.stale_responses;
        if phys_answered != expected_answered {
            violations.push(format!(
                "response flow does not reconcile: shards answered {} but logical ({}) - \
                 gave up ({}) + stale ({}) = {}",
                phys_answered,
                logical_answered,
                failover.shed_retries_exhausted,
                failover.stale_responses,
                expected_answered
            ));
        }
    }
    if failover.retried_to_completion + failover.hedge_wins
        > failover.retries_dispatched + failover.hedges_dispatched
    {
        violations.push(format!(
            "more retry/hedge wins ({} + {}) than dispatches ({} + {})",
            failover.retried_to_completion,
            failover.hedge_wins,
            failover.retries_dispatched,
            failover.hedges_dispatched
        ));
    }
    let out: usize = spilled_out.iter().sum();
    let inn: usize = spilled_in.iter().sum();
    if out != inn {
        violations.push(format!(
            "spill flow does not reconcile: {out} spilled out but {inn} spilled in"
        ));
    }

    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

/// Replay-mode conservation: cross-check a replayed run's report against the
/// cassette it replayed. The replayed run must offer exactly the recorded
/// stream — whole-run and per-tenant — under the recorded scenario identity.
/// Returns every violated invariant (empty = all hold).
pub fn check_replay_invariants(
    report: &GatewayReport,
    cassette: &Cassette,
) -> Result<(), Vec<String>> {
    let mut violations = Vec::new();

    if report.scenario != cassette.scenario {
        violations.push(format!(
            "replayed scenario '{}' != recorded '{}'",
            report.scenario, cassette.scenario
        ));
    }
    if report.seed != cassette.seed {
        violations.push(format!(
            "replayed seed {} != recorded {}",
            report.seed, cassette.seed
        ));
    }
    if report.offered != cassette.len() {
        violations.push(format!(
            "replay offered {} requests but the cassette recorded {}",
            report.offered,
            cassette.len()
        ));
    }
    if report.tenants.len() != cassette.tenants.len() {
        violations.push(format!(
            "replay has {} tenant partitions but the cassette recorded {}",
            report.tenants.len(),
            cassette.tenants.len()
        ));
    } else {
        for (i, tenant) in cassette.tenants.iter().enumerate() {
            let recorded = cassette
                .entries
                .iter()
                .filter(|e| e.request.tenant as usize == i)
                .count();
            let replayed = &report.tenants[i];
            if replayed.tenant != tenant.name {
                violations.push(format!(
                    "tenant {i} replayed as '{}' but was recorded as '{}'",
                    replayed.tenant, tenant.name
                ));
            }
            if replayed.offered != recorded {
                violations.push(format!(
                    "tenant '{}' replayed {} requests but the cassette recorded {}",
                    tenant.name, replayed.offered, recorded
                ));
            }
        }
    }

    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::ChatCompletionRequest;
    use crate::deploy::DeploymentBuilder;
    use first_desim::SimProcess;

    const MODEL: &str = "meta-llama/Llama-3.3-70B-Instruct";

    #[test]
    fn clock_monitor_counts_backward_steps() {
        let mut clock = ClockMonitor::new();
        assert!(clock.observe(SimTime::from_secs(1)));
        assert!(clock.observe(SimTime::from_secs(1)), "equal times are fine");
        assert!(clock.observe(SimTime::from_secs(5)));
        assert!(!clock.observe(SimTime::from_secs(2)));
        assert_eq!(clock.violations(), 1);
        assert_eq!(clock.last(), SimTime::from_secs(5));
    }

    #[test]
    fn clean_run_passes_all_invariants() {
        let (mut gw, tokens) = DeploymentBuilder::single_cluster_test()
            .prewarm(1)
            .build_with_tokens();
        let mut ledger = RunLedger::new();
        for i in 0..5u64 {
            let req = ChatCompletionRequest::simple(MODEL, &format!("inv {i}"), 100);
            let ok = gw
                .chat_completions(&req, &tokens.alice, Some(80), SimTime::from_secs(i))
                .is_ok();
            ledger.on_submission(ok);
        }
        let mut now = SimTime::ZERO;
        while let Some(t) = SimProcess::next_event_time(&gw) {
            now = now.max(t);
            ledger.clock.observe(now);
            gw.advance(now);
            for r in gw.take_responses() {
                ledger.on_response(r.success);
            }
            if gw.is_drained() {
                break;
            }
        }
        ledger.drained = gw.is_drained();
        assert!(ledger.drained);
        check_run_invariants(&gw, &ledger).expect("clean run holds all invariants");
    }

    #[test]
    fn lost_response_is_reported_as_conservation_violation() {
        let (gw, _tokens) = DeploymentBuilder::single_cluster_test()
            .prewarm(1)
            .build_with_tokens();
        let ledger = RunLedger {
            offered: 3,
            accepted: 3,
            rejected: 0,
            completed: 2,
            failed: 0,
            clock: ClockMonitor::new(),
            drained: true,
        };
        let violations = check_run_invariants(&gw, &ledger).unwrap_err();
        assert!(
            violations.iter().any(|v| v.contains("lost requests")),
            "{violations:?}"
        );
    }

    #[test]
    fn undrained_run_only_requires_weak_conservation() {
        let (gw, _tokens) = DeploymentBuilder::single_cluster_test()
            .prewarm(1)
            .build_with_tokens();
        // Horizon cut the run short: 1 of 3 accepted still in flight — fine
        // while not drained, but responses may never exceed acceptances.
        let ledger = RunLedger {
            offered: 4,
            accepted: 3,
            rejected: 1,
            completed: 2,
            failed: 0,
            clock: ClockMonitor::new(),
            drained: false,
        };
        check_run_invariants(&gw, &ledger).expect("weak conservation holds");
        let bad = RunLedger {
            completed: 5,
            ..ledger
        };
        assert!(check_run_invariants(&gw, &bad).is_err());
    }

    /// A hand-built two-shard failover run: shard 1 crashed mid-run with two
    /// copies in flight, one was retried to completion on shard 0, one
    /// exhausted its retry budget, and one request was shed for overload.
    fn failover_fixture() -> (Vec<Gateway>, Vec<RunLedger>, RunLedger, FailoverSection) {
        let shards = vec![
            DeploymentBuilder::single_cluster_test().prewarm(1).build(),
            DeploymentBuilder::single_cluster_test().prewarm(1).build(),
        ];
        let shard_ledgers = vec![
            RunLedger {
                offered: 6,
                accepted: 6,
                rejected: 0,
                completed: 6,
                failed: 0,
                clock: ClockMonitor::new(),
                drained: true,
            },
            RunLedger {
                offered: 4,
                accepted: 4,
                rejected: 0,
                completed: 2,
                failed: 0,
                clock: ClockMonitor::new(),
                drained: false,
            },
        ];
        let total = RunLedger {
            offered: 10,
            accepted: 9,
            rejected: 1,
            completed: 8,
            failed: 1,
            clock: ClockMonitor::new(),
            drained: true,
        };
        let failover = FailoverSection {
            crashes: 1,
            lost_in_flight: 2,
            retries_dispatched: 1,
            retried_to_completion: 1,
            shed_overload: 1,
            shed_retries_exhausted: 1,
            ..FailoverSection::default()
        };
        (shards, shard_ledgers, total, failover)
    }

    #[test]
    fn failover_flow_reconciles_across_home_retry_and_shed_paths() {
        let (shards, shard_ledgers, total, failover) = failover_fixture();
        check_failover_run_invariants(
            &shards,
            &shard_ledgers,
            &total,
            &[false, true],
            &failover,
            &[0, 0],
            &[0, 0],
        )
        .expect("every request is accounted exactly once");
    }

    #[test]
    fn failover_copy_leak_is_reported() {
        let (shards, shard_ledgers, total, mut failover) = failover_fixture();
        // Claim three copies were lost when only two physically went missing:
        // the accepted-vs-answered reconciliation must catch the gap.
        failover.lost_in_flight = 3;
        let violations = check_failover_run_invariants(
            &shards,
            &shard_ledgers,
            &total,
            &[false, true],
            &failover,
            &[0, 0],
            &[0, 0],
        )
        .unwrap_err();
        assert!(
            violations
                .iter()
                .any(|v| v.contains("physical copies leak")),
            "{violations:?}"
        );
    }

    #[test]
    fn failover_unshed_dispatch_mismatch_is_reported() {
        let (shards, shard_ledgers, total, mut failover) = failover_fixture();
        failover.shed_overload = 0;
        let violations = check_failover_run_invariants(
            &shards,
            &shard_ledgers,
            &total,
            &[false, true],
            &failover,
            &[0, 0],
            &[0, 0],
        )
        .unwrap_err();
        assert!(
            violations
                .iter()
                .any(|v| v.contains("physical dispatch flow")),
            "{violations:?}"
        );
    }
}
