//! Post-run invariant checking for simulation drivers.
//!
//! Every scenario runner moves requests through the same lifecycle:
//! offered → accepted (or rejected at the API boundary) → completed or
//! failed. A [`RunLedger`] records what the driver observed on the way;
//! [`check_run_invariants`] then cross-checks the ledger against the
//! gateway's internal queues and asserts the three properties every correct
//! run must satisfy:
//!
//! 1. **Request conservation** — `offered == accepted + rejected`, and once
//!    the run drains, `accepted == completed + failed`: no request may
//!    vanish or be answered twice.
//! 2. **Monotone simulation clock** — the driver never advanced the gateway
//!    backwards.
//! 3. **No leaked tasks** — a drained gateway holds nothing in its pending,
//!    in-flight, awaiting-delivery or outstanding-copy slabs.
//!
//! [`crate::ScenarioRun`] runs the check automatically in debug builds
//! (`#[cfg(debug_assertions)]`), which covers every `cargo test` run;
//! integration tests call it directly on their own drivers. Sharded runs go
//! through [`check_sharded_run_invariants`], which applies the same checks
//! per shard and additionally reconciles cross-shard totals and spill flow.

use crate::gateway::Gateway;
use crate::scenario::GatewayReport;
use first_desim::SimTime;
use first_workload::Cassette;

/// Watches a driver's advance instants for monotonicity.
#[derive(Debug, Clone, Default)]
pub struct ClockMonitor {
    last: SimTime,
    violations: u64,
}

impl ClockMonitor {
    /// A monitor starting at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one advance instant; returns `false` (and counts a violation)
    /// when the clock moved backwards.
    pub fn observe(&mut self, now: SimTime) -> bool {
        if now < self.last {
            self.violations += 1;
            false
        } else {
            self.last = now;
            true
        }
    }

    /// Latest instant observed.
    pub fn last(&self) -> SimTime {
        self.last
    }

    /// Number of backwards steps observed.
    pub fn violations(&self) -> u64 {
        self.violations
    }
}

/// What one driver observed over a run: the request-lifecycle counts and the
/// clock trace the invariant checker validates.
#[derive(Debug, Clone, Default)]
pub struct RunLedger {
    /// Requests the driver tried to submit.
    pub offered: usize,
    /// Requests the gateway accepted.
    pub accepted: usize,
    /// Requests rejected at the API boundary (auth, rate limit, validation,
    /// no route).
    pub rejected: usize,
    /// Successful responses collected.
    pub completed: usize,
    /// Failed responses collected.
    pub failed: usize,
    /// The driver's clock trace.
    pub clock: ClockMonitor,
    /// Whether the run ended with the gateway drained (as opposed to being
    /// cut off by the horizon with work still in flight).
    pub drained: bool,
}

impl RunLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one submission attempt.
    pub fn on_submission(&mut self, accepted: bool) {
        self.offered += 1;
        if accepted {
            self.accepted += 1;
        } else {
            self.rejected += 1;
        }
    }

    /// Record one collected response.
    pub fn on_response(&mut self, success: bool) {
        if success {
            self.completed += 1;
        } else {
            self.failed += 1;
        }
    }
}

/// Cross-check a finished run's ledger against the gateway's internal state.
/// Returns every violated invariant (empty = all hold).
pub fn check_run_invariants(gateway: &Gateway, ledger: &RunLedger) -> Result<(), Vec<String>> {
    let mut violations = Vec::new();

    if ledger.clock.violations() > 0 {
        violations.push(format!(
            "sim clock moved backwards {} time(s)",
            ledger.clock.violations()
        ));
    }
    if ledger.offered != ledger.accepted + ledger.rejected {
        violations.push(format!(
            "offered {} != accepted {} + rejected {}",
            ledger.offered, ledger.accepted, ledger.rejected
        ));
    }
    if ledger.completed + ledger.failed > ledger.accepted {
        violations.push(format!(
            "more responses ({} completed + {} failed) than accepted requests ({})",
            ledger.completed, ledger.failed, ledger.accepted
        ));
    }
    if ledger.drained {
        if ledger.completed + ledger.failed != ledger.accepted {
            violations.push(format!(
                "drained run lost requests: accepted {} != completed {} + failed {}",
                ledger.accepted, ledger.completed, ledger.failed
            ));
        }
        if !gateway.is_drained() {
            violations.push("ledger says drained but the gateway disagrees".to_string());
        }
        let queues = gateway.queue_snapshot();
        if queues.pending_dispatches != 0
            || queues.in_flight_tasks != 0
            || queues.awaiting_delivery != 0
        {
            violations.push(format!("drained gateway leaks tasks: {queues:?}"));
        }
        if queues.outstanding_copies != 0 {
            violations.push(format!(
                "drained gateway leaks {} outstanding copies",
                queues.outstanding_copies
            ));
        }
    }

    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

/// Sharded-run conservation: every per-shard ledger must satisfy the
/// single-gateway invariants against its own shard, and the cross-shard
/// accounting must reconcile — whole-run totals equal the sums over shards
/// (requests may cross shards but never leave the fleet), and every spill
/// leaving one shard arrives at another. Returns every violated invariant
/// (empty = all hold).
pub fn check_sharded_run_invariants(
    shards: &[Gateway],
    shard_ledgers: &[RunLedger],
    total: &RunLedger,
    spilled_out: &[usize],
    spilled_in: &[usize],
) -> Result<(), Vec<String>> {
    let mut violations = Vec::new();

    if shards.len() != shard_ledgers.len() {
        violations.push(format!(
            "{} shards but {} shard ledgers",
            shards.len(),
            shard_ledgers.len()
        ));
        return Err(violations);
    }
    for (i, (gateway, ledger)) in shards.iter().zip(shard_ledgers).enumerate() {
        if let Err(shard_violations) = check_run_invariants(gateway, ledger) {
            for v in shard_violations {
                violations.push(format!("shard {i}: {v}"));
            }
        }
    }
    let sum = |f: fn(&RunLedger) -> usize| shard_ledgers.iter().map(f).sum::<usize>();
    for (name, got, want) in [
        ("offered", sum(|l| l.offered), total.offered),
        ("accepted", sum(|l| l.accepted), total.accepted),
        ("rejected", sum(|l| l.rejected), total.rejected),
        ("completed", sum(|l| l.completed), total.completed),
        ("failed", sum(|l| l.failed), total.failed),
    ] {
        if got != want {
            violations.push(format!(
                "cross-shard conservation: per-shard {name} sums to {got} but the run ledger says {want}"
            ));
        }
    }
    let out: usize = spilled_out.iter().sum();
    let inn: usize = spilled_in.iter().sum();
    if out != inn {
        violations.push(format!(
            "spill flow does not reconcile: {out} spilled out but {inn} spilled in"
        ));
    }

    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

/// Replay-mode conservation: cross-check a replayed run's report against the
/// cassette it replayed. The replayed run must offer exactly the recorded
/// stream — whole-run and per-tenant — under the recorded scenario identity.
/// Returns every violated invariant (empty = all hold).
pub fn check_replay_invariants(
    report: &GatewayReport,
    cassette: &Cassette,
) -> Result<(), Vec<String>> {
    let mut violations = Vec::new();

    if report.scenario != cassette.scenario {
        violations.push(format!(
            "replayed scenario '{}' != recorded '{}'",
            report.scenario, cassette.scenario
        ));
    }
    if report.seed != cassette.seed {
        violations.push(format!(
            "replayed seed {} != recorded {}",
            report.seed, cassette.seed
        ));
    }
    if report.offered != cassette.len() {
        violations.push(format!(
            "replay offered {} requests but the cassette recorded {}",
            report.offered,
            cassette.len()
        ));
    }
    if report.tenants.len() != cassette.tenants.len() {
        violations.push(format!(
            "replay has {} tenant partitions but the cassette recorded {}",
            report.tenants.len(),
            cassette.tenants.len()
        ));
    } else {
        for (i, tenant) in cassette.tenants.iter().enumerate() {
            let recorded = cassette
                .entries
                .iter()
                .filter(|e| e.request.tenant as usize == i)
                .count();
            let replayed = &report.tenants[i];
            if replayed.tenant != tenant.name {
                violations.push(format!(
                    "tenant {i} replayed as '{}' but was recorded as '{}'",
                    replayed.tenant, tenant.name
                ));
            }
            if replayed.offered != recorded {
                violations.push(format!(
                    "tenant '{}' replayed {} requests but the cassette recorded {}",
                    tenant.name, replayed.offered, recorded
                ));
            }
        }
    }

    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::ChatCompletionRequest;
    use crate::deploy::DeploymentBuilder;
    use first_desim::SimProcess;

    const MODEL: &str = "meta-llama/Llama-3.3-70B-Instruct";

    #[test]
    fn clock_monitor_counts_backward_steps() {
        let mut clock = ClockMonitor::new();
        assert!(clock.observe(SimTime::from_secs(1)));
        assert!(clock.observe(SimTime::from_secs(1)), "equal times are fine");
        assert!(clock.observe(SimTime::from_secs(5)));
        assert!(!clock.observe(SimTime::from_secs(2)));
        assert_eq!(clock.violations(), 1);
        assert_eq!(clock.last(), SimTime::from_secs(5));
    }

    #[test]
    fn clean_run_passes_all_invariants() {
        let (mut gw, tokens) = DeploymentBuilder::single_cluster_test()
            .prewarm(1)
            .build_with_tokens();
        let mut ledger = RunLedger::new();
        for i in 0..5u64 {
            let req = ChatCompletionRequest::simple(MODEL, &format!("inv {i}"), 100);
            let ok = gw
                .chat_completions(&req, &tokens.alice, Some(80), SimTime::from_secs(i))
                .is_ok();
            ledger.on_submission(ok);
        }
        let mut now = SimTime::ZERO;
        while let Some(t) = SimProcess::next_event_time(&gw) {
            now = now.max(t);
            ledger.clock.observe(now);
            gw.advance(now);
            for r in gw.take_responses() {
                ledger.on_response(r.success);
            }
            if gw.is_drained() {
                break;
            }
        }
        ledger.drained = gw.is_drained();
        assert!(ledger.drained);
        check_run_invariants(&gw, &ledger).expect("clean run holds all invariants");
    }

    #[test]
    fn lost_response_is_reported_as_conservation_violation() {
        let (gw, _tokens) = DeploymentBuilder::single_cluster_test()
            .prewarm(1)
            .build_with_tokens();
        let ledger = RunLedger {
            offered: 3,
            accepted: 3,
            rejected: 0,
            completed: 2,
            failed: 0,
            clock: ClockMonitor::new(),
            drained: true,
        };
        let violations = check_run_invariants(&gw, &ledger).unwrap_err();
        assert!(
            violations.iter().any(|v| v.contains("lost requests")),
            "{violations:?}"
        );
    }

    #[test]
    fn undrained_run_only_requires_weak_conservation() {
        let (gw, _tokens) = DeploymentBuilder::single_cluster_test()
            .prewarm(1)
            .build_with_tokens();
        // Horizon cut the run short: 1 of 3 accepted still in flight — fine
        // while not drained, but responses may never exceed acceptances.
        let ledger = RunLedger {
            offered: 4,
            accepted: 3,
            rejected: 1,
            completed: 2,
            failed: 0,
            clock: ClockMonitor::new(),
            drained: false,
        };
        check_run_invariants(&gw, &ledger).expect("weak conservation holds");
        let bad = RunLedger {
            completed: 5,
            ..ledger
        };
        assert!(check_run_invariants(&gw, &bad).is_err());
    }
}
