//! Deployment assembly: wires auth, clusters, endpoints, the compute service
//! and the gateway into a runnable FIRST installation (§4).
//!
//! The builder produces the two deployments used throughout the repository:
//! a small single-cluster test deployment for unit/integration tests and the
//! paper's ALCF deployment (Sophia, optionally federated with Polaris) for
//! the benchmark harness.

use crate::gateway::{Gateway, GatewayConfig};
use crate::registry::{ModelRegistry, RoutingPolicy};
use first_auth::{
    AccessPolicy, AuthService, ConfidentialClient, GroupRole, Identity, ResourceRule, Scope,
    TokenString, UserId,
};
use first_desim::{SimDuration, SimTime};
use first_fabric::{
    ComputeEndpoint, ComputeService, EndpointConfig, FabricLatencyModel, ModelHostingConfig,
};
use first_hpc::{Cluster, GpuModel};
use first_serving::{find_model, ModelSpec};

/// Bearer tokens for the standard test users.
#[derive(Debug, Clone)]
pub struct TestTokens {
    /// Member of `first-users` and `aurora-early-access`.
    pub alice: TokenString,
    /// Member of `first-users` only.
    pub bob: TokenString,
}

/// One model to host on an endpoint, with its scaling settings.
#[derive(Debug, Clone)]
pub struct HostedModel {
    /// Model specification.
    pub spec: ModelSpec,
    /// Auto-scaling ceiling.
    pub max_instances: u32,
    /// Per-instance parallel task limit.
    pub max_parallel_tasks: usize,
}

impl HostedModel {
    /// Host a catalog model (looked up by name or alias) with defaults.
    pub fn named(name: &str) -> Self {
        HostedModel {
            spec: find_model(name).unwrap_or_else(|| panic!("unknown model '{name}'")),
            max_instances: 1,
            max_parallel_tasks: 200,
        }
    }

    /// Set the auto-scaling ceiling.
    pub fn with_max_instances(mut self, n: u32) -> Self {
        self.max_instances = n;
        self
    }

    /// Set the per-instance parallel task limit.
    pub fn with_max_parallel_tasks(mut self, n: usize) -> Self {
        self.max_parallel_tasks = n;
        self
    }
}

/// Description of one federated cluster + endpoint.
#[derive(Debug, Clone)]
pub struct ClusterSite {
    /// Endpoint name (e.g. `"sophia-endpoint"`).
    pub endpoint_name: String,
    /// The cluster itself.
    pub cluster: Cluster,
    /// GPU type of the cluster.
    pub gpu: GpuModel,
    /// Models hosted at this site.
    pub models: Vec<HostedModel>,
}

/// Builder for a complete FIRST deployment.
///
/// # Example
///
/// Stand up the single-cluster test deployment, send one OpenAI-style chat
/// completion with a pre-enrolled user's bearer token, and drive the
/// simulation until the response arrives:
///
/// ```
/// use first_core::{ChatCompletionRequest, DeploymentBuilder};
/// use first_desim::{SimProcess, SimTime};
///
/// let (mut gateway, tokens) = DeploymentBuilder::single_cluster_test()
///     .prewarm(1) // keep one instance of each model hot
///     .build_with_tokens();
///
/// let request = ChatCompletionRequest::simple(
///     "meta-llama/Llama-3.3-70B-Instruct",
///     "How does continuous batching raise GPU utilization?",
///     128,
/// );
/// gateway
///     .chat_completions(&request, &tokens.alice, Some(128), SimTime::ZERO)
///     .expect("request accepted");
///
/// let mut now = SimTime::ZERO;
/// while let Some(t) = SimProcess::next_event_time(&gateway) {
///     now = t.max(now);
///     gateway.advance(now);
///     if gateway.is_drained() {
///         break;
///     }
/// }
/// assert_eq!(gateway.take_responses().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct DeploymentBuilder {
    sites: Vec<ClusterSite>,
    gateway_config: GatewayConfig,
    fabric_latency: FabricLatencyModel,
    prewarm_instances: u32,
    rate_limit: u32,
    routing_policy: RoutingPolicy,
    seed: u64,
}

impl DeploymentBuilder {
    /// Start from an explicit list of sites.
    pub fn new(sites: Vec<ClusterSite>) -> Self {
        DeploymentBuilder {
            sites,
            gateway_config: GatewayConfig::default(),
            fabric_latency: FabricLatencyModel::default(),
            prewarm_instances: 0,
            rate_limit: u32::MAX,
            routing_policy: RoutingPolicy::default(),
            seed: 20_250_613,
        }
    }

    /// A compact single-cluster deployment for tests: an 8-node cluster
    /// hosting Llama 70B (scalable to 4 instances), Llama 8B, the restricted
    /// AuroraGPT-7B, and the NV-Embed-v2 embedding model.
    pub fn single_cluster_test() -> Self {
        Self::new(vec![ClusterSite {
            endpoint_name: "sophia-endpoint".to_string(),
            cluster: Cluster::tiny("sophia", 8, 8),
            gpu: GpuModel::A100_40,
            models: vec![
                HostedModel::named("llama-70b").with_max_instances(4),
                HostedModel::named("llama-8b").with_max_instances(2),
                HostedModel::named("auroragpt-7b"),
                HostedModel::named("nv-embed-v2"),
            ],
        }])
    }

    /// Sophia hosting exactly one instance of each benchmark model — the
    /// single-instance configuration used by the Figure 3 rate sweep and the
    /// Figure 5 comparison.
    pub fn sophia_single_instance() -> Self {
        Self::new(vec![ClusterSite {
            endpoint_name: "sophia-endpoint".to_string(),
            cluster: Cluster::sophia(),
            gpu: GpuModel::A100_40,
            models: vec![
                HostedModel::named("llama-70b"),
                HostedModel::named("llama-8b"),
                HostedModel::named("gemma-27b"),
            ],
        }])
    }

    /// The paper's proof-of-concept deployment: the 24-node Sophia cluster.
    pub fn sophia() -> Self {
        Self::new(vec![ClusterSite {
            endpoint_name: "sophia-endpoint".to_string(),
            cluster: Cluster::sophia(),
            gpu: GpuModel::A100_40,
            models: vec![
                HostedModel::named("llama-70b").with_max_instances(4),
                HostedModel::named("llama-8b").with_max_instances(2),
                HostedModel::named("gemma-27b").with_max_instances(2),
                HostedModel::named("qwen-32b"),
                HostedModel::named("mixtral-8x22b"),
                HostedModel::named("auroragpt-7b"),
                HostedModel::named("nv-embed-v2"),
            ],
        }])
    }

    /// The federated deployment (§4.5): Sophia plus Polaris, with the chat
    /// models registered on both sites (Sophia first in configuration order).
    pub fn federated_sophia_polaris() -> Self {
        let mut builder = Self::sophia();
        builder.sites.push(ClusterSite {
            endpoint_name: "polaris-endpoint".to_string(),
            cluster: Cluster::polaris(),
            gpu: GpuModel::A100_40,
            models: vec![
                HostedModel::named("llama-8b").with_max_instances(4),
                HostedModel::named("llama-70b").with_max_instances(2),
            ],
        });
        builder
    }

    /// Override the gateway configuration (optimization ablations).
    pub fn gateway_config(mut self, config: GatewayConfig) -> Self {
        self.gateway_config = config;
        self
    }

    /// Override the fabric latency model.
    pub fn fabric_latency(mut self, latency: FabricLatencyModel) -> Self {
        self.fabric_latency = latency;
        self
    }

    /// Pre-warm this many instances of every hosted chat model at time zero.
    pub fn prewarm(mut self, instances: u32) -> Self {
        self.prewarm_instances = instances;
        self
    }

    /// Set the per-user rate limit (requests/minute).
    pub fn rate_limit(mut self, limit: u32) -> Self {
        self.rate_limit = limit;
        self
    }

    /// Set the federation routing policy (default: the paper's §4.5 scheme).
    pub fn routing_policy(mut self, policy: RoutingPolicy) -> Self {
        self.routing_policy = policy;
        self
    }

    /// Set the resilience profile (retries, failover, hedging, breaker).
    /// Defaults to disabled — the paper's proof-of-concept behaviour; pass
    /// [`first_chaos::ResilienceConfig::production`] to harden the gateway.
    pub fn resilience(mut self, resilience: first_chaos::ResilienceConfig) -> Self {
        self.gateway_config.resilience = resilience;
        self
    }

    /// Set the deployment RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enable request-lifecycle tracing with the given sampling and
    /// retention knobs (default: off, zero per-request cost).
    pub fn trace(mut self, trace: first_telemetry::TraceConfig) -> Self {
        self.gateway_config.trace = trace;
        self
    }

    fn build_auth(&self) -> AuthService {
        let mut policy = AccessPolicy::default();
        // AuroraGPT models are restricted to an early-access group, the
        // paper's example of sensitive-model gating.
        for name in [
            "argonne-private/AuroraGPT-7B",
            "argonne-private/AuroraGPT-IT-v4-0125",
            "argonne-private/AuroraGPT-Tulu3-SFT-0125",
        ] {
            policy.set_model_rule(name, ResourceRule::restricted(&["aurora-early-access"]));
        }
        let mut auth = AuthService::new(policy, self.seed);
        auth.register_confidential_client(ConfidentialClient::new(
            "first-admin-client",
            "first-admin-secret",
        ));
        auth
    }

    /// Build the gateway (auth users must then be enrolled by the caller, or
    /// use [`DeploymentBuilder::build_with_tokens`]).
    pub fn build(self) -> Gateway {
        let mut config = self.gateway_config.clone();
        config.rate_limit_per_minute = self.rate_limit;
        let auth = self.build_auth();
        let mut service = ComputeService::new(self.fabric_latency.clone());
        let mut registry = ModelRegistry::new();
        for site in &self.sites {
            let mut ep_config =
                EndpointConfig::new(&site.endpoint_name, &site.cluster.name, site.gpu);
            // Size each instance's allocation to this cluster's nodes (§3.2.1:
            // models are "selected according to their size and the available
            // compute nodes") — a TP=8 model is one DGX node on Sophia but two
            // 4-GPU nodes on Polaris.
            let gpus_per_node = site.cluster.max_gpus_per_node().max(1);
            for hosted in &site.models {
                ep_config = ep_config.host(
                    ModelHostingConfig::for_node_size(hosted.spec.clone(), site.gpu, gpus_per_node)
                        .with_max_instances(hosted.max_instances)
                        .with_max_parallel_tasks(hosted.max_parallel_tasks)
                        .with_idle_timeout(SimDuration::from_hours(2)),
                );
                registry.register(&hosted.spec.name, &site.endpoint_name);
            }
            let mut endpoint = ComputeEndpoint::new(ep_config, site.cluster.clone());
            if self.prewarm_instances > 0 {
                for hosted in &site.models {
                    endpoint.prewarm(&hosted.spec.name, self.prewarm_instances, SimTime::ZERO);
                }
            }
            service.add_endpoint(endpoint);
        }
        let mut gateway = Gateway::new(config, auth, service, registry);
        gateway.set_routing_policy(self.routing_policy);
        gateway
    }

    /// Build the gateway and enroll the standard test users (`alice`, `bob`),
    /// returning their bearer tokens.
    pub fn build_with_tokens(self) -> (Gateway, TestTokens) {
        let mut gateway = self.build();
        let tokens = enroll_standard_users(&mut gateway);
        (gateway, tokens)
    }
}

/// Enroll the standard users used by tests and examples and return their
/// tokens: `alice` (platform + aurora early access) and `bob` (platform only).
pub fn enroll_standard_users(gateway: &mut Gateway) -> TestTokens {
    let auth = gateway.auth_mut();
    auth.enroll_user(&UserId::new("alice"));
    auth.enroll_user(&UserId::new("bob"));
    auth.groups_mut().add_member(
        "aurora-early-access",
        UserId::new("alice"),
        GroupRole::Member,
    );
    let (alice_tok, _) = auth
        .login(
            &Identity::new("alice", "anl.gov").with_project("genomics"),
            &[Scope::InferenceApi, Scope::Batch],
            SimTime::ZERO,
        )
        .expect("alice login succeeds");
    let (bob_tok, _) = auth
        .login(
            &Identity::new("bob", "uchicago.edu").with_project("climate"),
            &[Scope::InferenceApi, Scope::Batch],
            SimTime::ZERO,
        )
        .expect("bob login succeeds");
    TestTokens {
        alice: alice_tok.token,
        bob: bob_tok.token,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cluster_deployment_registers_all_models() {
        let (gw, _tokens) = DeploymentBuilder::single_cluster_test().build_with_tokens();
        assert!(gw
            .registry()
            .is_registered("meta-llama/Llama-3.3-70B-Instruct"));
        assert!(gw.registry().is_registered("nvidia/NV-Embed-v2"));
        assert_eq!(
            gw.service().endpoint_names(),
            vec!["sophia-endpoint".to_string()]
        );
    }

    #[test]
    fn sophia_deployment_matches_paper_cluster() {
        let gw = DeploymentBuilder::sophia().build();
        let ep = gw.service().endpoint("sophia-endpoint").unwrap();
        assert_eq!(ep.cluster_status().total_nodes, 24);
        assert_eq!(ep.cluster_status().total_gpus, 192);
        assert!(gw.registry().len() >= 7);
    }

    #[test]
    fn federated_deployment_registers_models_on_both_sites() {
        let gw = DeploymentBuilder::federated_sophia_polaris().build();
        let endpoints = gw
            .registry()
            .endpoints_for("meta-llama/Llama-3.3-70B-Instruct")
            .unwrap();
        assert_eq!(endpoints.len(), 2);
        assert_eq!(endpoints[0], "sophia-endpoint");
        assert_eq!(endpoints[1], "polaris-endpoint");
        assert!(gw.service().endpoint("polaris-endpoint").is_some());
    }

    #[test]
    fn prewarm_creates_hot_instances() {
        let gw = DeploymentBuilder::single_cluster_test().prewarm(1).build();
        let ep = gw.service().endpoint("sophia-endpoint").unwrap();
        assert!(ep.has_hot_instance("meta-llama/Llama-3.3-70B-Instruct"));
        assert!(ep.has_hot_instance("meta-llama/Meta-Llama-3.1-8B-Instruct"));
    }

    #[test]
    fn standard_users_get_distinct_tokens() {
        let (_gw, tokens) = DeploymentBuilder::single_cluster_test().build_with_tokens();
        assert_ne!(tokens.alice, tokens.bob);
    }
}
