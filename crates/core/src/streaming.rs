//! Streaming responses (§4.7).
//!
//! The web interface "supports streaming responses", and interactive API
//! clients consume chat completions as server-sent-event chunks rather than
//! one final body. The discrete-event simulation resolves each request to a
//! single completion time; this module reconstructs the per-token delivery
//! schedule for a completed request so the streaming experience — time to
//! first token (TTFT) and inter-token latency (ITL) — can be measured and
//! reported alongside the end-to-end metrics.
//!
//! The reconstruction is anchored to the simulated end-to-end latency (the
//! last chunk lands exactly at the completion time the DES produced) and uses
//! the serving performance model for the prefill component, so the streaming
//! view never contradicts the headline results.

use crate::gateway::CompletedRequest;
use first_desim::{Histogram, SimDuration, SimTime};
use first_hpc::GpuModel;
use first_serving::{ModelSpec, PerfModel};
use serde::{Deserialize, Serialize};

/// One server-sent chunk of a streamed response.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamChunk {
    /// Chunk sequence number (0-based).
    pub index: u32,
    /// Output tokens carried by this chunk.
    pub tokens: u32,
    /// Virtual time at which the chunk reaches the client.
    pub at: SimTime,
}

/// Configuration of the streaming reconstruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamingConfig {
    /// GPU backing the instance (sets the prefill estimate).
    pub gpu: GpuModel,
    /// Tensor-parallel degree of the instance.
    pub tensor_parallel: u32,
    /// Gateway + fabric overhead before the prompt reaches the engine.
    pub dispatch_overhead: SimDuration,
    /// Output tokens coalesced into one SSE chunk (Open WebUI uses 1).
    pub tokens_per_chunk: u32,
}

impl StreamingConfig {
    /// Defaults for a model served at its recommended TP on A100-40 GPUs.
    pub fn for_model(spec: &ModelSpec) -> Self {
        StreamingConfig {
            gpu: GpuModel::A100_40,
            tensor_parallel: spec.recommended_tp,
            dispatch_overhead: SimDuration::from_millis(500),
            tokens_per_chunk: 1,
        }
    }

    /// Use a different chunk size (e.g. 8-token chunks for lower SSE
    /// framing overhead on high-latency links).
    pub fn with_tokens_per_chunk(mut self, tokens: u32) -> Self {
        self.tokens_per_chunk = tokens.max(1);
        self
    }
}

/// A completed request re-expressed as a stream of chunks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamedResponse {
    /// Gateway request id.
    pub request_id: u64,
    /// Model that produced the response.
    pub model: String,
    /// Request arrival time at the gateway.
    pub arrived_at: SimTime,
    /// Time the first token reached the client.
    pub first_token_at: SimTime,
    /// Time the final chunk reached the client (equals the DES completion).
    pub finished_at: SimTime,
    /// The chunk schedule, in delivery order.
    pub chunks: Vec<StreamChunk>,
}

impl StreamedResponse {
    /// Time to first token.
    pub fn ttft(&self) -> SimDuration {
        self.first_token_at - self.arrived_at
    }

    /// Total output tokens across all chunks.
    pub fn output_tokens(&self) -> u32 {
        self.chunks.iter().map(|c| c.tokens).sum()
    }

    /// Mean inter-token latency over the decode phase, in seconds. Zero for
    /// single-token responses.
    pub fn mean_inter_token_latency(&self) -> f64 {
        let tokens = self.output_tokens();
        if tokens <= 1 {
            return 0.0;
        }
        (self.finished_at - self.first_token_at).as_secs_f64() / (tokens - 1) as f64
    }

    /// End-to-end latency (arrival → final chunk).
    pub fn total_latency(&self) -> SimDuration {
        self.finished_at - self.arrived_at
    }
}

/// Reconstruct the streaming schedule of a completed request.
///
/// The first token is placed after the dispatch overhead plus the model's
/// prefill time (clamped to the request's actual latency); the remaining
/// output tokens are spread uniformly across the rest of the measured
/// latency, so queueing and batching delays the DES observed are reflected in
/// the inter-token spacing rather than silently dropped.
pub fn stream_response(
    completed: &CompletedRequest,
    spec: &ModelSpec,
    perf: &PerfModel,
    config: &StreamingConfig,
) -> StreamedResponse {
    let latency = completed.finished_at - completed.arrived_at;
    let output_tokens = completed.usage.completion_tokens.max(1);

    let prefill = perf.prefill_time(
        spec,
        config.gpu,
        config.tensor_parallel,
        completed.usage.prompt_tokens,
    );
    // TTFT estimate, never later than 90% of the measured latency so even
    // heavily queued requests keep a non-degenerate decode phase.
    let ttft_cap = latency.mul_f64(0.9);
    let mut ttft = config.dispatch_overhead + prefill;
    if ttft > ttft_cap {
        ttft = ttft_cap;
    }
    let first_token_at = completed.arrived_at + ttft;

    let decode_span = (completed.finished_at - first_token_at).as_secs_f64();
    let per_token = if output_tokens > 1 {
        decode_span / (output_tokens - 1) as f64
    } else {
        0.0
    };

    let chunk_tokens = config.tokens_per_chunk.max(1);
    let chunk_count = output_tokens.div_ceil(chunk_tokens);
    let mut chunks = Vec::with_capacity(chunk_count as usize);
    let mut emitted = 0u32;
    for index in 0..chunk_count {
        let tokens = chunk_tokens.min(output_tokens - emitted);
        emitted += tokens;
        // A chunk is delivered when its *last* token has been generated.
        let last_token_index = emitted - 1;
        let at = if last_token_index == 0 {
            first_token_at
        } else {
            first_token_at + SimDuration::from_secs_f64(per_token * last_token_index as f64)
        };
        chunks.push(StreamChunk { index, tokens, at });
    }
    // Pin the final chunk to the simulated completion time exactly.
    if let Some(last) = chunks.last_mut() {
        last.at = completed.finished_at;
    }

    StreamedResponse {
        request_id: completed.request_id,
        model: completed.model.clone(),
        arrived_at: completed.arrived_at,
        first_token_at,
        finished_at: completed.finished_at,
        chunks,
    }
}

/// Aggregate streaming statistics across many requests (the interactive-
/// experience summary the dashboard shows next to the throughput numbers).
#[derive(Debug, Clone, Default)]
pub struct StreamStats {
    ttft: Histogram,
    itl: Histogram,
    responses: u64,
    tokens: u64,
}

impl StreamStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one streamed response.
    pub fn record(&mut self, response: &StreamedResponse) {
        self.ttft.record(response.ttft().as_secs_f64());
        let itl = response.mean_inter_token_latency();
        if itl > 0.0 {
            self.itl.record(itl);
        }
        self.responses += 1;
        self.tokens += response.output_tokens() as u64;
    }

    /// Number of responses recorded.
    pub fn responses(&self) -> u64 {
        self.responses
    }

    /// Total streamed output tokens.
    pub fn tokens(&self) -> u64 {
        self.tokens
    }

    /// Median time to first token, seconds.
    pub fn median_ttft(&mut self) -> f64 {
        self.ttft.median()
    }

    /// 95th-percentile time to first token, seconds.
    pub fn p95_ttft(&mut self) -> f64 {
        self.ttft.p95()
    }

    /// Median mean-inter-token latency, seconds.
    pub fn median_itl(&mut self) -> f64 {
        self.itl.median()
    }

    /// Render a one-block text summary.
    pub fn summary(&mut self) -> String {
        let median_ttft = self.median_ttft();
        let p95_ttft = self.p95_ttft();
        let median_itl_ms = self.median_itl() * 1000.0;
        format!(
            "streamed {} responses / {} tokens — TTFT median {:.2}s p95 {:.2}s, inter-token median {:.0} ms",
            self.responses, self.tokens, median_ttft, p95_ttft, median_itl_ms
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Usage;
    use first_serving::find_model;

    fn completed(latency_s: u64, prompt: u32, output: u32) -> CompletedRequest {
        CompletedRequest {
            request_id: 7,
            user: "alice".into(),
            model: "meta-llama/Llama-3.3-70B-Instruct".into(),
            endpoint: "sophia-endpoint".into(),
            arrived_at: SimTime::from_secs(100),
            finished_at: SimTime::from_secs(100 + latency_s),
            usage: Usage::new(prompt, output),
            success: true,
            cached: false,
        }
    }

    fn spec() -> ModelSpec {
        find_model("llama-70b").unwrap()
    }

    #[test]
    fn stream_conserves_tokens_and_ends_at_the_des_completion() {
        let req = completed(12, 220, 200);
        let cfg = StreamingConfig::for_model(&spec());
        let stream = stream_response(&req, &spec(), &PerfModel::default(), &cfg);
        assert_eq!(stream.output_tokens(), 200);
        assert_eq!(stream.chunks.len(), 200);
        assert_eq!(stream.chunks.last().unwrap().at, req.finished_at);
        assert_eq!(stream.finished_at, req.finished_at);
        assert!(stream.ttft() < req.finished_at - req.arrived_at);
        // Chunk times are non-decreasing.
        assert!(stream.chunks.windows(2).all(|c| c[0].at <= c[1].at));
        // TTFT is dominated by dispatch overhead + sub-second prefill here.
        let ttft = stream.ttft().as_secs_f64();
        assert!(ttft > 0.4 && ttft < 3.0, "ttft {ttft}");
        // ITL ≈ (12 s − ttft) / 199 tokens.
        let itl = stream.mean_inter_token_latency();
        assert!(itl > 0.03 && itl < 0.08, "itl {itl}");
    }

    #[test]
    fn chunking_groups_tokens_without_losing_any() {
        let req = completed(20, 300, 50);
        let cfg = StreamingConfig::for_model(&spec()).with_tokens_per_chunk(8);
        let stream = stream_response(&req, &spec(), &PerfModel::default(), &cfg);
        assert_eq!(stream.output_tokens(), 50);
        assert_eq!(stream.chunks.len(), 7); // 6×8 + 1×2
        assert_eq!(stream.chunks.last().unwrap().tokens, 2);
        assert_eq!(stream.chunks.last().unwrap().at, req.finished_at);
    }

    #[test]
    fn heavily_queued_requests_keep_a_valid_schedule() {
        // A 600 s latency (deep queue) with a tiny 5-token answer.
        let req = completed(600, 100, 5);
        let cfg = StreamingConfig::for_model(&spec());
        let stream = stream_response(&req, &spec(), &PerfModel::default(), &cfg);
        assert_eq!(stream.output_tokens(), 5);
        // TTFT stays capped below the full latency and the decode phase is
        // non-degenerate.
        assert!(stream.ttft().as_secs_f64() <= 0.9 * 600.0 + 1e-9);
        assert!(stream.mean_inter_token_latency() > 0.0);
    }

    #[test]
    fn single_token_responses_have_zero_itl() {
        let req = completed(3, 50, 1);
        let cfg = StreamingConfig::for_model(&spec());
        let stream = stream_response(&req, &spec(), &PerfModel::default(), &cfg);
        assert_eq!(stream.chunks.len(), 1);
        assert_eq!(stream.mean_inter_token_latency(), 0.0);
        assert_eq!(stream.chunks[0].at, req.finished_at);
    }

    #[test]
    fn stream_stats_aggregate_many_responses() {
        let cfg = StreamingConfig::for_model(&spec());
        let perf = PerfModel::default();
        let mut stats = StreamStats::new();
        for latency in [8, 10, 12, 15, 20] {
            let req = completed(latency, 200, 150);
            stats.record(&stream_response(&req, &spec(), &perf, &cfg));
        }
        assert_eq!(stats.responses(), 5);
        assert_eq!(stats.tokens(), 5 * 150);
        assert!(stats.median_ttft() > 0.0);
        assert!(stats.median_itl() > 0.0);
        let summary = stats.summary();
        assert!(summary.contains("streamed 5 responses"));
    }
}
