//! Gateway middleware: token validation with caching, per-user rate limiting,
//! and response caching (§3.1.1, §3.1.2, Optimization 2).

use crate::api::GatewayError;
use first_auth::{AuthService, IntrospectionResult, Scope, TokenString};
use first_desim::{IdHashBuilder, SimDuration, SimTime};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// Outcome of authenticating one request.
#[derive(Debug, Clone, PartialEq)]
pub struct AuthOutcome {
    /// The introspected identity.
    pub identity: IntrospectionResult,
    /// Latency the auth step added to this request.
    pub added_latency: SimDuration,
    /// Whether the introspection cache satisfied the request.
    pub cache_hit: bool,
}

/// Token-validation middleware with an introspection cache.
///
/// Before Optimization 2 every request introspected the token at Globus Auth
/// (~1 s); the cache keeps recently validated tokens so repeated requests pay
/// nothing.
#[derive(Debug)]
pub struct AuthMiddleware {
    /// Whether the cache is enabled (ablation knob).
    pub cache_enabled: bool,
    /// Cache entry time-to-live.
    pub cache_ttl: SimDuration,
    cache: HashMap<String, (SimTime, IntrospectionResult)>,
    stats_hits: u64,
    stats_misses: u64,
    stats_rejections: u64,
}

impl AuthMiddleware {
    /// Middleware with the cache enabled (production configuration).
    pub fn new() -> Self {
        AuthMiddleware {
            cache_enabled: true,
            cache_ttl: SimDuration::from_mins(10),
            cache: HashMap::new(),
            stats_hits: 0,
            stats_misses: 0,
            stats_rejections: 0,
        }
    }

    /// Middleware with the cache disabled (pre-optimization configuration).
    pub fn without_cache() -> Self {
        AuthMiddleware {
            cache_enabled: false,
            ..Self::new()
        }
    }

    /// `(hits, misses, rejections)` counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.stats_hits, self.stats_misses, self.stats_rejections)
    }

    /// Validate a bearer token, consulting the cache first.
    pub fn authenticate(
        &mut self,
        auth: &mut AuthService,
        token: &TokenString,
        now: SimTime,
    ) -> Result<AuthOutcome, GatewayError> {
        if self.cache_enabled {
            if let Some((cached_at, identity)) = self.cache.get(&token.0) {
                let fresh = now.saturating_since(*cached_at) < self.cache_ttl;
                let unexpired = now < identity.expires_at;
                if fresh && unexpired {
                    self.stats_hits += 1;
                    return Ok(AuthOutcome {
                        identity: identity.clone(),
                        added_latency: SimDuration::ZERO,
                        cache_hit: true,
                    });
                }
            }
        }
        self.stats_misses += 1;
        let (result, latency) = auth.introspect(token, now);
        match result {
            Ok(identity) => {
                if !identity.scopes.contains(&Scope::InferenceApi)
                    && !identity.scopes.contains(&Scope::Admin)
                {
                    self.stats_rejections += 1;
                    return Err(GatewayError::Forbidden(
                        "token lacks the inference scope".into(),
                    ));
                }
                if self.cache_enabled {
                    self.cache.insert(token.0.clone(), (now, identity.clone()));
                }
                Ok(AuthOutcome {
                    identity,
                    added_latency: latency,
                    cache_hit: false,
                })
            }
            Err(e) => {
                self.stats_rejections += 1;
                Err(GatewayError::Unauthorized(e.to_string()))
            }
        }
    }
}

impl Default for AuthMiddleware {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-user sliding-window rate limiter (requests per minute).
#[derive(Debug)]
pub struct RateLimiter {
    /// Requests allowed per window per user.
    pub limit: u32,
    /// Window length.
    pub window: SimDuration,
    history: Mutex<HashMap<String, VecDeque<SimTime>>>,
}

impl RateLimiter {
    /// A limiter allowing `limit` requests per minute per user.
    pub fn per_minute(limit: u32) -> Self {
        RateLimiter {
            limit,
            window: SimDuration::from_secs(60),
            history: Mutex::new(HashMap::new()),
        }
    }

    /// An effectively unlimited limiter (benchmarks).
    pub fn unlimited() -> Self {
        Self::per_minute(u32::MAX)
    }

    /// Record an attempt by `user` at `now`; returns whether it is admitted.
    pub fn check(&self, user: &str, now: SimTime) -> bool {
        if self.limit == u32::MAX {
            return true;
        }
        let mut history = self.history.lock();
        let entry = history.entry(user.to_string()).or_default();
        let cutoff = now.saturating_since(SimTime::ZERO);
        let _ = cutoff;
        while let Some(&front) = entry.front() {
            if now.saturating_since(front) >= self.window {
                entry.pop_front();
            } else {
                break;
            }
        }
        if entry.len() as u32 >= self.limit {
            false
        } else {
            entry.push_back(now);
            true
        }
    }

    /// Requests currently counted in `user`'s window.
    pub fn current_usage(&self, user: &str) -> u32 {
        self.history
            .lock()
            .get(user)
            .map(|q| q.len() as u32)
            .unwrap_or(0)
    }
}

/// A cached gateway response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CachedResponse {
    /// The response text.
    pub text: String,
    /// Completion tokens of the cached generation.
    pub completion_tokens: u32,
}

/// Response cache keyed by (model, prompt) for idempotent repeated requests.
///
/// Eviction keeps the entry set identical to a scan-the-map-for-the-oldest
/// implementation, but resolves the victim through a lazily pruned min-heap
/// over `(time, key)`: the full-cache `put` — every delivery once a
/// deployment has served `capacity` distinct prompts — costs one heap push
/// and an amortized pop instead of an O(capacity) scan of the map (the
/// single largest per-delivery cost in the rate-sweep benchmarks before it
/// was indexed). Replaced entries leave stale heap pairs behind; they are
/// discarded on pop by checking the map's current insertion time, so the
/// surviving minimum is exactly the ordered index's. Ties on the insertion
/// time break deterministically by key, where the scan inherited `HashMap`
/// iteration order.
#[derive(Debug)]
pub struct ResponseCache {
    /// Entry time-to-live.
    pub ttl: SimDuration,
    /// Maximum entries retained.
    pub capacity: usize,
    /// Keys are already-mixed 64-bit hashes, so the map skips SipHash and
    /// uses the identity hasher (order is never observed; eviction goes
    /// through `by_age`).
    entries: HashMap<u64, (SimTime, CachedResponse), IdHashBuilder>,
    /// Min-heap eviction index over `(inserted_at, key)`; may hold stale
    /// pairs for replaced entries (pruned on pop, rebuilt when oversized).
    by_age: std::collections::BinaryHeap<std::cmp::Reverse<(SimTime, u64)>>,
    hits: u64,
    misses: u64,
}

impl ResponseCache {
    /// Cache with the given TTL and capacity.
    pub fn new(ttl: SimDuration, capacity: usize) -> Self {
        ResponseCache {
            ttl,
            capacity,
            entries: HashMap::default(),
            by_age: std::collections::BinaryHeap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Hash key for a (model, prompt, max_tokens) triple.
    ///
    /// Runs once per request over the full prompt, so it folds 8 bytes per
    /// step (FxHash-style rotate-xor-multiply) instead of a byte-wise
    /// cryptographic hash; each field's length is folded in so field
    /// boundaries cannot alias.
    pub fn key(model: &str, prompt: &str, max_tokens: u32) -> u64 {
        const K: u64 = 0x517c_c1b7_2722_0a95;
        fn fold(mut h: u64, bytes: &[u8]) -> u64 {
            let mut chunks = bytes.chunks_exact(8);
            for c in &mut chunks {
                let w = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
                h = (h.rotate_left(5) ^ w).wrapping_mul(K);
            }
            let rem = chunks.remainder();
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            let w = u64::from_le_bytes(tail);
            h = (h.rotate_left(5) ^ w).wrapping_mul(K);
            (h.rotate_left(5) ^ bytes.len() as u64).wrapping_mul(K)
        }
        let mut h = fold(0xcbf2_9ce4_8422_2325, model.as_bytes());
        h = fold(h, prompt.as_bytes());
        (h.rotate_left(5) ^ u64::from(max_tokens)).wrapping_mul(K)
    }

    /// Look up a cached response.
    pub fn get(&mut self, key: u64, now: SimTime) -> Option<CachedResponse> {
        match self.entries.get(&key) {
            Some((at, resp)) if now.saturating_since(*at) < self.ttl => {
                self.hits += 1;
                Some(resp.clone())
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert a response.
    pub fn put(&mut self, key: u64, response: CachedResponse, now: SimTime) {
        use std::cmp::Reverse;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            // Evict the oldest entry (smallest insertion time, then key),
            // discarding stale heap pairs whose key was since replaced.
            while let Some(&Reverse((t, oldest))) = self.by_age.peek() {
                self.by_age.pop();
                let live = self.entries.get(&oldest).is_some_and(|&(at, _)| at == t);
                if live {
                    self.entries.remove(&oldest);
                    break;
                }
            }
        }
        self.entries.insert(key, (now, response));
        self.by_age.push(Reverse((now, key)));
        // Replacements leave stale pairs behind; rebuild before they dominate.
        if self.by_age.len() > self.entries.len() * 2 + 64 {
            self.by_age = self
                .entries
                .iter()
                .map(|(&k, &(t, _))| Reverse((t, k)))
                .collect();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use first_auth::{AccessPolicy, Identity, UserId};

    fn auth_setup() -> (AuthService, TokenString) {
        let mut svc = AuthService::new(AccessPolicy::default(), 11);
        svc.enroll_user(&UserId::new("alice"));
        let (tok, _) = svc
            .login(
                &Identity::new("alice", "anl.gov"),
                &[Scope::InferenceApi],
                SimTime::ZERO,
            )
            .unwrap();
        (svc, tok.token)
    }

    #[test]
    fn cache_eliminates_repeat_introspection_latency() {
        let (mut svc, token) = auth_setup();
        let mut mw = AuthMiddleware::new();
        let first = mw
            .authenticate(&mut svc, &token, SimTime::from_secs(1))
            .unwrap();
        assert!(!first.cache_hit);
        assert!(first.added_latency.as_secs_f64() > 0.5);
        let second = mw
            .authenticate(&mut svc, &token, SimTime::from_secs(2))
            .unwrap();
        assert!(second.cache_hit);
        assert_eq!(second.added_latency, SimDuration::ZERO);
        assert_eq!(mw.stats().0, 1);
        // Without the cache every request pays the introspection latency.
        let mut legacy = AuthMiddleware::without_cache();
        let a = legacy
            .authenticate(&mut svc, &token, SimTime::from_secs(3))
            .unwrap();
        let b = legacy
            .authenticate(&mut svc, &token, SimTime::from_secs(4))
            .unwrap();
        assert!(!a.cache_hit && !b.cache_hit);
        assert!(b.added_latency.as_secs_f64() > 0.5);
    }

    #[test]
    fn cache_entries_expire_with_ttl_and_token_expiry() {
        let (mut svc, token) = auth_setup();
        let mut mw = AuthMiddleware::new();
        mw.cache_ttl = SimDuration::from_secs(5);
        mw.authenticate(&mut svc, &token, SimTime::ZERO).unwrap();
        let later = mw
            .authenticate(&mut svc, &token, SimTime::from_secs(10))
            .unwrap();
        assert!(!later.cache_hit, "TTL should have expired the entry");
        // After the token itself expires, even a cached entry must not be used.
        let expired = mw.authenticate(&mut svc, &token, SimTime::from_secs(49 * 3600));
        assert!(matches!(expired, Err(GatewayError::Unauthorized(_))));
    }

    #[test]
    fn invalid_tokens_are_rejected() {
        let (mut svc, _) = auth_setup();
        let mut mw = AuthMiddleware::new();
        let err = mw
            .authenticate(&mut svc, &TokenString::new("bogus"), SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, GatewayError::Unauthorized(_)));
        assert_eq!(mw.stats().2, 1);
    }

    #[test]
    fn rate_limiter_enforces_per_user_window() {
        let rl = RateLimiter::per_minute(3);
        for i in 0..3 {
            assert!(rl.check("alice", SimTime::from_secs(i)));
        }
        assert!(!rl.check("alice", SimTime::from_secs(3)));
        // A different user has an independent budget.
        assert!(rl.check("bob", SimTime::from_secs(3)));
        // After the window slides, alice is admitted again.
        assert!(rl.check("alice", SimTime::from_secs(61)));
        assert_eq!(rl.current_usage("bob"), 1);
    }

    #[test]
    fn unlimited_limiter_never_blocks() {
        let rl = RateLimiter::unlimited();
        for i in 0..10_000 {
            assert!(rl.check("alice", SimTime::from_millis(i)));
        }
    }

    #[test]
    fn rate_limiter_is_thread_safe() {
        use std::sync::Arc;
        let rl = Arc::new(RateLimiter::per_minute(1000));
        let mut handles = Vec::new();
        for t in 0..8 {
            let rl = Arc::clone(&rl);
            handles.push(std::thread::spawn(move || {
                let mut admitted = 0;
                for i in 0..500 {
                    if rl.check("shared-user", SimTime::from_millis(t * 1000 + i)) {
                        admitted += 1;
                    }
                }
                admitted
            }));
        }
        let total: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        // Exactly the window limit is admitted across all threads.
        assert_eq!(total, 1000);
    }

    #[test]
    fn response_cache_hit_and_expiry() {
        let mut cache = ResponseCache::new(SimDuration::from_secs(60), 10);
        let key = ResponseCache::key("llama-70b", "what is the queue policy", 128);
        assert!(cache.get(key, SimTime::ZERO).is_none());
        cache.put(
            key,
            CachedResponse {
                text: "answer".into(),
                completion_tokens: 42,
            },
            SimTime::ZERO,
        );
        assert_eq!(
            cache
                .get(key, SimTime::from_secs(10))
                .unwrap()
                .completion_tokens,
            42
        );
        assert!(cache.get(key, SimTime::from_secs(120)).is_none());
        assert_eq!(cache.stats(), (1, 2));
    }

    #[test]
    fn response_cache_evicts_oldest_when_full() {
        let mut cache = ResponseCache::new(SimDuration::from_hours(1), 2);
        for i in 0..3u64 {
            cache.put(
                i,
                CachedResponse {
                    text: format!("r{i}"),
                    completion_tokens: i as u32,
                },
                SimTime::from_secs(i),
            );
        }
        // Entry 0 (oldest) was evicted; 1 and 2 remain.
        assert!(cache.get(0, SimTime::from_secs(10)).is_none());
        assert!(cache.get(1, SimTime::from_secs(10)).is_some());
        assert!(cache.get(2, SimTime::from_secs(10)).is_some());
    }
}
