//! The FIRST Inference Gateway (§3.1).
//!
//! The main entry point for users: an OpenAI-compatible, Globus-Auth-gated
//! API that validates identities and request bodies, enforces per-user rate
//! limits, caches token introspections and idempotent responses, converts API
//! calls into Globus Compute tasks, routes them across federated endpoints
//! (§4.5), relays results back, and logs every activity for the metrics
//! dashboard.

use crate::api::{
    chat_to_inference, embedding_to_inference, ChatCompletionRequest, EmbeddingRequest,
    GatewayError, Usage,
};
use crate::middleware::{AuthMiddleware, CachedResponse, RateLimiter, ResponseCache};
use crate::registry::{FederationRouter, ModelId, ModelRegistry, RoutedTarget, RoutingPolicy};
use crate::storage::{GatewayMetrics, RequestLog, RequestLogEntry};
use crate::workers::{WorkerPool, WorkerPoolConfig};
use first_auth::{AuthService, TokenString};
use first_chaos::{HealthTracker, ResilienceConfig};
use first_desim::{IdHashBuilder, ScheduledEvent, SimDuration, SimProcess, SimTime, TimingWheel};
use first_fabric::{ClientConfig, ComputeService, EndpointId, FunctionId, TaskId};
use first_serving::InferenceRequest;
use first_telemetry::{FlightRecorder, Phase, PhaseBreakdown, Span, SpanTree, TraceConfig};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Gateway configuration: the knobs the paper's optimization study varies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GatewayConfig {
    /// Worker-pool model (Optimization 3: sync legacy vs async production).
    pub workers: WorkerPoolConfig,
    /// Compute-SDK client behaviour (Optimizations 1 and 2).
    pub client: ClientConfig,
    /// Whether token introspections are cached (Optimization 2).
    pub auth_cache: bool,
    /// Per-user request limit per minute (`u32::MAX` disables limiting).
    pub rate_limit_per_minute: u32,
    /// Whether identical (model, prompt) requests may be served from cache.
    pub response_cache: bool,
    /// Default expected output length when the caller gives no hint.
    pub default_output_tokens: u32,
    /// CPU spent marshalling each response back to the client.
    pub response_cpu: SimDuration,
    /// Resilience layer: failover-aware routing, retries, hedging and the
    /// per-endpoint circuit breaker. Disabled by default (the paper's
    /// proof-of-concept behaviour); [`first_chaos::ResilienceConfig::production`]
    /// turns everything on.
    pub resilience: ResilienceConfig,
    /// Request-lifecycle tracing: 1-in-N sampling into the flight recorder.
    /// Off by default (`sample_every == 0`), in which case the request path
    /// pays a single branch and allocates nothing — the perf gate's
    /// `trace_off/*` metrics hold it to that.
    #[serde(default)]
    pub trace: TraceConfig,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            workers: WorkerPoolConfig::async_production(),
            client: ClientConfig::default(),
            auth_cache: true,
            rate_limit_per_minute: u32::MAX,
            response_cache: true,
            default_output_tokens: 180,
            response_cpu: SimDuration::from_millis(5),
            resilience: ResilienceConfig::default(),
            trace: TraceConfig::default(),
        }
    }
}

impl GatewayConfig {
    /// The configuration before the paper's three optimizations: synchronous
    /// workers, polling result retrieval, no token or connection caching.
    pub fn unoptimized() -> Self {
        GatewayConfig {
            workers: WorkerPoolConfig::sync_legacy(),
            client: ClientConfig::unoptimized(),
            auth_cache: false,
            ..Self::default()
        }
    }
}

/// A finished request as the client experienced it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompletedRequest {
    /// Gateway request id.
    pub request_id: u64,
    /// Submitting user.
    pub user: String,
    /// Target model.
    pub model: String,
    /// Endpoint that served it (empty for cache hits).
    pub endpoint: String,
    /// Arrival at the gateway.
    pub arrived_at: SimTime,
    /// Response delivered to the client.
    pub finished_at: SimTime,
    /// Token accounting.
    pub usage: Usage,
    /// Whether it succeeded.
    pub success: bool,
    /// Whether it was served from the response cache.
    pub cached: bool,
}

impl CompletedRequest {
    /// End-to-end latency.
    pub fn latency(&self) -> SimDuration {
        self.finished_at - self.arrived_at
    }
}

/// Per-model status line returned by the `/jobs` endpoint (§4.3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobsEntry {
    /// Model name.
    pub model: String,
    /// Aggregate state: "running", "starting", "queued" or "stopped".
    pub state: String,
    /// Hot instances across all endpoints.
    pub running_instances: u32,
    /// Instances currently loading.
    pub starting_instances: u32,
    /// Instances waiting for node allocation.
    pub queued_instances: u32,
    /// Endpoints this model is registered on.
    pub endpoints: Vec<String>,
    /// Health label per endpoint ("healthy", "degraded", "unavailable"),
    /// aligned with [`JobsEntry::endpoints`].
    pub endpoint_health: Vec<String>,
}

/// Counts of the gateway's internal queues and slabs, as reported by
/// [`Gateway::queue_snapshot`]. Purely diagnostic: the invariant checker
/// asserts everything except `buffered_responses` is zero once a run drains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GatewayQueueSnapshot {
    /// Accepted dispatches not yet submitted to the fabric.
    pub pending_dispatches: usize,
    /// Tasks submitted and not yet resolved (live slab entries).
    pub in_flight_tasks: usize,
    /// Results collected and waiting for client delivery.
    pub awaiting_delivery: usize,
    /// Total outstanding copies (originals + hedges + scheduled retries)
    /// across all unanswered request ids.
    pub outstanding_copies: u64,
    /// Completed responses buffered for `take_responses`.
    pub buffered_responses: usize,
}

#[derive(Debug, Clone)]
struct PendingDispatch {
    request_id: u64,
    /// Interned model id (resolved once at the API boundary).
    model: ModelId,
    inference: InferenceRequest,
    /// Configured endpoint name (shared with the routing candidate list, so
    /// carrying it costs an `Arc` bump, not an allocation).
    endpoint_name: Arc<str>,
    /// Dense endpoint id; `None` when the registry named an endpoint the
    /// service does not know (submission then fails, as the string path did).
    endpoint: Option<EndpointId>,
    function: FunctionId,
    submit_at: SimTime,
    worker: usize,
    arrived_at: SimTime,
    user: String,
    operation: &'static str,
    prompt_text_key: Option<u64>,
    /// 0 for the first try; incremented per retry.
    attempt: u32,
}

#[derive(Debug, Clone)]
struct InFlight {
    request_id: u64,
    arrived_at: SimTime,
    submitted_at: SimTime,
    user: String,
    /// Interned model id; the name lives in `inference.model` for boundary
    /// output (responses, logs, metrics keys).
    model: ModelId,
    endpoint_name: Arc<str>,
    worker: usize,
    operation: &'static str,
    prompt_tokens: u32,
    prompt_text_key: Option<u64>,
    function: FunctionId,
    inference: InferenceRequest,
    attempt: u32,
    /// Whether this copy already has (or is) a hedge sibling.
    hedged: bool,
}

#[derive(Debug, Clone)]
struct AwaitingDelivery {
    in_flight: InFlight,
    deliver_at: SimTime,
    success: bool,
    completion_tokens: u32,
    /// Fabric/engine-side timestamps for sampled requests; `None` when the
    /// request is not being traced (the common case).
    trace: Option<Box<FabricTimes>>,
}

/// Admission-side timestamps captured in [`Gateway::accept`] for a sampled
/// request, held until the request delivers and its span tree is assembled.
#[derive(Debug, Clone, Copy)]
struct GatewayTimes {
    arrived_at: SimTime,
    started_at: SimTime,
    dispatch_ready_at: SimTime,
    submit_at: SimTime,
}

/// Fabric and engine timestamps of the winning attempt, captured in
/// [`Gateway::collect_results`] while the task record is still at hand.
#[derive(Debug, Clone, Copy)]
struct FabricTimes {
    submitted_at: SimTime,
    dispatched_at: Option<SimTime>,
    delivered_at: Option<SimTime>,
    accepted_at: Option<SimTime>,
    first_token_at: Option<SimTime>,
    finished_at: SimTime,
    available_at: SimTime,
    observed_at: SimTime,
}

/// The FIRST gateway.
pub struct Gateway {
    config: GatewayConfig,
    auth: AuthService,
    auth_mw: AuthMiddleware,
    rate_limiter: RateLimiter,
    response_cache: ResponseCache,
    registry: ModelRegistry,
    router: FederationRouter,
    service: ComputeService,
    workers: WorkerPool,
    log: RequestLog,
    metrics: GatewayMetrics,
    /// Not-yet-submitted dispatches, bucketed by `submit_at` on a timing
    /// wheel: `peek_time` makes the per-event due check O(1), and a due
    /// batch is drained without touching the undue backlog — at
    /// million-request scale the old `Vec` rebuild scan dominated the run.
    /// The wheel's insertion sequence doubles as the arrival order the
    /// dispatch loop must preserve (see `submit_due`).
    pending: TimingWheel<PendingDispatch>,
    /// Completed tasks waiting for their client-observed delivery instant,
    /// bucketed by `deliver_at` (same structure as `pending`).
    awaiting: TimingWheel<AwaitingDelivery>,
    /// Reusable drain buffer for `submit_due` (batch capacity survives
    /// between advances, keeping the due path allocation-free).
    submit_buf: Vec<ScheduledEvent<PendingDispatch>>,
    /// Reusable drain buffer for `deliver_due`.
    deliver_buf: Vec<ScheduledEvent<AwaitingDelivery>>,
    /// In-flight tasks, indexed by `TaskId - 1` (the service assigns task ids
    /// densely from 1, and this gateway is the service's only client). A slab
    /// instead of a hash map: insertion and removal are a bounds-checked
    /// index, and the hedge scan walks memory in task order. Entries are
    /// boxed so a resolved slot costs one pointer, not an inline `InFlight`,
    /// over the run's whole task history.
    in_flight: Vec<Option<Box<InFlight>>>,
    in_flight_count: usize,
    /// Index of the first possibly-live slab slot: tasks resolve roughly in
    /// task order, so advancing this watermark keeps the hedge scans O(live)
    /// instead of O(tasks ever issued).
    in_flight_first_live: usize,
    responses: Vec<CompletedRequest>,
    /// Whether the endpoint (by dense id) has been connected to before —
    /// replaces a name-keyed `HashSet` that hashed an endpoint name per
    /// request.
    connected_endpoints: Vec<bool>,
    /// First-connection tracking for endpoints the service does not know
    /// (requests to them fail at submission, but the connection-overhead
    /// model still distinguishes first contact per configured name, exactly
    /// as the name-keyed path did). Touched only in misconfigured
    /// deployments.
    connected_unresolved: HashSet<Arc<str>>,
    health: HealthTracker,
    /// Request ids answered while sibling copies were still racing (guards
    /// against a hedge sibling delivering twice). An id is dropped when its
    /// last copy resolves, so the set stays bounded by concurrent hedges.
    delivered: HashSet<u64, IdHashBuilder>,
    /// Outstanding copies (original + hedges + scheduled retries) per
    /// still-unanswered request id, indexed by `request_id` (dense from 1).
    outstanding: Vec<u32>,
    /// Latest instant the gateway has been advanced to (used for health
    /// staleness in `/jobs` and the dashboard).
    last_advance: SimTime,
    /// Flight recorder for sampled request span trees. Disabled by default;
    /// see [`GatewayConfig::trace`].
    recorder: FlightRecorder,
    /// Admission-side timestamps of sampled requests still in flight, keyed
    /// by request id. Empty whenever tracing is off, so the delivery path's
    /// guard is a single `is_empty` branch.
    trace_pending: HashMap<u64, GatewayTimes, IdHashBuilder>,
    /// Host wall-clock instant the gateway was built — the denominator of the
    /// harness-health metrics (sim wall-clock, events/sec) on the dashboard.
    started_wall: std::time::Instant,
    /// Thread-local kernel event count at construction: `harness_health`
    /// reports the delta, so a binary that builds several gateways in
    /// sequence does not attribute earlier deployments' events to this one.
    events_at_start: u64,
    next_request_id: u64,
    inference_fn: FunctionId,
    embedding_fn: FunctionId,
}

impl Gateway {
    /// Build a gateway over an auth service, a compute service and a model
    /// registry.
    pub fn new(
        config: GatewayConfig,
        auth: AuthService,
        service: ComputeService,
        registry: ModelRegistry,
    ) -> Self {
        let inference_fn = service
            .registry()
            .find_by_name("run_vllm_inference")
            .map(|f| f.id)
            .unwrap_or(FunctionId(0));
        let embedding_fn = service
            .registry()
            .find_by_name("run_embedding")
            .map(|f| f.id)
            .unwrap_or(FunctionId(0));
        let auth_mw = if config.auth_cache {
            AuthMiddleware::new()
        } else {
            AuthMiddleware::without_cache()
        };
        let health = HealthTracker::new(config.resilience.breaker.clone());
        let recorder = FlightRecorder::new(config.trace);
        Gateway {
            health,
            recorder,
            trace_pending: HashMap::default(),
            rate_limiter: RateLimiter::per_minute(config.rate_limit_per_minute),
            response_cache: ResponseCache::new(SimDuration::from_mins(30), 4096),
            workers: WorkerPool::new(config.workers),
            auth_mw,
            config,
            auth,
            registry,
            router: FederationRouter::new(),
            service,
            log: RequestLog::new(),
            metrics: GatewayMetrics::new(),
            pending: TimingWheel::new(),
            awaiting: TimingWheel::new(),
            submit_buf: Vec::new(),
            deliver_buf: Vec::new(),
            in_flight: Vec::new(),
            in_flight_count: 0,
            in_flight_first_live: 0,
            responses: Vec::new(),
            connected_endpoints: Vec::new(),
            connected_unresolved: HashSet::new(),
            delivered: HashSet::default(),
            outstanding: Vec::new(),
            last_advance: SimTime::ZERO,
            started_wall: std::time::Instant::now(),
            events_at_start: first_desim::stats::kernel::events_processed(),
            next_request_id: 1,
            inference_fn,
            embedding_fn,
        }
    }

    /// The gateway configuration.
    pub fn config(&self) -> &GatewayConfig {
        &self.config
    }

    /// The auth service (e.g. to enroll users or issue tokens in tests).
    pub fn auth_mut(&mut self) -> &mut AuthService {
        &mut self.auth
    }

    /// The compute service (e.g. to prewarm instances).
    pub fn service_mut(&mut self) -> &mut ComputeService {
        &mut self.service
    }

    /// The compute service, read-only.
    pub fn service(&self) -> &ComputeService {
        &self.service
    }

    /// The model registry.
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// Switch the federation router to a different endpoint-selection policy
    /// (§7 "improve scheduling"; the default is the paper's §4.5 algorithm).
    pub fn set_routing_policy(&mut self, policy: RoutingPolicy) {
        self.router = FederationRouter::with_policy(policy);
    }

    /// The federation routing policy currently in effect.
    pub fn routing_policy(&self) -> RoutingPolicy {
        self.router.policy()
    }

    /// Mutable model registry (dashboard model registration).
    pub fn registry_mut(&mut self) -> &mut ModelRegistry {
        &mut self.registry
    }

    /// The per-endpoint health tracker (breaker states, success/failure
    /// counts) the failover-aware router consults.
    pub fn health(&self) -> &HealthTracker {
        &self.health
    }

    /// Latest instant the gateway has been advanced to.
    pub fn last_advance(&self) -> SimTime {
        self.last_advance
    }

    /// Harness health: `(wall-clock seconds since construction, simulation
    /// events processed on this thread, events per wall second)`. The event
    /// count comes from the desim kernel hook, so it covers every substrate
    /// the deployment drives, not just the gateway.
    pub fn harness_health(&self) -> (f64, u64, f64) {
        let wall = self.started_wall.elapsed().as_secs_f64();
        // Delta since construction; saturating because a `SimMeter::start`
        // after construction resets the thread counter below our snapshot.
        let events =
            first_desim::stats::kernel::events_processed().saturating_sub(self.events_at_start);
        let rate = if wall > 0.0 {
            events as f64 / wall
        } else {
            0.0
        };
        (wall, events, rate)
    }

    /// The request log.
    pub fn log(&self) -> &RequestLog {
        &self.log
    }

    /// Gateway metrics, read-only (the monitoring export path).
    pub fn metrics(&self) -> &GatewayMetrics {
        &self.metrics
    }

    /// Gateway metrics.
    pub fn metrics_mut(&mut self) -> &mut GatewayMetrics {
        &mut self.metrics
    }

    /// The flight recorder holding the sampled request span trees.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Mutable flight recorder (e.g. to drain the retained trees after a run).
    pub fn recorder_mut(&mut self) -> &mut FlightRecorder {
        &mut self.recorder
    }

    /// Aggregate the retained span trees into a phase-latency breakdown.
    /// `None` when tracing is disabled or nothing has been sampled yet.
    pub fn phase_breakdown(&self) -> Option<PhaseBreakdown> {
        if self.recorder.is_empty() {
            None
        } else {
            Some(self.recorder.breakdown())
        }
    }

    /// Drain completed responses.
    pub fn take_responses(&mut self) -> Vec<CompletedRequest> {
        std::mem::take(&mut self.responses)
    }

    /// Whether all accepted requests have been answered.
    pub fn is_drained(&self) -> bool {
        self.pending.is_empty()
            && self.in_flight_count == 0
            && self.awaiting.is_empty()
            && self.service.is_drained()
    }

    /// Cheap O(1) congestion signal: requests admitted but not yet answered
    /// (pending dispatches plus in-flight tasks). The sharded front tier
    /// consults this per submission for its spillover decision, so unlike
    /// [`Gateway::queue_snapshot`] it must not walk any slab.
    pub fn load_depth(&self) -> usize {
        self.pending.len() + self.in_flight_count
    }

    /// Diagnostic counts of the gateway's internal queues and slabs — what
    /// the invariant checker inspects after a run ([`crate::invariants`]).
    /// On a drained gateway every count must be zero except
    /// `buffered_responses` (whatever the driver has not collected yet).
    pub fn queue_snapshot(&self) -> GatewayQueueSnapshot {
        GatewayQueueSnapshot {
            pending_dispatches: self.pending.len(),
            in_flight_tasks: self.in_flight_count,
            awaiting_delivery: self.awaiting.len(),
            outstanding_copies: self.outstanding.iter().map(|&c| c as u64).sum(),
            buffered_responses: self.responses.len(),
        }
    }

    #[inline]
    fn in_flight_insert(&mut self, task: TaskId, entry: InFlight) {
        let idx = (task.0 as usize).saturating_sub(1);
        if idx >= self.in_flight.len() {
            self.in_flight.resize_with(idx + 1, || None);
        }
        if self.in_flight[idx].replace(Box::new(entry)).is_none() {
            self.in_flight_count += 1;
        }
    }

    #[inline]
    fn in_flight_remove(&mut self, task: TaskId) -> Option<Box<InFlight>> {
        let idx = (task.0 as usize).wrapping_sub(1);
        let entry = self.in_flight.get_mut(idx).and_then(Option::take);
        if entry.is_some() {
            self.in_flight_count -= 1;
            // Advance the live watermark past the resolved prefix (amortized
            // O(1): each slot is skipped once over the gateway's lifetime).
            if idx == self.in_flight_first_live {
                while self
                    .in_flight
                    .get(self.in_flight_first_live)
                    .is_some_and(Option::is_none)
                {
                    self.in_flight_first_live += 1;
                }
            }
        }
        entry
    }

    /// Iterate live in-flight entries with their task ids, in task order,
    /// skipping the fully resolved prefix.
    fn in_flight_iter(&self) -> impl Iterator<Item = (TaskId, &InFlight)> {
        self.in_flight[self.in_flight_first_live..]
            .iter()
            .enumerate()
            .filter_map(move |(i, f)| {
                f.as_deref()
                    .map(|f| (TaskId((self.in_flight_first_live + i) as u64 + 1), f))
            })
    }

    /// One outstanding-copy counter slot per request id (dense from 1).
    #[inline]
    fn outstanding_slot(&mut self, request_id: u64) -> &mut u32 {
        let idx = (request_id as usize).saturating_sub(1);
        if idx >= self.outstanding.len() {
            self.outstanding.resize(idx + 1, 0);
        }
        &mut self.outstanding[idx]
    }

    fn authorize(
        &mut self,
        token: &TokenString,
        model: &str,
        now: SimTime,
    ) -> Result<(String, SimDuration), GatewayError> {
        let outcome = self.auth_mw.authenticate(&mut self.auth, token, now)?;
        let user = outcome.identity.user.clone();
        self.auth
            .policy()
            .check_model_access(&user, model, self.auth.groups())
            .map_err(|e| GatewayError::Forbidden(e.to_string()))?;
        if !self.rate_limiter.check(&user.0, now) {
            return Err(GatewayError::RateLimited);
        }
        Ok((user.0, outcome.added_latency))
    }

    /// Resolve a model name to its id and routing target — the API-boundary
    /// step; everything downstream carries ids.
    fn route_model(
        &self,
        model: &str,
        now: SimTime,
    ) -> Result<(ModelId, RoutedTarget), GatewayError> {
        let Some(id) = self.registry.model_id(model) else {
            return Err(GatewayError::ModelNotFound(model.to_string()));
        };
        let target = if self.config.resilience.enabled {
            self.router.route_target_with_health(
                &self.registry,
                &self.service,
                id,
                &self.health,
                now,
            )
        } else {
            self.router.route_target(&self.registry, &self.service, id)
        };
        match target {
            Some(target) => Ok((id, target)),
            None => Err(GatewayError::ModelNotFound(model.to_string())),
        }
    }

    fn connection_overhead(&mut self, target: &RoutedTarget) -> SimDuration {
        let connected = match target.endpoint {
            Some(id) => {
                let idx = id.index();
                if idx >= self.connected_endpoints.len() {
                    self.connected_endpoints.resize(idx + 1, false);
                }
                std::mem::replace(&mut self.connected_endpoints[idx], true)
            }
            None => !self.connected_unresolved.insert(Arc::clone(&target.name)),
        };
        self.config.client.submit_overhead(!connected)
    }

    #[allow(clippy::too_many_arguments)]
    fn accept(
        &mut self,
        model: ModelId,
        inference: InferenceRequest,
        target: RoutedTarget,
        function: FunctionId,
        user: String,
        operation: &'static str,
        auth_latency: SimDuration,
        prompt_text_key: Option<u64>,
        now: SimTime,
    ) -> u64 {
        let request_id = self.next_request_id;
        self.next_request_id += 1;
        let admission = self.workers.admit(now);
        let connection = self.connection_overhead(&target);
        let submit_at = admission.dispatch_ready_at + auth_latency + connection;
        if self.recorder.should_sample() {
            self.trace_pending.insert(
                request_id,
                GatewayTimes {
                    arrived_at: now,
                    started_at: admission.started_at,
                    dispatch_ready_at: admission.dispatch_ready_at,
                    submit_at,
                },
            );
        }
        *self.outstanding_slot(request_id) = 1;
        self.pending.push(
            submit_at,
            PendingDispatch {
                request_id,
                model,
                inference,
                endpoint_name: target.name,
                endpoint: target.endpoint,
                function,
                submit_at,
                worker: admission.worker,
                arrived_at: now,
                user,
                operation,
                prompt_text_key,
                attempt: 0,
            },
        );
        request_id
    }

    /// Handle a `/v1/chat/completions` call. `expected_output_tokens` is the
    /// workload's ground-truth response length (the simulation equivalent of
    /// "how long the model happened to answer"); `None` uses the default.
    pub fn chat_completions(
        &mut self,
        request: &ChatCompletionRequest,
        token: &TokenString,
        expected_output_tokens: Option<u32>,
        now: SimTime,
    ) -> Result<u64, GatewayError> {
        self.metrics.on_received("chat_completions");
        if let Err(e) = request.validate() {
            self.metrics.on_rejected();
            return Err(e);
        }
        let (user, auth_latency) = match self.authorize(token, &request.model, now) {
            Ok(v) => v,
            Err(e) => {
                self.metrics.on_rejected();
                return Err(e);
            }
        };
        // Response cache: only textual prompts are cacheable.
        let cache_key = request.messages.first().and_then(|m| {
            if self.config.response_cache && !m.content.is_empty() {
                Some(ResponseCache::key(
                    &request.model,
                    &m.content,
                    request.max_tokens,
                ))
            } else {
                None
            }
        });
        if let Some(key) = cache_key {
            if let Some(hit) = self.response_cache.get(key, now) {
                let request_id = self.next_request_id;
                self.next_request_id += 1;
                let finished = now + self.config.response_cpu;
                let usage = Usage::new(request.prompt_token_estimate(), hit.completion_tokens);
                self.metrics
                    .on_completed(&request.model, finished - now, hit.completion_tokens);
                self.record_log(
                    request_id,
                    &user,
                    &request.model,
                    "",
                    "chat_completions",
                    now,
                    finished,
                    usage,
                    true,
                );
                if self.recorder.should_sample() {
                    // Cache hits never leave the gateway: the tree is the
                    // root plus the response-marshalling span.
                    self.recorder.record(SpanTree {
                        request_id,
                        tenant: user.clone(),
                        model: request.model.clone(),
                        endpoint: String::new(),
                        success: true,
                        cached: true,
                        spans: vec![
                            Span {
                                phase: Phase::Request,
                                start: now,
                                end: finished,
                                parent: None,
                            },
                            Span {
                                phase: Phase::Deliver,
                                start: now,
                                end: finished,
                                parent: Some(0),
                            },
                        ],
                    });
                }
                self.responses.push(CompletedRequest {
                    request_id,
                    user,
                    model: request.model.clone(),
                    endpoint: String::new(),
                    arrived_at: now,
                    finished_at: finished,
                    usage,
                    success: true,
                    cached: true,
                });
                return Ok(request_id);
            }
        }
        let (model, target) = match self.route_model(&request.model, now) {
            Ok(d) => d,
            Err(e) => {
                self.metrics.on_rejected();
                return Err(e);
            }
        };
        let output = expected_output_tokens.unwrap_or(self.config.default_output_tokens);
        let inference = chat_to_inference(self.next_request_id, request, &user, output);
        Ok(self.accept(
            model,
            inference,
            target,
            self.inference_fn,
            user,
            "chat_completions",
            auth_latency,
            cache_key,
            now,
        ))
    }

    /// Handle a `/v1/embeddings` call.
    pub fn embeddings(
        &mut self,
        request: &EmbeddingRequest,
        token: &TokenString,
        now: SimTime,
    ) -> Result<u64, GatewayError> {
        self.metrics.on_received("embeddings");
        if request.input.is_empty() {
            self.metrics.on_rejected();
            return Err(GatewayError::InvalidRequest(
                "input must not be empty".into(),
            ));
        }
        let (user, auth_latency) = match self.authorize(token, &request.model, now) {
            Ok(v) => v,
            Err(e) => {
                self.metrics.on_rejected();
                return Err(e);
            }
        };
        let (model, target) = match self.route_model(&request.model, now) {
            Ok(d) => d,
            Err(e) => {
                self.metrics.on_rejected();
                return Err(e);
            }
        };
        let inference = embedding_to_inference(self.next_request_id, request, &user);
        Ok(self.accept(
            model,
            inference,
            target,
            self.embedding_fn,
            user,
            "embeddings",
            auth_latency,
            None,
            now,
        ))
    }

    /// The `/jobs` endpoint: per-model status across all federated endpoints.
    pub fn jobs_status(&self) -> Vec<JobsEntry> {
        self.registry
            .models()
            .into_iter()
            .map(|model| {
                let endpoints = self
                    .registry
                    .endpoints_for(&model)
                    .map(|e| e.to_vec())
                    .unwrap_or_default();
                let mut running = 0;
                let mut starting = 0;
                let mut queued = 0;
                for name in &endpoints {
                    if let Some(ep) = self.service.endpoint(name) {
                        let s = ep.model_status(&model);
                        running += s.running;
                        starting += s.starting;
                        queued += s.queued;
                    }
                }
                let state = if running > 0 {
                    "running"
                } else if starting > 0 {
                    "starting"
                } else if queued > 0 {
                    "queued"
                } else {
                    "stopped"
                };
                let endpoint_health = endpoints
                    .iter()
                    .map(|e| self.health.state(e, self.last_advance).label().to_string())
                    .collect();
                JobsEntry {
                    model,
                    state: state.to_string(),
                    running_instances: running,
                    starting_instances: starting,
                    queued_instances: queued,
                    endpoints,
                    endpoint_health,
                }
            })
            .collect()
    }

    #[allow(clippy::too_many_arguments)]
    fn record_log(
        &mut self,
        request_id: u64,
        user: &str,
        model: &str,
        endpoint: &str,
        operation: &str,
        arrived_at: SimTime,
        finished_at: SimTime,
        usage: Usage,
        success: bool,
    ) {
        self.log.record(RequestLogEntry {
            request_id,
            user: user.to_string(),
            model: model.to_string(),
            endpoint: endpoint.to_string(),
            operation: operation.to_string(),
            arrived_at,
            finished_at,
            prompt_tokens: usage.prompt_tokens,
            completion_tokens: usage.completion_tokens,
            success,
            batch: false,
        });
    }

    /// Assemble and record the span tree for a sampled request that reached
    /// its final outcome. Consumes the admission-side timestamps (a no-op for
    /// unsampled requests); a `None` fabric leg yields a gateway-only tree
    /// (requests that failed at submission).
    #[allow(clippy::too_many_arguments)]
    fn record_trace(
        &mut self,
        request_id: u64,
        tenant: &str,
        model: &str,
        endpoint: &str,
        success: bool,
        fabric: Option<&FabricTimes>,
        finished_at: SimTime,
    ) {
        let Some(g) = self.trace_pending.remove(&request_id) else {
            return;
        };
        fn leaf(spans: &mut Vec<Span>, phase: Phase, start: SimTime, end: SimTime) {
            spans.push(Span {
                phase,
                start,
                end,
                parent: Some(0),
            });
        }
        let mut spans = Vec::with_capacity(14);
        spans.push(Span {
            phase: Phase::Request,
            start: g.arrived_at,
            end: finished_at,
            parent: None,
        });
        // Routing happens synchronously at the API boundary: a zero-length
        // marker span at arrival.
        leaf(&mut spans, Phase::Route, g.arrived_at, g.arrived_at);
        leaf(&mut spans, Phase::QueueWait, g.arrived_at, g.started_at);
        leaf(
            &mut spans,
            Phase::Admission,
            g.started_at,
            g.dispatch_ready_at,
        );
        leaf(&mut spans, Phase::Submit, g.dispatch_ready_at, g.submit_at);
        if let Some(f) = fabric {
            // The fabric leg belongs to the *winning* attempt: for retried
            // or hedged requests its spans start at that attempt's submit
            // time, and the gap back to the first attempt shows up as idle
            // time rather than being mis-attributed to a phase.
            if let Some(dispatched) = f.dispatched_at {
                leaf(&mut spans, Phase::Dispatch, f.submitted_at, dispatched);
                if let Some(delivered) = f.delivered_at {
                    leaf(&mut spans, Phase::Transit, dispatched, delivered);
                    if let Some(accepted) = f.accepted_at {
                        leaf(&mut spans, Phase::BacklogWait, delivered, accepted);
                        // Slot assignment is instantaneous in the model: a
                        // zero-length marker at engine admission.
                        leaf(&mut spans, Phase::Assignment, accepted, accepted);
                        if let Some(first_token) = f.first_token_at {
                            leaf(&mut spans, Phase::Prefill, accepted, first_token);
                            leaf(&mut spans, Phase::Decode, first_token, f.finished_at);
                        }
                    }
                }
            }
            leaf(&mut spans, Phase::Relay, f.finished_at, f.available_at);
            leaf(&mut spans, Phase::Observe, f.available_at, f.observed_at);
            leaf(&mut spans, Phase::Deliver, f.observed_at, finished_at);
        }
        self.recorder.record(SpanTree {
            request_id,
            tenant: tenant.to_string(),
            model: model.to_string(),
            endpoint: endpoint.to_string(),
            success,
            cached: false,
            spans,
        });
    }

    fn submit_due(&mut self, now: SimTime) {
        // Most advances have nothing to submit; the wheel's cached earliest
        // deadline makes that check O(1) (no scan of the undue backlog).
        if self.pending.peek_time().is_none_or(|t| t > now) {
            return;
        }
        // Drain the due batch, then re-sort it into wheel-insertion order:
        // the dispatch loop historically walked the pending buffer in
        // arrival order (not deadline order), and replay determinism pins
        // that processing order.
        let mut due = std::mem::take(&mut self.submit_buf);
        self.pending.drain_due_into(now, &mut due);
        due.sort_unstable_by_key(|e| e.seq);
        let mut retries: Vec<PendingDispatch> = Vec::new();
        for ev in due.drain(..) {
            let p = ev.payload;
            {
                let submitted = match p.endpoint {
                    Some(endpoint) => self.service.submit_to(
                        p.function,
                        endpoint,
                        p.inference.clone(),
                        p.submit_at,
                    ),
                    None => Err(first_fabric::FabricError::UnknownEndpoint(
                        p.endpoint_name.to_string(),
                    )),
                };
                match submitted {
                    Ok(task) => {
                        self.in_flight_insert(
                            task,
                            InFlight {
                                request_id: p.request_id,
                                arrived_at: p.arrived_at,
                                submitted_at: p.submit_at,
                                user: p.user,
                                model: p.model,
                                endpoint_name: p.endpoint_name,
                                worker: p.worker,
                                operation: p.operation,
                                prompt_tokens: p.inference.prompt_tokens,
                                prompt_text_key: p.prompt_text_key,
                                function: p.function,
                                inference: p.inference,
                                attempt: p.attempt,
                                hedged: false,
                            },
                        );
                    }
                    Err(e) => {
                        // This copy is resolved; decide between retry and a
                        // failed response.
                        let copies_left = self.resolve_copy(p.request_id);
                        if self.delivered.contains(&p.request_id) {
                            if copies_left == 0 {
                                self.delivered.remove(&p.request_id);
                            }
                            continue;
                        }
                        if copies_left > 0 {
                            continue;
                        }
                        if self.config.resilience.enabled
                            && p.attempt < self.config.resilience.retry.max_retries
                        {
                            if let Some(retry) = self.make_retry(
                                p.request_id,
                                p.model,
                                &p.inference,
                                p.function,
                                &p.endpoint_name,
                                p.worker,
                                p.arrived_at,
                                p.user.clone(),
                                p.operation,
                                p.prompt_text_key,
                                p.attempt,
                                now,
                            ) {
                                retries.push(retry);
                                continue;
                            }
                        }
                        self.metrics.on_failed();
                        self.workers.release(p.worker, now);
                        if !self.trace_pending.is_empty() {
                            let endpoint_name = Arc::clone(&p.endpoint_name);
                            self.record_trace(
                                p.request_id,
                                &p.user,
                                &p.inference.model,
                                &endpoint_name,
                                false,
                                None,
                                now,
                            );
                        }
                        self.responses.push(CompletedRequest {
                            request_id: p.request_id,
                            user: p.user,
                            model: p.inference.model.clone(),
                            endpoint: p.endpoint_name.to_string(),
                            arrived_at: p.arrived_at,
                            finished_at: now,
                            usage: Usage::default(),
                            success: false,
                            cached: false,
                        });
                        let _ = e;
                    }
                }
            }
        }
        self.submit_buf = due;
        // Retries re-enter the wheel after the batch, so they order behind
        // every already-pending dispatch — exactly where the old buffer
        // appended them.
        for r in retries {
            self.pending.push(r.submit_at, r);
        }
    }

    /// Mark one outstanding copy of `request_id` as resolved; returns how
    /// many copies remain in flight or pending.
    fn resolve_copy(&mut self, request_id: u64) -> u32 {
        match self
            .outstanding
            .get_mut((request_id as usize).wrapping_sub(1))
        {
            Some(count) => {
                *count = count.saturating_sub(1);
                *count
            }
            None => 0,
        }
    }

    /// Build the retry dispatch for a failed copy, routed away from the
    /// endpoint that failed it and delayed by the exponential backoff.
    #[allow(clippy::too_many_arguments)]
    fn make_retry(
        &mut self,
        request_id: u64,
        model: ModelId,
        inference: &InferenceRequest,
        function: FunctionId,
        failed_endpoint: &str,
        worker: usize,
        arrived_at: SimTime,
        user: String,
        operation: &'static str,
        prompt_text_key: Option<u64>,
        attempt: u32,
        now: SimTime,
    ) -> Option<PendingDispatch> {
        let target = self.router.route_target_for_retry(
            &self.registry,
            &self.service,
            model,
            &self.health,
            now,
            failed_endpoint,
        )?;
        self.metrics.on_retry();
        if target.name.as_ref() != failed_endpoint {
            self.metrics.on_failover();
        }
        let backoff = self.config.resilience.retry.backoff(attempt);
        *self.outstanding_slot(request_id) += 1;
        Some(PendingDispatch {
            request_id,
            model,
            inference: inference.clone(),
            endpoint_name: target.name,
            endpoint: target.endpoint,
            function,
            submit_at: now + backoff,
            worker,
            arrived_at,
            user,
            operation,
            prompt_text_key,
            attempt: attempt + 1,
        })
    }

    /// Hedge requests that have been in flight longer than the configured
    /// deadline: submit a duplicate to a different allowed endpoint and let
    /// the first response win. The duplicate rides the original's worker
    /// slot, so no extra gateway-side admission cost is modelled.
    fn hedge_due(&mut self, now: SimTime) {
        if !self.config.resilience.enabled {
            return;
        }
        let Some(hedge_after) = self.config.resilience.hedge_after else {
            return;
        };
        // Slab order is task order, so no sort is needed to keep hedging
        // deterministic.
        let candidates: Vec<TaskId> = self
            .in_flight_iter()
            .filter(|(_, f)| !f.hedged && now.saturating_since(f.submitted_at) >= hedge_after)
            .filter(|(_, f)| !self.delivered.contains(&f.request_id))
            .map(|(t, _)| t)
            .collect();
        for task in candidates {
            let idx = (task.0 as usize).wrapping_sub(1);
            let Some(f) = self.in_flight.get(idx).and_then(Option::as_deref) else {
                continue;
            };
            let (request_id, model, endpoint_name) =
                (f.request_id, f.model, Arc::clone(&f.endpoint_name));
            // Whatever happens below, this copy's hedge decision is final:
            // an unmarked candidate with an elapsed deadline would make
            // `next_event_time` return the same past instant forever and
            // livelock every event-loop driver.
            if let Some(f) = self.in_flight.get_mut(idx).and_then(|s| s.as_deref_mut()) {
                f.hedged = true;
            }
            let Some(target) = self.router.route_target_for_retry(
                &self.registry,
                &self.service,
                model,
                &self.health,
                now,
                &endpoint_name,
            ) else {
                continue;
            };
            if target.name == endpoint_name {
                // No alternative site: duplicating onto the same stuck
                // endpoint would only add load.
                continue;
            }
            let f = self
                .in_flight
                .get(idx)
                .and_then(Option::as_deref)
                .expect("candidate exists")
                .clone();
            let submitted = match target.endpoint {
                Some(endpoint) => {
                    self.service
                        .submit_to(f.function, endpoint, f.inference.clone(), now)
                }
                None => Err(first_fabric::FabricError::UnknownEndpoint(
                    target.name.to_string(),
                )),
            };
            if let Ok(new_task) = submitted {
                self.metrics.on_hedge();
                *self.outstanding_slot(request_id) += 1;
                self.in_flight_insert(
                    new_task,
                    InFlight {
                        submitted_at: now,
                        endpoint_name: target.name,
                        hedged: true,
                        ..f
                    },
                );
            }
        }
    }

    fn collect_results(&mut self, now: SimTime) {
        for result in self.service.poll_results(now) {
            let Some(in_flight) = self.in_flight_remove(result.task) else {
                continue;
            };
            let in_flight = *in_flight;
            let available = self
                .service
                .task(result.task)
                .and_then(|t| t.result_available_at)
                .unwrap_or(result.finished_at);
            let observed = self
                .config
                .client
                .observe_result_at(in_flight.submitted_at, available);
            let deliver_at = observed + self.config.response_cpu;
            let completion_tokens = result
                .completion
                .as_ref()
                .map(|c| c.output_tokens)
                .unwrap_or(0);
            // Sampled request: capture the fabric/engine timestamps while the
            // task record is still at hand (the slab entry is gone by
            // delivery time). `is_empty` keeps the untraced hot path to one
            // branch.
            let trace = if !self.trace_pending.is_empty()
                && self.trace_pending.contains_key(&in_flight.request_id)
            {
                let record = self.service.task(result.task);
                Some(Box::new(FabricTimes {
                    submitted_at: in_flight.submitted_at,
                    dispatched_at: record.and_then(|t| t.dispatched_at),
                    delivered_at: record.and_then(|t| t.delivered_at),
                    accepted_at: result.completion.as_ref().map(|c| c.accepted_at),
                    first_token_at: result.completion.as_ref().map(|c| c.first_token_at),
                    finished_at: result.finished_at,
                    available_at: available,
                    observed_at: observed,
                }))
            } else {
                None
            };
            self.awaiting.push(
                deliver_at,
                AwaitingDelivery {
                    in_flight,
                    deliver_at,
                    success: result.success,
                    completion_tokens,
                    trace,
                },
            );
        }
    }

    fn deliver_due(&mut self, now: SimTime) {
        // Same early-out as submit_due: deliveries are sparse relative to
        // simulation events, so don't touch the wheel when nothing is due.
        if self.awaiting.peek_time().is_none_or(|t| t > now) {
            return;
        }
        // Same order contract as submit_due: deliver in wheel-insertion
        // (i.e. result-collection) order, not deadline order.
        let mut due = std::mem::take(&mut self.deliver_buf);
        self.awaiting.drain_due_into(now, &mut due);
        due.sort_unstable_by_key(|e| e.seq);
        let mut retries: Vec<PendingDispatch> = Vec::new();
        for ev in due.drain(..) {
            let a = ev.payload;
            {
                let request_id = a.in_flight.request_id;
                let copies_left = self.resolve_copy(request_id);
                // Every copy's outcome is real signal about its endpoint.
                let endpoint_name = Arc::clone(&a.in_flight.endpoint_name);
                self.observe_outcome(&endpoint_name, a.success, a.deliver_at);
                // A hedge sibling already answered: swallow this copy. Once
                // the last copy resolves, the id is no longer needed — the
                // set stays bounded by the number of in-flight hedges rather
                // than growing with the deployment's lifetime.
                if self.delivered.contains(&request_id) {
                    if copies_left == 0 {
                        self.delivered.remove(&request_id);
                    }
                    continue;
                }
                if !a.success && self.config.resilience.enabled {
                    // Another copy (hedge or retry) is still racing: let it
                    // answer instead of reporting a failure.
                    if copies_left > 0 {
                        continue;
                    }
                    if a.in_flight.attempt < self.config.resilience.retry.max_retries {
                        if let Some(retry) = self.make_retry(
                            request_id,
                            a.in_flight.model,
                            &a.in_flight.inference,
                            a.in_flight.function,
                            &endpoint_name,
                            a.in_flight.worker,
                            a.in_flight.arrived_at,
                            a.in_flight.user.clone(),
                            a.in_flight.operation,
                            a.in_flight.prompt_text_key,
                            a.in_flight.attempt,
                            a.deliver_at,
                        ) {
                            retries.push(retry);
                            continue;
                        }
                    }
                }
                let usage = Usage::new(a.in_flight.prompt_tokens, a.completion_tokens);
                if copies_left > 0 {
                    // Sibling copies are still racing; remember the answer so
                    // their eventual results are swallowed.
                    self.delivered.insert(request_id);
                }
                self.workers.release(a.in_flight.worker, a.deliver_at);
                if a.success {
                    self.metrics.on_completed(
                        &a.in_flight.inference.model,
                        a.deliver_at - a.in_flight.arrived_at,
                        a.completion_tokens,
                    );
                    if let Some(key) = a.in_flight.prompt_text_key {
                        self.response_cache.put(
                            key,
                            CachedResponse {
                                text: String::new(),
                                completion_tokens: a.completion_tokens,
                            },
                            a.deliver_at,
                        );
                    }
                } else {
                    self.metrics.on_failed();
                }
                self.record_log(
                    a.in_flight.request_id,
                    &a.in_flight.user,
                    &a.in_flight.inference.model,
                    &endpoint_name,
                    a.in_flight.operation,
                    a.in_flight.arrived_at,
                    a.deliver_at,
                    usage,
                    a.success,
                );
                if !self.trace_pending.is_empty() {
                    self.record_trace(
                        request_id,
                        &a.in_flight.user,
                        &a.in_flight.inference.model,
                        &endpoint_name,
                        a.success,
                        a.trace.as_deref(),
                        a.deliver_at,
                    );
                }
                self.responses.push(CompletedRequest {
                    request_id: a.in_flight.request_id,
                    user: a.in_flight.user,
                    model: a.in_flight.inference.model,
                    endpoint: endpoint_name.to_string(),
                    arrived_at: a.in_flight.arrived_at,
                    finished_at: a.deliver_at,
                    usage,
                    success: a.success,
                    cached: false,
                });
            }
        }
        self.deliver_buf = due;
        for r in retries {
            self.pending.push(r.submit_at, r);
        }
    }

    /// Feed one request outcome into the health tracker, counting breaker
    /// trips in the gateway metrics.
    fn observe_outcome(&mut self, endpoint: &str, success: bool, at: SimTime) {
        if endpoint.is_empty() {
            return;
        }
        if success {
            self.health.on_success(endpoint, at);
        } else if self.health.on_failure(endpoint, at) {
            self.metrics.on_breaker_trip();
        }
    }
}

impl SimProcess for Gateway {
    fn next_event_time(&self) -> Option<SimTime> {
        let mut next: Option<SimTime> = None;
        let mut consider = |t: Option<SimTime>| {
            next = match (next, t) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, None) => a,
                (None, b) => b,
            };
        };
        consider(self.pending.peek_time());
        consider(self.awaiting.peek_time());
        consider(SimProcess::next_event_time(&self.service));
        if self.config.resilience.enabled {
            if let Some(hedge_after) = self.config.resilience.hedge_after {
                // A stuck request becomes an event when its hedge deadline
                // expires, even if nothing else in the simulation moves.
                consider(
                    self.in_flight[self.in_flight_first_live..]
                        .iter()
                        .flatten()
                        .filter(|f| !f.hedged)
                        .map(|f| f.submitted_at + hedge_after)
                        .min(),
                );
            }
        }
        next
    }

    fn advance(&mut self, now: SimTime) {
        self.submit_due(now);
        self.service.advance(now);
        self.collect_results(now);
        self.deliver_due(now);
        self.hedge_due(now);
        self.last_advance = self.last_advance.max(now);
        // Kernel instrumentation: every advance is one simulation event, and
        // the service dispatch queue is the depth the artifacts track. Doing
        // it here (not in each driver loop) means hand-rolled drivers — the
        // examples, tests, and the monitoring scrape loop — are measured too.
        first_desim::stats::kernel::record_event();
        first_desim::stats::kernel::record_queue_depth(self.service.queue_depth());
    }

    fn name(&self) -> &str {
        "first-gateway"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::{DeploymentBuilder, TestTokens};
    use first_chaos::{HealthState, RetryPolicy};

    const MODEL: &str = "meta-llama/Llama-3.3-70B-Instruct";

    fn deployment(prewarm: bool) -> (Gateway, TestTokens) {
        DeploymentBuilder::single_cluster_test()
            .prewarm(if prewarm { 1 } else { 0 })
            .build_with_tokens()
    }

    fn drive(gw: &mut Gateway, until: SimTime) {
        let mut now = SimTime::ZERO;
        while let Some(t) = SimProcess::next_event_time(gw) {
            if t > until {
                break;
            }
            now = t.max(now);
            gw.advance(now);
            if gw.is_drained() {
                break;
            }
        }
        gw.advance(until);
    }

    #[test]
    fn chat_round_trip_succeeds_on_hot_model() {
        let (mut gw, tokens) = deployment(true);
        let req = ChatCompletionRequest::simple(MODEL, "explain the PBS queue", 200);
        let id = gw
            .chat_completions(&req, &tokens.alice, Some(150), SimTime::ZERO)
            .unwrap();
        drive(&mut gw, SimTime::from_secs(300));
        let responses = gw.take_responses();
        assert_eq!(responses.len(), 1);
        let r = &responses[0];
        assert_eq!(r.request_id, id);
        assert!(r.success);
        assert!(!r.cached);
        assert_eq!(r.usage.completion_tokens, 150);
        // FIRST overhead + engine: single-request latency lands near the
        // paper's ~9 s for an unloaded 70B instance.
        let latency = r.latency().as_secs_f64();
        assert!(latency > 5.0 && latency < 16.0, "latency {latency}");
        assert_eq!(gw.log().len(), 1);
        assert!(gw.log().entries()[0].success);
    }

    #[test]
    fn invalid_token_is_unauthorized() {
        let (mut gw, _tokens) = deployment(true);
        let req = ChatCompletionRequest::simple(MODEL, "hi", 50);
        let err = gw
            .chat_completions(&req, &TokenString::new("forged"), None, SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, GatewayError::Unauthorized(_)));
    }

    #[test]
    fn unknown_model_is_not_found() {
        let (mut gw, tokens) = deployment(true);
        let req = ChatCompletionRequest::simple("no-such-model", "hi", 50);
        let err = gw
            .chat_completions(&req, &tokens.alice, None, SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, GatewayError::ModelNotFound(_)));
    }

    #[test]
    fn restricted_model_requires_group_membership() {
        let (mut gw, tokens) = deployment(true);
        let req = ChatCompletionRequest::simple("argonne-private/AuroraGPT-7B", "hi", 50);
        // bob is a platform user but not in the aurora-early-access group.
        let err = gw
            .chat_completions(&req, &tokens.bob, None, SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, GatewayError::Forbidden(_)));
        // alice is in the group; her request is accepted (routing succeeds).
        assert!(gw
            .chat_completions(&req, &tokens.alice, None, SimTime::ZERO)
            .is_ok());
    }

    #[test]
    fn rate_limit_rejects_excess_requests() {
        let (mut gw, tokens) = DeploymentBuilder::single_cluster_test()
            .prewarm(1)
            .rate_limit(2)
            .build_with_tokens();
        let req = ChatCompletionRequest::simple(MODEL, "hello", 20);
        assert!(gw
            .chat_completions(&req, &tokens.alice, None, SimTime::ZERO)
            .is_ok());
        assert!(gw
            .chat_completions(&req, &tokens.alice, None, SimTime::from_secs(1))
            .is_ok());
        let err = gw
            .chat_completions(&req, &tokens.alice, None, SimTime::from_secs(2))
            .unwrap_err();
        assert_eq!(err, GatewayError::RateLimited);
        // A different user is unaffected.
        assert!(gw
            .chat_completions(&req, &tokens.bob, None, SimTime::from_secs(2))
            .is_ok());
    }

    #[test]
    fn repeated_prompt_is_served_from_the_response_cache() {
        let (mut gw, tokens) = deployment(true);
        let req = ChatCompletionRequest::simple(MODEL, "what is the walltime limit", 100);
        gw.chat_completions(&req, &tokens.alice, Some(80), SimTime::ZERO)
            .unwrap();
        drive(&mut gw, SimTime::from_secs(120));
        let first = gw.take_responses();
        assert_eq!(first.len(), 1);
        let t2 = first[0].finished_at + SimDuration::from_secs(5);
        gw.chat_completions(&req, &tokens.bob, Some(80), t2)
            .unwrap();
        let cached = gw.take_responses();
        assert_eq!(cached.len(), 1);
        assert!(cached[0].cached);
        assert!(cached[0].latency().as_secs_f64() < 0.1);
        assert_eq!(cached[0].usage.completion_tokens, 80);
    }

    #[test]
    fn embeddings_route_to_the_embedding_backend() {
        let (mut gw, tokens) = deployment(false);
        let req = EmbeddingRequest {
            model: "nvidia/NV-Embed-v2".to_string(),
            input: vec!["chunk one of the hpc manual".into(), "chunk two".into()],
        };
        gw.embeddings(&req, &tokens.alice, SimTime::ZERO).unwrap();
        drive(&mut gw, SimTime::from_secs(120));
        let responses = gw.take_responses();
        assert_eq!(responses.len(), 1);
        assert!(responses[0].success);
        assert_eq!(responses[0].usage.completion_tokens, 0);
        assert!(responses[0].usage.prompt_tokens > 0);
    }

    #[test]
    fn jobs_endpoint_reflects_model_lifecycle() {
        let (mut gw, tokens) = deployment(false);
        let jobs = gw.jobs_status();
        let entry = jobs.iter().find(|j| j.model == MODEL).unwrap();
        assert_eq!(entry.state, "stopped");
        // Submit a request: a cold start begins, so the model shows as
        // starting (or queued) shortly after.
        let req = ChatCompletionRequest::simple(MODEL, "hi", 50);
        gw.chat_completions(&req, &tokens.alice, Some(40), SimTime::ZERO)
            .unwrap();
        drive(&mut gw, SimTime::from_secs(20));
        let jobs = gw.jobs_status();
        let entry = jobs.iter().find(|j| j.model == MODEL).unwrap();
        assert!(
            entry.state == "starting" || entry.state == "queued",
            "{}",
            entry.state
        );
        drive(&mut gw, SimTime::from_secs(600));
        let jobs = gw.jobs_status();
        let entry = jobs.iter().find(|j| j.model == MODEL).unwrap();
        assert_eq!(entry.state, "running");
    }

    #[test]
    fn unoptimized_gateway_is_slower_per_request() {
        let (mut optimized, tok_a) = deployment(true);
        let (mut legacy, tok_b) = DeploymentBuilder::single_cluster_test()
            .prewarm(1)
            .gateway_config(GatewayConfig::unoptimized())
            .build_with_tokens();
        // The optimizations only help *repeat* requests (the caches are cold on
        // the very first call), so compare the second request on each gateway.
        let warm = ChatCompletionRequest::simple(MODEL, "warm up the caches", 150);
        optimized
            .chat_completions(&warm, &tok_a.alice, Some(150), SimTime::ZERO)
            .unwrap();
        legacy
            .chat_completions(&warm, &tok_b.alice, Some(150), SimTime::ZERO)
            .unwrap();
        drive(&mut optimized, SimTime::from_secs(200));
        drive(&mut legacy, SimTime::from_secs(200));
        optimized.take_responses();
        legacy.take_responses();
        let t2 = SimTime::from_secs(200);
        let req = ChatCompletionRequest::simple(MODEL, "compare the configs", 150);
        optimized
            .chat_completions(&req, &tok_a.alice, Some(150), t2)
            .unwrap();
        legacy
            .chat_completions(&req, &tok_b.alice, Some(150), t2)
            .unwrap();
        drive(&mut optimized, SimTime::from_secs(500));
        drive(&mut legacy, SimTime::from_secs(500));
        let a = optimized.take_responses()[0].latency().as_secs_f64();
        let b = legacy.take_responses()[0].latency().as_secs_f64();
        // Polling + uncached introspection + uncached connections add ≈2–4 s.
        assert!(b > a + 1.5, "legacy {b} vs optimized {a}");
    }

    fn no_hedge_resilience() -> ResilienceConfig {
        ResilienceConfig {
            hedge_after: None,
            ..ResilienceConfig::production()
        }
    }

    #[test]
    fn without_resilience_an_endpoint_failure_reaches_the_client() {
        let (mut gw, tokens) = DeploymentBuilder::federated_sophia_polaris()
            .prewarm(1)
            .build_with_tokens();
        gw.service_mut()
            .endpoint_mut("sophia-endpoint")
            .unwrap()
            .set_offline_until(SimTime::from_secs(3600));
        let req = ChatCompletionRequest::simple(MODEL, "no safety net", 100);
        gw.chat_completions(&req, &tokens.alice, Some(100), SimTime::ZERO)
            .unwrap();
        drive(&mut gw, SimTime::from_secs(600));
        let responses = gw.take_responses();
        assert_eq!(responses.len(), 1);
        assert!(!responses[0].success);
        assert_eq!(gw.metrics_mut().retries, 0);
    }

    #[test]
    fn failed_requests_retry_and_fail_over_to_the_healthy_cluster() {
        let (mut gw, tokens) = DeploymentBuilder::federated_sophia_polaris()
            .prewarm(1)
            .resilience(no_hedge_resilience())
            .build_with_tokens();
        // Sophia — the priority endpoint — goes dark before the request.
        gw.service_mut()
            .endpoint_mut("sophia-endpoint")
            .unwrap()
            .set_offline_until(SimTime::from_secs(3600));
        let req = ChatCompletionRequest::simple(MODEL, "failover please", 100);
        let id = gw
            .chat_completions(&req, &tokens.alice, Some(100), SimTime::ZERO)
            .unwrap();
        drive(&mut gw, SimTime::from_secs(900));
        let responses = gw.take_responses();
        assert_eq!(responses.len(), 1);
        assert_eq!(responses[0].request_id, id);
        assert!(responses[0].success, "retry should rescue the request");
        assert_eq!(responses[0].endpoint, "polaris-endpoint");
        assert!(gw.metrics_mut().retries >= 1);
        assert!(gw.metrics_mut().failovers >= 1);
        // The request log records the final (successful) outcome once.
        assert_eq!(gw.log().len(), 1);
        assert!(gw.log().entries()[0].success);
    }

    #[test]
    fn sustained_failures_trip_the_breaker_and_reroute_fresh_requests() {
        let (mut gw, tokens) = DeploymentBuilder::federated_sophia_polaris()
            .prewarm(1)
            .resilience(no_hedge_resilience())
            .build_with_tokens();
        gw.service_mut()
            .endpoint_mut("sophia-endpoint")
            .unwrap()
            .set_offline_until(SimTime::from_secs(3600));
        for i in 0..4u64 {
            let req = ChatCompletionRequest::simple(MODEL, &format!("breaker {i}"), 80);
            gw.chat_completions(&req, &tokens.alice, Some(80), SimTime::from_secs(i * 10))
                .unwrap();
        }
        // Stop inside the breaker's open window (trips around t≈25, stays
        // open 60 s) — long enough for all retried requests to finish on
        // Polaris, short enough that the breaker has not aged out yet.
        drive(&mut gw, SimTime::from_secs(75));
        let responses = gw.take_responses();
        assert_eq!(responses.len(), 4);
        assert!(responses.iter().all(|r| r.success));
        assert!(gw.metrics_mut().breaker_trips >= 1);
        let now = gw.last_advance();
        assert_eq!(
            gw.health().state("sophia-endpoint", now),
            HealthState::Unavailable
        );
        // `/jobs` surfaces the health next to the endpoint list.
        let jobs = gw.jobs_status();
        let entry = jobs.iter().find(|j| j.model == MODEL).unwrap();
        let idx = entry
            .endpoints
            .iter()
            .position(|e| e == "sophia-endpoint")
            .unwrap();
        assert_eq!(entry.endpoint_health[idx], "unavailable");
        // Once the breaker is open, a fresh request routes straight to
        // Polaris without burning a retry on Sophia.
        let before = gw.metrics_mut().retries;
        let req = ChatCompletionRequest::simple(MODEL, "post-trip request", 80);
        gw.chat_completions(&req, &tokens.alice, Some(80), now)
            .unwrap();
        drive(&mut gw, now + SimDuration::from_secs(300));
        let responses = gw.take_responses();
        assert_eq!(responses.len(), 1);
        assert!(responses[0].success);
        assert_eq!(responses[0].endpoint, "polaris-endpoint");
        assert_eq!(gw.metrics_mut().retries, before);
    }

    #[test]
    fn stuck_requests_are_hedged_to_another_endpoint() {
        let resilience = ResilienceConfig {
            enabled: true,
            retry: RetryPolicy::disabled(),
            hedge_after: Some(SimDuration::from_secs(60)),
            ..ResilienceConfig::production()
        };
        let (mut gw, tokens) = DeploymentBuilder::federated_sophia_polaris()
            .prewarm(1)
            .resilience(resilience)
            .build_with_tokens();
        // Sophia's engine hangs (NCCL stall) without failing: the request
        // would sit for an hour if nothing intervened.
        gw.service_mut()
            .endpoint_mut("sophia-endpoint")
            .unwrap()
            .stall_engines(SimTime::from_secs(3600));
        let req = ChatCompletionRequest::simple(MODEL, "hedge me", 100);
        gw.chat_completions(&req, &tokens.alice, Some(100), SimTime::ZERO)
            .unwrap();
        drive(&mut gw, SimTime::from_secs(1200));
        let responses = gw.take_responses();
        assert_eq!(responses.len(), 1);
        assert!(responses[0].success);
        assert_eq!(responses[0].endpoint, "polaris-endpoint");
        assert!(gw.metrics_mut().hedges >= 1);
        // Well under the hour the stall would have cost.
        assert!(responses[0].latency().as_secs_f64() < 120.0);
    }
}
