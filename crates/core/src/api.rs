//! OpenAI-compatible API types (§3.1.1, §4).
//!
//! FIRST exposes the chat-completions, completions and embeddings endpoints so
//! researchers can point existing OpenAI-client code at the gateway without
//! modification. These types mirror the wire format (serde-serialisable JSON)
//! and convert to the engine-level [`InferenceRequest`] used by the fabric.

use first_serving::{InferenceRequest, RequestId, RequestKind};
use first_workload::ChatMessage;
use serde::{Deserialize, Serialize};

/// Errors the gateway returns to API clients.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GatewayError {
    /// Missing or invalid bearer token.
    Unauthorized(String),
    /// The caller lacks access to the requested model or cluster.
    Forbidden(String),
    /// The requested model is not registered anywhere.
    ModelNotFound(String),
    /// The user exceeded their request-rate allowance.
    RateLimited,
    /// The request body failed validation.
    InvalidRequest(String),
    /// The compute fabric rejected the request.
    UpstreamError(String),
    /// The gateway is overloaded (admission queue full).
    ServiceUnavailable,
}

impl std::fmt::Display for GatewayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GatewayError::Unauthorized(m) => write!(f, "unauthorized: {m}"),
            GatewayError::Forbidden(m) => write!(f, "forbidden: {m}"),
            GatewayError::ModelNotFound(m) => write!(f, "model not found: {m}"),
            GatewayError::RateLimited => write!(f, "rate limit exceeded"),
            GatewayError::InvalidRequest(m) => write!(f, "invalid request: {m}"),
            GatewayError::UpstreamError(m) => write!(f, "upstream error: {m}"),
            GatewayError::ServiceUnavailable => write!(f, "service unavailable"),
        }
    }
}

impl std::error::Error for GatewayError {}

/// HTTP status code the error maps to.
impl GatewayError {
    /// The OpenAI-style HTTP status for this error.
    pub fn status_code(&self) -> u16 {
        match self {
            GatewayError::Unauthorized(_) => 401,
            GatewayError::Forbidden(_) => 403,
            GatewayError::ModelNotFound(_) => 404,
            GatewayError::RateLimited => 429,
            GatewayError::InvalidRequest(_) => 400,
            GatewayError::UpstreamError(_) => 502,
            GatewayError::ServiceUnavailable => 503,
        }
    }
}

/// Token usage accounting included in every response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Usage {
    /// Prompt tokens consumed.
    pub prompt_tokens: u32,
    /// Completion tokens generated.
    pub completion_tokens: u32,
    /// Total tokens.
    pub total_tokens: u32,
}

impl Usage {
    /// Build usage from prompt/completion counts.
    pub fn new(prompt_tokens: u32, completion_tokens: u32) -> Self {
        Usage {
            prompt_tokens,
            completion_tokens,
            total_tokens: prompt_tokens + completion_tokens,
        }
    }
}

/// `/v1/chat/completions` request body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChatCompletionRequest {
    /// Target model.
    pub model: String,
    /// Conversation messages.
    pub messages: Vec<ChatMessage>,
    /// Maximum completion tokens.
    #[serde(default = "default_max_tokens")]
    pub max_tokens: u32,
    /// Sampling temperature.
    #[serde(default)]
    pub temperature: f64,
    /// Whether to stream the response (accepted, not simulated token-by-token).
    #[serde(default)]
    pub stream: bool,
}

fn default_max_tokens() -> u32 {
    256
}

impl ChatCompletionRequest {
    /// Convenience constructor with a single user message.
    pub fn simple(model: &str, prompt: &str, max_tokens: u32) -> Self {
        ChatCompletionRequest {
            model: model.to_string(),
            messages: vec![ChatMessage::user(prompt)],
            max_tokens,
            temperature: 0.7,
            stream: false,
        }
    }

    /// Rough prompt-token estimate (≈1 token/word plus per-message framing).
    pub fn prompt_token_estimate(&self) -> u32 {
        let words: usize = self.messages.iter().map(|m| count_words(&m.content)).sum();
        (words as u32 + 4 * self.messages.len() as u32).max(1)
    }

    /// Basic validation of the request body.
    pub fn validate(&self) -> Result<(), GatewayError> {
        if self.model.trim().is_empty() {
            return Err(GatewayError::InvalidRequest("model must be set".into()));
        }
        if self.messages.is_empty() {
            return Err(GatewayError::InvalidRequest(
                "messages must not be empty".into(),
            ));
        }
        if self.max_tokens == 0 || self.max_tokens > 32_768 {
            return Err(GatewayError::InvalidRequest(
                "max_tokens must be between 1 and 32768".into(),
            ));
        }
        Ok(())
    }
}

/// Whitespace-separated word count, equal to `s.split_whitespace().count()`.
/// ASCII text (every synthetic prompt) takes a byte-scan fast path; the char
/// iterator only runs when Unicode whitespace could be present.
fn count_words(s: &str) -> usize {
    if !s.is_ascii() {
        return s.split_whitespace().count();
    }
    let b = s.as_bytes();
    let Some(&first) = b.first() else {
        return 0;
    };
    let ws = |x: u8| matches!(x, b' ' | b'\t' | b'\n' | b'\r' | 0x0b | 0x0c);
    // A word starts at every whitespace→non-whitespace transition; counting
    // pairs (instead of carrying an in-word flag) lets the loop vectorize.
    usize::from(!ws(first))
        + b[..b.len() - 1]
            .iter()
            .zip(&b[1..])
            .filter(|&(&a, &c)| ws(a) && !ws(c))
            .count()
}

/// One choice in a chat completion response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChatChoice {
    /// Choice index.
    pub index: u32,
    /// Assistant message.
    pub message: ChatMessage,
    /// Why generation stopped.
    pub finish_reason: String,
}

/// `/v1/chat/completions` response body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChatCompletionResponse {
    /// Response identifier.
    pub id: String,
    /// Object type tag.
    pub object: String,
    /// Model that produced the completion.
    pub model: String,
    /// Choices (always one in FIRST).
    pub choices: Vec<ChatChoice>,
    /// Token accounting.
    pub usage: Usage,
}

/// `/v1/completions` request body (plain text completion).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompletionRequest {
    /// Target model.
    pub model: String,
    /// Prompt text.
    pub prompt: String,
    /// Maximum completion tokens.
    #[serde(default = "default_max_tokens")]
    pub max_tokens: u32,
}

impl CompletionRequest {
    /// Rough prompt-token estimate.
    pub fn prompt_token_estimate(&self) -> u32 {
        (self.prompt.split_whitespace().count() as u32).max(1)
    }
}

/// `/v1/embeddings` request body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmbeddingRequest {
    /// Target embedding model.
    pub model: String,
    /// Input texts.
    pub input: Vec<String>,
}

impl EmbeddingRequest {
    /// Rough token estimate over all inputs.
    pub fn token_estimate(&self) -> u32 {
        self.input
            .iter()
            .map(|t| t.split_whitespace().count() as u32)
            .sum::<u32>()
            .max(1)
    }
}

/// `/v1/embeddings` response body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmbeddingResponse {
    /// Response identifier.
    pub id: String,
    /// Model used.
    pub model: String,
    /// Number of vectors returned.
    pub count: usize,
    /// Token accounting.
    pub usage: Usage,
}

/// The API operation kinds the gateway serves (used for routing and logging).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ApiOperation {
    /// Chat completions.
    ChatCompletions,
    /// Text completions.
    Completions,
    /// Embeddings.
    Embeddings,
}

/// Build the engine-level request for a chat completion.
pub fn chat_to_inference(
    id: u64,
    req: &ChatCompletionRequest,
    user: &str,
    expected_output_tokens: u32,
) -> InferenceRequest {
    InferenceRequest {
        id: RequestId(id),
        model: req.model.clone(),
        kind: RequestKind::Chat,
        prompt_tokens: req.prompt_token_estimate(),
        output_tokens: expected_output_tokens.min(req.max_tokens).max(1),
        user: user.to_string(),
    }
}

/// Build the engine-level request for an embedding call.
pub fn embedding_to_inference(id: u64, req: &EmbeddingRequest, user: &str) -> InferenceRequest {
    InferenceRequest {
        id: RequestId(id),
        model: req.model.clone(),
        kind: RequestKind::Embedding,
        prompt_tokens: req.token_estimate(),
        output_tokens: 0,
        user: user.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chat_request_validation() {
        let ok = ChatCompletionRequest::simple("llama-70b", "hello world", 128);
        assert!(ok.validate().is_ok());
        let mut bad = ok.clone();
        bad.model = "".into();
        assert!(matches!(
            bad.validate(),
            Err(GatewayError::InvalidRequest(_))
        ));
        let mut empty = ok.clone();
        empty.messages.clear();
        assert!(empty.validate().is_err());
        let mut huge = ok;
        huge.max_tokens = 100_000;
        assert!(huge.validate().is_err());
    }

    #[test]
    fn prompt_token_estimate_counts_words_and_framing() {
        let req = ChatCompletionRequest::simple("m", "one two three four", 10);
        assert_eq!(req.prompt_token_estimate(), 4 + 4);
        let emb = EmbeddingRequest {
            model: "nv-embed-v2".into(),
            input: vec!["a b".into(), "c d e".into()],
        };
        assert_eq!(emb.token_estimate(), 5);
    }

    #[test]
    fn conversions_preserve_fields() {
        let req = ChatCompletionRequest::simple("llama-70b", "describe the climate run", 300);
        let inf = chat_to_inference(42, &req, "alice", 180);
        assert_eq!(inf.id, RequestId(42));
        assert_eq!(inf.model, "llama-70b");
        assert_eq!(inf.output_tokens, 180);
        assert_eq!(inf.user, "alice");
        // Expected output above max_tokens is clamped.
        let clamped = chat_to_inference(43, &req, "alice", 900);
        assert_eq!(clamped.output_tokens, 300);
    }

    #[test]
    fn usage_adds_up() {
        let u = Usage::new(120, 80);
        assert_eq!(u.total_tokens, 200);
    }

    #[test]
    fn error_status_codes_follow_openai_conventions() {
        assert_eq!(GatewayError::Unauthorized("x".into()).status_code(), 401);
        assert_eq!(GatewayError::RateLimited.status_code(), 429);
        assert_eq!(GatewayError::ModelNotFound("m".into()).status_code(), 404);
        assert_eq!(GatewayError::ServiceUnavailable.status_code(), 503);
    }

    #[test]
    fn json_round_trip() {
        let req = ChatCompletionRequest::simple("llama-70b", "hello", 64);
        let json = serde_json::to_string(&req).unwrap();
        let back: ChatCompletionRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(req, back);
        // Defaults are applied when fields are omitted.
        let minimal: ChatCompletionRequest =
            serde_json::from_str(r#"{"model":"m","messages":[{"role":"user","content":"hi"}]}"#)
                .unwrap();
        assert_eq!(minimal.max_tokens, 256);
        assert!(!minimal.stream);
    }
}
