//! End-to-end scenario runners.
//!
//! These functions reproduce the measurement methodology of §5: an open-loop
//! client replays ShareGPT-like requests at a controlled rate against either
//! the FIRST gateway, a direct vLLM server, or the external cloud API, and
//! reports the four metrics of §5.1 (request throughput, output token
//! throughput, median end-to-end latency, benchmark duration). A closed-loop
//! runner drives concurrent WebUI sessions for Table 1.

use crate::api::ChatCompletionRequest;
use crate::gateway::Gateway;
use crate::shard::ShardedGateway;
use first_auth::TokenString;
use first_chaos::FaultInjector;
use first_desim::{Histogram, SimDuration, SimProcess, SimTime};
use first_serving::{
    CloudApi, CloudApiConfig, DirectServer, EngineConfig, FrontendConfig, InferenceRequest,
    VllmEngine,
};
use first_workload::{ChatMessage, ConversationSample, SessionWorkloadConfig};
use serde::{Deserialize, Serialize};

/// The §5.1 metrics for one benchmark run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Human-readable scenario label.
    pub label: String,
    /// Offered request-rate label ("1", "5", "inf", ...).
    pub offered_rate: String,
    /// Requests offered.
    pub offered: usize,
    /// Requests completed successfully.
    pub completed: usize,
    /// Completed requests per second over the benchmark duration.
    pub request_throughput: f64,
    /// Output tokens per second over the benchmark duration.
    pub output_token_throughput: f64,
    /// Median end-to-end latency in seconds.
    pub median_latency_s: f64,
    /// 95th-percentile latency in seconds.
    pub p95_latency_s: f64,
    /// Mean latency in seconds.
    pub mean_latency_s: f64,
    /// Total benchmark duration in seconds (first arrival → last completion).
    pub duration_s: f64,
}

impl ScenarioReport {
    fn from_observations(
        label: &str,
        offered_rate: &str,
        offered: usize,
        latencies: &mut Histogram,
        output_tokens: u64,
        duration_s: f64,
    ) -> Self {
        let completed = latencies.count();
        let duration = duration_s.max(1e-9);
        ScenarioReport {
            label: label.to_string(),
            offered_rate: offered_rate.to_string(),
            offered,
            completed,
            request_throughput: completed as f64 / duration,
            output_token_throughput: output_tokens as f64 / duration,
            median_latency_s: latencies.median(),
            p95_latency_s: latencies.p95(),
            mean_latency_s: latencies.mean(),
            duration_s,
        }
    }

    /// One formatted table row (used by the bench binaries).
    pub fn table_row(&self) -> String {
        format!(
            "{:<22} {:>5} {:>9} {:>9} {:>10.2} {:>12.1} {:>12.1} {:>10.1}",
            self.label,
            self.offered_rate,
            self.offered,
            self.completed,
            self.request_throughput,
            self.output_token_throughput,
            self.median_latency_s,
            self.duration_s
        )
    }

    /// The table header matching [`ScenarioReport::table_row`].
    pub fn table_header() -> String {
        format!(
            "{:<22} {:>5} {:>9} {:>9} {:>10} {:>12} {:>12} {:>10}",
            "scenario", "rate", "offered", "done", "req/s", "out tok/s", "med lat (s)", "dur (s)"
        )
    }
}

thread_local! {
    /// Lazily grown " tok"/" data" filler shared by every synthetic prompt on
    /// this thread. The filler after the unique `q{index}` prefix depends only
    /// on the word count, so each request body is one `memcpy` of a template
    /// prefix instead of a per-word `push_str` loop.
    static CHAT_FILLER: std::cell::RefCell<(String, usize)> =
        const { std::cell::RefCell::new((String::new(), 0)) };
}

/// Build a unique synthetic chat request body for one workload sample.
pub(crate) fn synthetic_chat_request(
    model: &str,
    index: usize,
    sample: &ConversationSample,
) -> ChatCompletionRequest {
    use std::fmt::Write as _;
    // prompt_token_estimate = words + 4 framing tokens; build content so the
    // estimate matches the sample's prompt length and every prompt is unique
    // (so the response cache cannot short-circuit the benchmark).
    let words = sample.prompt_tokens.saturating_sub(4).max(1) as usize;
    // Filler words are " tok" (4 bytes) except every 7th, " data" (5 bytes),
    // so n filler words occupy exactly 4n + n/7 bytes of the template.
    let fill = words - 1;
    let fill_bytes = 4 * fill + fill / 7;
    CHAT_FILLER.with(|cell| {
        let mut guard = cell.borrow_mut();
        let (template, built) = &mut *guard;
        while *built < fill {
            *built += 1;
            template.push_str(if *built % 7 == 0 { " data" } else { " tok" });
        }
        let mut content = String::with_capacity(fill_bytes + 16);
        write!(content, "q{index}").expect("write to String");
        content.push_str(&template[..fill_bytes]);
        // Moves `content` instead of `ChatCompletionRequest::simple`'s clone.
        ChatCompletionRequest {
            model: model.to_string(),
            messages: vec![ChatMessage::user(content)],
            max_tokens: sample.output_tokens.max(1),
            temperature: 0.7,
            stream: false,
        }
    })
}

/// Replay `samples` against the FIRST gateway at the given arrival times.
/// Returns the §5.1 metrics. The gateway is advanced in place, so callers can
/// inspect its metrics/log afterwards.
///
/// # Example
///
/// Replay ten ShareGPT-style conversations arriving at 2 req/s against the
/// single-cluster test deployment:
///
/// ```
/// use first_core::{run_gateway_openloop, DeploymentBuilder};
/// use first_desim::{SimRng, SimTime};
/// use first_workload::{ArrivalProcess, ShareGptGenerator};
///
/// let (mut gateway, tokens) = DeploymentBuilder::single_cluster_test()
///     .prewarm(1)
///     .build_with_tokens();
/// let samples = ShareGptGenerator::new(42).samples(10);
/// let mut rng = SimRng::seed_from_u64(7);
/// let arrivals = ArrivalProcess::FixedRate(2.0).arrivals(10, SimTime::ZERO, &mut rng);
///
/// let report = run_gateway_openloop(
///     &mut gateway,
///     &tokens.alice,
///     "meta-llama/Llama-3.3-70B-Instruct",
///     &samples,
///     &arrivals,
///     "2",
///     SimTime::from_secs(3600),
/// );
/// assert_eq!(report.offered, 10);
/// assert_eq!(report.completed, 10);
/// ```
pub fn run_gateway_openloop(
    gateway: &mut Gateway,
    token: &TokenString,
    model: &str,
    samples: &[ConversationSample],
    arrivals: &[SimTime],
    rate_label: &str,
    horizon: SimTime,
) -> ScenarioReport {
    assert_eq!(samples.len(), arrivals.len());
    let mut latencies = Histogram::with_capacity(samples.len());
    let mut output_tokens = 0u64;
    let mut next = 0usize;
    let mut last_completion = SimTime::ZERO;
    let first_arrival = arrivals.first().copied().unwrap_or(SimTime::ZERO);

    loop {
        let next_arrival = arrivals.get(next).copied();
        let next_internal = SimProcess::next_event_time(gateway);
        let step = match (next_arrival, next_internal) {
            (Some(a), Some(i)) => a.min(i),
            (Some(a), None) => a,
            (None, Some(i)) => i,
            (None, None) => break,
        };
        if step > horizon {
            break;
        }
        gateway.advance(step);
        while next < arrivals.len() && arrivals[next] <= step {
            let req = synthetic_chat_request(model, next, &samples[next]);
            let _ = gateway.chat_completions(
                &req,
                token,
                Some(samples[next].output_tokens),
                arrivals[next],
            );
            next += 1;
        }
        for r in gateway.take_responses() {
            if r.success {
                latencies.record(r.latency().as_secs_f64());
                output_tokens += r.usage.completion_tokens as u64;
                last_completion = last_completion.max(r.finished_at);
            }
        }
        if next >= arrivals.len() && gateway.is_drained() {
            break;
        }
    }
    // Collect anything still buffered.
    for r in gateway.take_responses() {
        if r.success {
            latencies.record(r.latency().as_secs_f64());
            output_tokens += r.usage.completion_tokens as u64;
            last_completion = last_completion.max(r.finished_at);
        }
    }
    let duration = (last_completion - first_arrival).as_secs_f64();
    ScenarioReport::from_observations(
        "FIRST",
        rate_label,
        samples.len(),
        &mut latencies,
        output_tokens,
        duration,
    )
}

/// Replay `samples` against a sharded gateway federation at the given
/// arrival times: request `i` is keyed by synthetic user `user-{i % users}`,
/// consistent-hashed onto its home shard (and possibly spilled under the
/// fleet's policy), and submitted with that shard's token. Returns the
/// aggregate §5.1 metrics; per-shard rollups stay available on the fleet
/// afterwards via [`ShardedGateway::shard_reports`].
///
/// `tokens` holds one valid bearer token per shard (the same user enrolled
/// on every shard — the shared control plane).
#[allow(clippy::too_many_arguments)]
pub fn run_sharded_openloop(
    fleet: &mut ShardedGateway,
    tokens: &[TokenString],
    model: &str,
    samples: &[ConversationSample],
    arrivals: &[SimTime],
    users: usize,
    rate_label: &str,
    horizon: SimTime,
) -> ScenarioReport {
    assert_eq!(samples.len(), arrivals.len());
    assert_eq!(
        tokens.len(),
        fleet.shard_count(),
        "one token per shard required"
    );
    let users = users.max(1);
    // Ring lookups cached per synthetic user; the ring is stable for the
    // fleet's lifetime.
    let homes: Vec<usize> = (0..users)
        .map(|u| fleet.home_shard(&format!("user-{u}")))
        .collect();

    let mut latencies = Histogram::with_capacity(samples.len());
    let mut output_tokens = 0u64;
    let mut next = 0usize;
    let mut last_completion = SimTime::ZERO;
    let first_arrival = arrivals.first().copied().unwrap_or(SimTime::ZERO);

    loop {
        let next_arrival = arrivals.get(next).copied();
        let step = match (next_arrival, fleet.next_event_time()) {
            (Some(a), Some(i)) => a.min(i),
            (Some(a), None) => a,
            (None, Some(i)) => i,
            (None, None) => break,
        };
        if step > horizon {
            break;
        }
        fleet.advance_all(step);
        while next < arrivals.len() && arrivals[next] <= step {
            let req = synthetic_chat_request(model, next, &samples[next]);
            let decision = fleet.route_home(homes[next % users]);
            let _ = fleet.shard_mut(decision.shard).chat_completions(
                &req,
                &tokens[decision.shard],
                Some(samples[next].output_tokens),
                arrivals[next],
            );
            next += 1;
        }
        // Shard-ordered collection keeps the aggregate deterministic.
        for shard in 0..fleet.shard_count() {
            for r in fleet.shard_mut(shard).take_responses() {
                if r.success {
                    latencies.record(r.latency().as_secs_f64());
                    output_tokens += r.usage.completion_tokens as u64;
                    last_completion = last_completion.max(r.finished_at);
                }
            }
        }
        if next >= arrivals.len() && fleet.is_drained() {
            break;
        }
    }
    for shard in 0..fleet.shard_count() {
        for r in fleet.shard_mut(shard).take_responses() {
            if r.success {
                latencies.record(r.latency().as_secs_f64());
                output_tokens += r.usage.completion_tokens as u64;
                last_completion = last_completion.max(r.finished_at);
            }
        }
    }
    let duration = (last_completion - first_arrival).as_secs_f64();
    ScenarioReport::from_observations(
        &format!("FIRST x{} shards", fleet.shard_count()),
        rate_label,
        samples.len(),
        &mut latencies,
        output_tokens,
        duration,
    )
}

/// Replay `samples` against a direct vLLM server (single-threaded frontend in
/// front of a hot engine) — the Figure 3 baseline.
pub fn run_direct_openloop(
    engine_config: EngineConfig,
    samples: &[ConversationSample],
    arrivals: &[SimTime],
    rate_label: &str,
    horizon: SimTime,
) -> ScenarioReport {
    assert_eq!(samples.len(), arrivals.len());
    let model = engine_config.model.name.clone();
    let mut server = DirectServer::new(
        VllmEngine::hot(engine_config, SimTime::ZERO),
        FrontendConfig::default(),
    );
    let mut latencies = Histogram::with_capacity(samples.len());
    let mut output_tokens = 0u64;
    let mut next = 0usize;
    let mut last_completion = SimTime::ZERO;
    let first_arrival = arrivals.first().copied().unwrap_or(SimTime::ZERO);

    loop {
        let next_arrival = arrivals.get(next).copied();
        let next_internal = SimProcess::next_event_time(&server);
        let step = match (next_arrival, next_internal) {
            (Some(a), Some(i)) => a.min(i),
            (Some(a), None) => a,
            (None, Some(i)) => i,
            (None, None) => break,
        };
        if step > horizon {
            break;
        }
        server.advance(step);
        first_desim::stats::kernel::record_event();
        first_desim::stats::kernel::record_queue_depth(server.frontend_backlog());
        while next < arrivals.len() && arrivals[next] <= step {
            server.submit(
                InferenceRequest::chat(
                    next as u64,
                    &model,
                    samples[next].prompt_tokens,
                    samples[next].output_tokens,
                ),
                arrivals[next],
            );
            next += 1;
        }
        for r in server.take_served() {
            latencies.record(r.latency().as_secs_f64());
            output_tokens += r.output_tokens as u64;
            last_completion = last_completion.max(r.finished_at);
        }
        if next >= arrivals.len() && server.is_drained() {
            break;
        }
    }
    for r in server.take_served() {
        latencies.record(r.latency().as_secs_f64());
        output_tokens += r.output_tokens as u64;
        last_completion = last_completion.max(r.finished_at);
    }
    let duration = (last_completion - first_arrival).as_secs_f64();
    ScenarioReport::from_observations(
        "vLLM Direct",
        rate_label,
        samples.len(),
        &mut latencies,
        output_tokens,
        duration,
    )
}

/// Replay `samples` against the external cloud API (Figure 5 comparator).
pub fn run_openai_openloop(
    config: CloudApiConfig,
    samples: &[ConversationSample],
    arrivals: &[SimTime],
    rate_label: &str,
    horizon: SimTime,
) -> ScenarioReport {
    assert_eq!(samples.len(), arrivals.len());
    let mut api = CloudApi::new(config);
    let mut latencies = Histogram::with_capacity(samples.len());
    let mut output_tokens = 0u64;
    let mut next = 0usize;
    let mut last_completion = SimTime::ZERO;
    let first_arrival = arrivals.first().copied().unwrap_or(SimTime::ZERO);

    loop {
        let next_arrival = arrivals.get(next).copied();
        let next_internal = SimProcess::next_event_time(&api);
        let step = match (next_arrival, next_internal) {
            (Some(a), Some(i)) => a.min(i),
            (Some(a), None) => a,
            (None, Some(i)) => i,
            (None, None) => break,
        };
        if step > horizon {
            break;
        }
        api.advance(step);
        first_desim::stats::kernel::record_event();
        while next < arrivals.len() && arrivals[next] <= step {
            api.submit(
                InferenceRequest::chat(
                    next as u64,
                    "gpt-4o-mini",
                    samples[next].prompt_tokens,
                    samples[next].output_tokens,
                ),
                arrivals[next],
            );
            next += 1;
        }
        for c in api.take_completions() {
            latencies.record(c.engine_latency().as_secs_f64());
            output_tokens += c.output_tokens as u64;
            last_completion = last_completion.max(c.finished_at);
        }
        if next >= arrivals.len() && api.is_drained() {
            break;
        }
    }
    for c in api.take_completions() {
        latencies.record(c.engine_latency().as_secs_f64());
        output_tokens += c.output_tokens as u64;
        last_completion = last_completion.max(c.finished_at);
    }
    let duration = (last_completion - first_arrival).as_secs_f64();
    ScenarioReport::from_observations(
        "OpenAI API",
        rate_label,
        samples.len(),
        &mut latencies,
        output_tokens,
        duration,
    )
}

/// Availability and tail-latency metrics for one resilience scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceReport {
    /// Scenario label ("fault-free", "endpoint-flap", ...).
    pub label: String,
    /// Requests offered.
    pub offered: usize,
    /// Requests answered successfully.
    pub completed: usize,
    /// Requests that ultimately failed (after any retries).
    pub failed: usize,
    /// `completed / offered`.
    pub availability: f64,
    /// Median end-to-end latency of successful requests, in seconds.
    pub median_latency_s: f64,
    /// 99th-percentile end-to-end latency of successful requests, in seconds.
    pub p99_latency_s: f64,
    /// Output tokens delivered to clients.
    pub output_tokens: u64,
    /// Output tokens per second over the run (the goodput measure).
    pub goodput_tok_s: f64,
    /// Run duration in seconds (first arrival → last delivery).
    pub duration_s: f64,
    /// Retries issued by the gateway.
    pub retries: u64,
    /// Failovers to a different endpoint.
    pub failovers: u64,
    /// Circuit-breaker trips.
    pub breaker_trips: u64,
    /// Hedged requests issued.
    pub hedges: u64,
    /// Faults the injector actually applied.
    pub faults_injected: usize,
}

impl ResilienceReport {
    /// Goodput retained versus a (fault-free) baseline, as a fraction.
    pub fn goodput_retained(&self, baseline: &ResilienceReport) -> f64 {
        if baseline.goodput_tok_s <= 0.0 {
            0.0
        } else {
            self.goodput_tok_s / baseline.goodput_tok_s
        }
    }

    /// One formatted table row (used by `resilience_sweep`).
    pub fn table_row(&self, baseline: &ResilienceReport) -> String {
        format!(
            "{:<18} {:>7} {:>6} {:>6} {:>7.2}% {:>9.1} {:>9.1} {:>10.1} {:>8.1}% {:>7} {:>9} {:>6} {:>6} {:>6}",
            self.label,
            self.offered,
            self.completed,
            self.failed,
            self.availability * 100.0,
            self.median_latency_s,
            self.p99_latency_s,
            self.goodput_tok_s,
            self.goodput_retained(baseline) * 100.0,
            self.retries,
            self.failovers,
            self.breaker_trips,
            self.hedges,
            self.faults_injected,
        )
    }

    /// The table header matching [`ResilienceReport::table_row`].
    pub fn table_header() -> String {
        format!(
            "{:<18} {:>7} {:>6} {:>6} {:>8} {:>9} {:>9} {:>10} {:>9} {:>7} {:>9} {:>6} {:>6} {:>6}",
            "scenario",
            "offered",
            "done",
            "fail",
            "avail",
            "med (s)",
            "p99 (s)",
            "tok/s",
            "goodput",
            "retries",
            "failovers",
            "trips",
            "hedges",
            "faults"
        )
    }
}

/// Replay `samples` against the gateway while the injector perturbs the
/// deployment according to its fault plan. The chaos companion of
/// [`run_gateway_openloop`]: identical open-loop methodology, but fault and
/// recovery instants participate in event selection, failures are counted,
/// and the report adds availability, p99 and the resilience counters.
#[allow(clippy::too_many_arguments)]
pub fn run_resilience_openloop(
    gateway: &mut Gateway,
    injector: &mut FaultInjector,
    token: &TokenString,
    model: &str,
    samples: &[ConversationSample],
    arrivals: &[SimTime],
    label: &str,
    horizon: SimTime,
) -> ResilienceReport {
    assert_eq!(samples.len(), arrivals.len());
    let mut latencies = Histogram::with_capacity(samples.len());
    let mut output_tokens = 0u64;
    let mut failed = 0usize;
    let mut rejected = 0usize;
    let mut next = 0usize;
    let mut last_delivery = SimTime::ZERO;
    let first_arrival = arrivals.first().copied().unwrap_or(SimTime::ZERO);

    loop {
        let next_arrival = arrivals.get(next).copied();
        let step = match (next_arrival, injector.next_event_merged(gateway)) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        };
        let Some(step) = step else {
            break;
        };
        if step > horizon {
            break;
        }
        injector.apply_due(gateway.service_mut(), step);
        gateway.advance(step);
        while next < arrivals.len() && arrivals[next] <= step {
            let req = synthetic_chat_request(model, next, &samples[next]);
            if gateway
                .chat_completions(
                    &req,
                    token,
                    Some(samples[next].output_tokens),
                    arrivals[next],
                )
                .is_err()
            {
                rejected += 1;
            }
            next += 1;
        }
        for r in gateway.take_responses() {
            last_delivery = last_delivery.max(r.finished_at);
            if r.success {
                latencies.record(r.latency().as_secs_f64());
                output_tokens += r.usage.completion_tokens as u64;
            } else {
                failed += 1;
            }
        }
        if next >= arrivals.len() && gateway.is_drained() {
            break;
        }
    }
    for r in gateway.take_responses() {
        last_delivery = last_delivery.max(r.finished_at);
        if r.success {
            latencies.record(r.latency().as_secs_f64());
            output_tokens += r.usage.completion_tokens as u64;
        } else {
            failed += 1;
        }
    }

    let offered = samples.len();
    let completed = latencies.count();
    let duration = (last_delivery - first_arrival).as_secs_f64().max(1e-9);
    let metrics = gateway.metrics_mut();
    ResilienceReport {
        label: label.to_string(),
        offered,
        completed,
        failed: failed + rejected,
        availability: completed as f64 / offered.max(1) as f64,
        median_latency_s: latencies.median(),
        p99_latency_s: latencies.p99(),
        output_tokens,
        goodput_tok_s: output_tokens as f64 / duration,
        duration_s: duration,
        retries: metrics.retries,
        failovers: metrics.failovers,
        breaker_trips: metrics.breaker_trips,
        hedges: metrics.hedges,
        faults_injected: injector.applied().len(),
    }
}

/// One Table 1 cell: throughput measured over a fixed window of concurrent
/// WebUI chat sessions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WebUiCell {
    /// Model name.
    pub model: String,
    /// Concurrency level.
    pub concurrency: usize,
    /// Measurement window in seconds.
    pub duration_s: f64,
    /// Output token throughput (tokens/s).
    pub token_throughput: f64,
    /// Request throughput (requests/s).
    pub request_throughput: f64,
    /// Requests completed within the window.
    pub completed: usize,
}

/// Drive `config.concurrency` closed-loop WebUI sessions through the gateway
/// and measure throughput over `config.duration` (§5.3.4).
///
/// `webui_overhead` models the WebUI backend's per-message work (session
/// lookup, history persistence, response re-formatting) added on top of the
/// gateway path.
pub fn run_webui_closed_loop(
    gateway: &mut Gateway,
    token: &TokenString,
    config: &SessionWorkloadConfig,
    webui_overhead: SimDuration,
    seed: u64,
) -> WebUiCell {
    let sessions = first_workload::generate_sessions(config, seed);
    let window_end = SimTime::ZERO + config.duration;

    // Per-session state: which turn is next and when it may be sent.
    #[derive(Debug)]
    struct SessionState {
        next_turn: usize,
        send_at: Option<SimTime>,
        waiting_for: Option<u64>,
    }
    let mut states: Vec<SessionState> = sessions
        .iter()
        .map(|s| SessionState {
            next_turn: 0,
            send_at: Some(s.start_at),
            waiting_for: None,
        })
        .collect();
    // Map gateway request id → session index.
    let mut owner: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    let mut completed = 0usize;
    let mut output_tokens = 0u64;

    loop {
        let next_send = states
            .iter()
            .filter_map(|s| s.send_at)
            .filter(|&t| t <= window_end)
            .min();
        let next_internal = SimProcess::next_event_time(gateway);
        let step = match (next_send, next_internal) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => break,
        };
        if step > window_end {
            break;
        }
        gateway.advance(step);

        // Send due messages.
        for (idx, state) in states.iter_mut().enumerate() {
            let Some(send_at) = state.send_at else {
                continue;
            };
            if send_at > step {
                continue;
            }
            let plan = &sessions[idx];
            let Some(turn) = plan.turns.get(state.next_turn) else {
                state.send_at = None;
                continue;
            };
            // The WebUI backend spends webui_overhead before the gateway sees
            // the request; fold it into the submission time.
            let gateway_arrival = send_at + webui_overhead;
            let req = synthetic_chat_request(&config.model, idx * 10_000 + state.next_turn, turn);
            match gateway.chat_completions(&req, token, Some(turn.output_tokens), gateway_arrival) {
                Ok(request_id) => {
                    owner.insert(request_id, idx);
                    state.waiting_for = Some(request_id);
                    state.send_at = None;
                }
                Err(_) => {
                    // Back off briefly and retry the same turn.
                    state.send_at = Some(send_at + SimDuration::from_secs(1));
                }
            }
        }

        // Handle completions: count them and schedule the next turn.
        for r in gateway.take_responses() {
            let Some(&session_idx) = owner.get(&r.request_id) else {
                continue;
            };
            if r.success && r.finished_at <= window_end {
                completed += 1;
                output_tokens += r.usage.completion_tokens as u64;
            }
            let plan = &sessions[session_idx];
            let state = &mut states[session_idx];
            if state.waiting_for == Some(r.request_id) {
                state.waiting_for = None;
                state.next_turn += 1;
                let think = plan.think_before(state.next_turn);
                let next_send = r.finished_at + webui_overhead + think;
                state.send_at = if next_send <= window_end {
                    Some(next_send)
                } else {
                    None
                };
            }
        }

        let any_pending_send = states
            .iter()
            .any(|s| s.send_at.map(|t| t <= window_end).unwrap_or(false));
        let any_waiting = states.iter().any(|s| s.waiting_for.is_some());
        if !any_pending_send && !any_waiting {
            break;
        }
    }

    let duration_s = config.duration.as_secs_f64();
    WebUiCell {
        model: config.model.clone(),
        concurrency: config.concurrency,
        duration_s,
        token_throughput: output_tokens as f64 / duration_s,
        request_throughput: completed as f64 / duration_s,
        completed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::DeploymentBuilder;
    use first_desim::SimRng;
    use first_hpc::GpuModel;
    use first_serving::find_model;
    use first_workload::{ArrivalProcess, ShareGptGenerator};

    const MODEL: &str = "meta-llama/Llama-3.3-70B-Instruct";

    fn samples(n: usize) -> Vec<ConversationSample> {
        ShareGptGenerator::new(42).samples(n)
    }

    #[test]
    fn gateway_openloop_produces_consistent_report() {
        let (mut gw, tokens) = DeploymentBuilder::single_cluster_test()
            .prewarm(1)
            .build_with_tokens();
        let samples = samples(40);
        let mut rng = SimRng::seed_from_u64(1);
        let arrivals = ArrivalProcess::FixedRate(2.0).arrivals(40, SimTime::ZERO, &mut rng);
        let report = run_gateway_openloop(
            &mut gw,
            &tokens.alice,
            MODEL,
            &samples,
            &arrivals,
            "2",
            SimTime::from_secs(3600),
        );
        assert_eq!(report.offered, 40);
        assert_eq!(report.completed, 40);
        assert!(report.request_throughput > 0.5);
        assert!(report.output_token_throughput > 50.0);
        assert!(report.median_latency_s > 5.0);
        assert!(report.duration_s > 10.0);
    }

    #[test]
    fn direct_openloop_matches_frontend_behaviour() {
        let cfg = EngineConfig::for_model(find_model("llama-70b").unwrap(), GpuModel::A100_40);
        let samples = samples(30);
        let mut rng = SimRng::seed_from_u64(2);
        let arrivals = ArrivalProcess::FixedRate(1.0).arrivals(30, SimTime::ZERO, &mut rng);
        let report = run_direct_openloop(cfg, &samples, &arrivals, "1", SimTime::from_secs(3600));
        assert_eq!(report.completed, 30);
        // At 1 req/s the direct path is fast: a few seconds median.
        assert!(
            report.median_latency_s < 8.0,
            "median {}",
            report.median_latency_s
        );
    }

    #[test]
    fn first_beats_direct_at_saturation_but_not_at_low_rate() {
        let n = 400;
        let samples = samples(n);
        let mut rng = SimRng::seed_from_u64(3);
        let inf = ArrivalProcess::Infinite.arrivals(n, SimTime::ZERO, &mut rng);
        let direct_cfg =
            EngineConfig::for_model(find_model("llama-70b").unwrap(), GpuModel::A100_40);
        let direct =
            run_direct_openloop(direct_cfg, &samples, &inf, "inf", SimTime::from_secs(7200));
        let (mut gw, tokens) = DeploymentBuilder::single_cluster_test()
            .prewarm(1)
            .build_with_tokens();
        let first = run_gateway_openloop(
            &mut gw,
            &tokens.alice,
            MODEL,
            &samples,
            &inf,
            "inf",
            SimTime::from_secs(7200),
        );
        // The saturation-regime ordering from Figure 3.
        assert!(
            first.output_token_throughput > direct.output_token_throughput,
            "FIRST {} vs direct {}",
            first.output_token_throughput,
            direct.output_token_throughput
        );
        assert!(first.request_throughput > direct.request_throughput);
    }

    #[test]
    fn openai_comparator_is_rate_limited_but_low_latency() {
        let samples = samples(100);
        let mut rng = SimRng::seed_from_u64(4);
        let inf = ArrivalProcess::Infinite.arrivals(100, SimTime::ZERO, &mut rng);
        let report = run_openai_openloop(
            CloudApiConfig::default(),
            &samples,
            &inf,
            "inf",
            SimTime::from_secs(3600),
        );
        assert_eq!(report.completed, 100);
        assert!(report.request_throughput < 8.0);
        assert!(report.median_latency_s < 15.0);
    }

    #[test]
    fn webui_closed_loop_counts_only_window_completions() {
        let (mut gw, tokens) = DeploymentBuilder::single_cluster_test()
            .prewarm(1)
            .build_with_tokens();
        let config = SessionWorkloadConfig::table1("meta-llama/Meta-Llama-3.1-8B-Instruct", 20, 60);
        let cell = run_webui_closed_loop(
            &mut gw,
            &tokens.alice,
            &config,
            SimDuration::from_millis(1200),
            7,
        );
        assert_eq!(cell.concurrency, 20);
        assert!(cell.completed > 0, "at least some turns complete in 60 s");
        assert!(cell.request_throughput > 0.0);
        assert!(cell.token_throughput > 0.0);
    }
}
