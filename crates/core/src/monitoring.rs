//! The gateway's monitoring surface (§3.1.1, §7).
//!
//! The production gateway exposes "real-time monitoring of the compute
//! resources and queue status" plus a summary dashboard, and is scraped by
//! the facility monitoring stack. This module bridges a live [`Gateway`] into
//! the `first-telemetry` substrate: it builds [`DashboardSnapshot`]s, exports
//! a full [`MetricRegistry`] (ready for Prometheus-style exposition), and
//! ships a default alert pack for the conditions administrators care about
//! (deep task backlogs, no hot capacity, rising failure rates).

use crate::gateway::Gateway;
use crate::shard::ShardedGateway;
use first_desim::SimTime;
use first_telemetry::{
    AlertRule, AlertSeverity, Alerting, ClusterRow, DashboardSnapshot, LabelSet, MetricRegistry,
    ModelRow, PhaseLatencyRow, QueueRow, TenantRow,
};
use std::collections::BTreeMap;

impl Gateway {
    /// Build the operations dashboard for the current state of the deployment.
    ///
    /// The snapshot combines the `/jobs` view (model states and instance
    /// counts), the request log (per-model usage), the metrics layer
    /// (latency summaries) and the fabric/cluster state (node occupancy and
    /// task queues).
    ///
    /// Takes `&self`, exactly like [`Gateway::export_metrics`]: both scrape
    /// paths are read-only and idempotent. The invariant is that a scrape
    /// never mutates gateway state — the per-model latency quantiles come
    /// from [`first_desim::Histogram::quantile`], the `&self` percentile that
    /// reads through (or rebuilds a temporary copy of) the sorted cache
    /// without touching it, so scraping twice in a row yields identical
    /// snapshots and never perturbs report equality.
    pub fn dashboard_snapshot(&self, now: SimTime) -> DashboardSnapshot {
        let jobs = self.jobs_status();
        let usage = self.log().usage_by_model();
        let distinct_users = self.log().distinct_users() as u64;

        let mut models = Vec::with_capacity(jobs.len());
        for entry in &jobs {
            let summary = usage.get(&entry.model).cloned().unwrap_or_default();
            let (median, p95) = match self.metrics().latency_by_model.get(&entry.model) {
                Some(h) => (h.quantile(50.0), h.quantile(95.0)),
                None => (0.0, 0.0),
            };
            models.push(ModelRow {
                model: entry.model.clone(),
                state: entry.state.clone(),
                running_instances: entry.running_instances,
                requests: summary.requests,
                output_tokens: summary.completion_tokens,
                median_latency_s: median,
                p95_latency_s: p95,
            });
        }

        // Cluster rows: endpoints sharing a cluster are aggregated once per
        // cluster name (the federation view the §4.5 router also consults).
        let mut clusters: BTreeMap<String, ClusterRow> = BTreeMap::new();
        let mut queues = Vec::new();
        for ep in self.service().endpoints() {
            let status = ep.cluster_status();
            let row = clusters
                .entry(status.cluster.clone())
                .or_insert_with(|| ClusterRow {
                    cluster: status.cluster.clone(),
                    ..ClusterRow::default()
                });
            // A cluster appears behind exactly one endpoint in our
            // deployments; if several endpoints shared a cluster the status
            // would be identical, so overwriting is safe.
            row.total_nodes = status.total_nodes;
            row.idle_nodes = status.idle_nodes;
            row.busy_nodes = status.total_nodes - status.idle_nodes - status.offline_nodes;
            row.queued_jobs = ep.scheduler().queued_count() as u32;

            let backlog: usize = ep.all_model_statuses().iter().map(|s| s.backlog).sum();
            let running: usize = ep.instances().iter().map(|i| i.in_flight()).sum();
            let health = self.health().state(ep.name(), now).label().to_string();
            queues.push(QueueRow {
                endpoint: ep.name().to_string(),
                queued_tasks: backlog as u64,
                running_tasks: running as u64,
                completed_tasks: ep.stats().tasks_completed,
                health,
            });
        }

        // Tenant rows: the per-user partition of the request log. Scenario
        // runs enroll one auth user per tenant class, so this is exactly the
        // per-tenant view the scenario matrix reports on.
        let tenants: Vec<TenantRow> = self
            .log()
            .usage_by_user()
            .into_iter()
            .map(|(tenant, usage)| TenantRow {
                tenant,
                requests: usage.requests,
                failures: usage.failures,
                output_tokens: usage.completion_tokens,
                total_tokens: usage.total_tokens,
            })
            .collect();

        // Phase-latency rows from the flight recorder, in lifecycle order
        // (empty unless tracing is enabled and has sampled traces).
        let phases = self
            .phase_breakdown()
            .map(|b| {
                b.by_phase
                    .iter()
                    .map(|s| PhaseLatencyRow {
                        phase: s.phase.name().to_string(),
                        count: s.count,
                        p50_s: s.p50_s,
                        p95_s: s.p95_s,
                        total_s: s.total_s,
                    })
                    .collect()
            })
            .unwrap_or_default();

        let (harness_wall_s, _, harness_events_per_sec) = self.harness_health();
        let metrics = self.metrics();
        let mut snapshot = DashboardSnapshot {
            at_seconds: now.as_secs_f64(),
            models,
            clusters: clusters.into_values().collect(),
            queues,
            tenants,
            phases,
            shards: Vec::new(),
            replay: None,
            total_requests: metrics.total_received(),
            total_completed: metrics.completed,
            total_failed: metrics.failed + metrics.rejected,
            total_output_tokens: metrics.output_tokens,
            distinct_users,
            total_retries: metrics.retries,
            total_failovers: metrics.failovers,
            breaker_trips: metrics.breaker_trips,
            total_hedges: metrics.hedges,
            harness_wall_s,
            harness_events_per_sec,
        };
        snapshot.normalise();
        snapshot
    }

    /// Export the gateway's current state as a fresh metric registry, ready
    /// for [`first_telemetry::render_prometheus`].
    ///
    /// The registry is rebuilt from scratch on every call (counters reflect
    /// totals since the deployment started), which keeps the export
    /// idempotent: scraping twice does not double-count anything. Exposition
    /// is read-only (`&self`): a scrape never mutates gateway state.
    pub fn export_metrics(&self, now: SimTime) -> MetricRegistry {
        let registry = MetricRegistry::new();

        // Gateway request counters by operation.
        for (op, count) in &self.metrics().received {
            registry.add_counter(
                "first_gateway_requests_received_total",
                LabelSet::single("operation", op.clone()),
                *count,
            );
        }
        {
            let metrics = self.metrics();
            registry.add_counter(
                "first_gateway_requests_completed_total",
                LabelSet::empty(),
                metrics.completed,
            );
            registry.add_counter(
                "first_gateway_requests_failed_total",
                LabelSet::empty(),
                metrics.failed,
            );
            registry.add_counter(
                "first_gateway_requests_rejected_total",
                LabelSet::empty(),
                metrics.rejected,
            );
            registry.add_counter(
                "first_gateway_output_tokens_total",
                LabelSet::empty(),
                metrics.output_tokens,
            );
            registry.add_counter(
                "first_gateway_retries_total",
                LabelSet::empty(),
                metrics.retries,
            );
            registry.add_counter(
                "first_gateway_failovers_total",
                LabelSet::empty(),
                metrics.failovers,
            );
            registry.add_counter(
                "first_gateway_breaker_trips_total",
                LabelSet::empty(),
                metrics.breaker_trips,
            );
            registry.add_counter(
                "first_gateway_hedged_requests_total",
                LabelSet::empty(),
                metrics.hedges,
            );
        }

        // Per-request latency histogram, replayed from the request log so the
        // exported buckets match the canonical record of every request.
        for entry in self.log().entries() {
            registry.observe(
                "first_request_latency_seconds",
                LabelSet::single("model", entry.model.clone()),
                entry.latency().as_secs_f64(),
            );
            registry.add_counter(
                "first_request_tokens_total",
                LabelSet::from_pairs([
                    ("model", entry.model.clone()),
                    ("kind", "completion".to_string()),
                ]),
                entry.completion_tokens as u64,
            );
            registry.add_counter(
                "first_request_tokens_total",
                LabelSet::from_pairs([
                    ("model", entry.model.clone()),
                    ("kind", "prompt".to_string()),
                ]),
                entry.prompt_tokens as u64,
            );
        }

        // Per-tenant (auth-user) partitions of the request log, the labelled
        // counters the scenario-matrix dashboards consume.
        for (tenant, usage) in self.log().usage_by_user() {
            let labels = LabelSet::single("tenant", tenant);
            registry.add_counter(
                "first_tenant_requests_total",
                labels.clone(),
                usage.requests,
            );
            registry.add_counter("first_tenant_failed_total", labels.clone(), usage.failures);
            registry.add_counter(
                "first_tenant_output_tokens_total",
                labels,
                usage.completion_tokens,
            );
        }

        // Per-phase latency histograms from the flight recorder (tracing must
        // be enabled; with the default `TraceConfig` off this loop sees no
        // trees and exports nothing). Leaf spans only — the root `request`
        // span is the sum of its children plus idle time and would double
        // count every phase.
        for tree in self.recorder().trees() {
            for span in tree.spans.iter().filter(|s| s.parent.is_some()) {
                registry.observe(
                    "first_phase_seconds",
                    LabelSet::from_pairs([
                        ("phase", span.phase.name().to_string()),
                        ("tenant", tree.tenant.clone()),
                    ]),
                    span.duration_s(),
                );
            }
        }

        // `/jobs` model states as gauges.
        for entry in self.jobs_status() {
            let labels = LabelSet::single("model", entry.model.clone());
            registry.set_gauge(
                "first_model_running_instances",
                labels.clone(),
                entry.running_instances as f64,
            );
            registry.set_gauge(
                "first_model_starting_instances",
                labels.clone(),
                entry.starting_instances as f64,
            );
            registry.set_gauge(
                "first_model_queued_instances",
                labels,
                entry.queued_instances as f64,
            );
        }

        // Fabric-level counters and queue gauges.
        let stats = self.service().stats().clone();
        registry.add_counter(
            "first_fabric_tasks_submitted_total",
            LabelSet::empty(),
            stats.submitted,
        );
        registry.add_counter(
            "first_fabric_tasks_completed_total",
            LabelSet::empty(),
            stats.completed,
        );
        registry.add_counter(
            "first_fabric_tasks_failed_total",
            LabelSet::empty(),
            stats.failed,
        );
        registry.set_gauge(
            "first_fabric_queue_depth",
            LabelSet::empty(),
            self.service().queue_depth() as f64,
        );
        registry.set_gauge(
            "first_fabric_peak_queue_depth",
            LabelSet::empty(),
            stats.peak_queue_depth as f64,
        );

        // Per-endpoint and per-cluster resource gauges.
        for ep in self.service().endpoints() {
            let ep_labels = LabelSet::single("endpoint", ep.name().to_string());
            registry.set_gauge(
                "first_endpoint_health",
                ep_labels.clone(),
                self.health().state(ep.name(), now).severity(),
            );
            let ep_stats = ep.stats();
            registry.add_counter(
                "first_endpoint_tasks_completed_total",
                ep_labels.clone(),
                ep_stats.tasks_completed,
            );
            registry.add_counter(
                "first_endpoint_instance_restarts_total",
                ep_labels.clone(),
                ep_stats.restarts,
            );
            registry.add_counter(
                "first_endpoint_instances_released_total",
                ep_labels.clone(),
                ep_stats.instances_released,
            );
            let backlog: usize = ep.all_model_statuses().iter().map(|s| s.backlog).sum();
            registry.set_gauge("first_endpoint_backlog_tasks", ep_labels, backlog as f64);

            let status = ep.cluster_status();
            let cl_labels = LabelSet::single("cluster", status.cluster.clone());
            registry.set_gauge(
                "first_cluster_total_nodes",
                cl_labels.clone(),
                status.total_nodes as f64,
            );
            registry.set_gauge(
                "first_cluster_idle_nodes",
                cl_labels.clone(),
                status.idle_nodes as f64,
            );
            registry.set_gauge(
                "first_cluster_free_gpus",
                cl_labels.clone(),
                status.free_gpus as f64,
            );
            registry.set_gauge(
                "first_cluster_queued_jobs",
                cl_labels,
                ep.scheduler().queued_count() as f64,
            );
        }

        registry.set_gauge(
            "first_scrape_time_seconds",
            LabelSet::empty(),
            now.as_secs_f64(),
        );

        // Harness health: how fast the simulation itself is running. The
        // benchmark artifacts record the same numbers per run; exporting them
        // here puts them on the live dashboard next to the workload metrics.
        let (wall_s, events, events_per_sec) = self.harness_health();
        registry.set_gauge("first_sim_wall_clock_seconds", LabelSet::empty(), wall_s);
        registry.set_gauge(
            "first_sim_events_processed",
            LabelSet::empty(),
            events as f64,
        );
        registry.set_gauge(
            "first_sim_events_per_second",
            LabelSet::empty(),
            events_per_sec,
        );
        registry
    }

    /// The default alert pack administrators deploy alongside the gateway.
    pub fn default_alert_rules() -> Vec<AlertRule> {
        use first_desim::SimDuration;
        vec![
            AlertRule::above(
                "fabric_backlog_high",
                "first_fabric_queue_depth",
                LabelSet::empty(),
                5000.0,
                SimDuration::from_secs(120),
                AlertSeverity::Warning,
            ),
            AlertRule::above(
                "gateway_failures_present",
                "first_gateway_requests_failed_total",
                LabelSet::empty(),
                0.0,
                SimDuration::ZERO,
                AlertSeverity::Warning,
            ),
            AlertRule::above(
                "gateway_rejections_spiking",
                "first_gateway_requests_rejected_total",
                LabelSet::empty(),
                100.0,
                SimDuration::from_secs(60),
                AlertSeverity::Info,
            ),
        ]
    }

    /// Build an [`Alerting`] evaluator pre-loaded with the default rules.
    pub fn default_alerting() -> Alerting {
        let mut alerting = Alerting::new();
        for rule in Self::default_alert_rules() {
            alerting.add_rule(rule);
        }
        alerting
    }

    /// Resilience alert rules for this deployment's endpoints: one
    /// sustained-unavailability rule per endpoint, firing when the
    /// `first_endpoint_health` gauge sits at "unavailable" (2) for 30 s —
    /// i.e. the circuit breaker stayed open past a transient flap. Silent on
    /// healthy deployments because the gauge only reaches 2 when a breaker
    /// actually opens.
    pub fn resilience_alert_rules(&self) -> Vec<AlertRule> {
        use first_desim::SimDuration;
        self.service()
            .endpoint_names()
            .into_iter()
            .map(|name| {
                AlertRule::above(
                    format!("endpoint_unavailable_sustained:{name}"),
                    "first_endpoint_health",
                    LabelSet::single("endpoint", name),
                    1.5,
                    SimDuration::from_secs(30),
                    AlertSeverity::Critical,
                )
            })
            .collect()
    }

    /// Build an [`Alerting`] evaluator with the default pack plus the
    /// per-endpoint resilience rules for this deployment.
    pub fn alerting(&self) -> Alerting {
        let mut alerting = Self::default_alerting();
        for rule in self.resilience_alert_rules() {
            alerting.add_rule(rule);
        }
        alerting
    }
}

impl ShardedGateway {
    /// Failover alert rules for the federation tier: one sustained-
    /// unavailability rule per shard, firing when the `first_shard_health`
    /// gauge (exported by [`ShardedGateway::export_shard_metrics`]) sits at
    /// "unavailable" (2) for 30 s — a crashed or partitioned shard that
    /// stayed down past a transient blip. Silent on healthy fleets because
    /// the gauge only reaches 2 when a shard breaker actually opens.
    pub fn shard_failover_alert_rules(&self) -> Vec<AlertRule> {
        use first_desim::SimDuration;
        (0..self.shard_count())
            .map(|shard| {
                AlertRule::above(
                    format!("shard_unavailable_sustained:{shard}"),
                    "first_shard_health",
                    LabelSet::single("shard", shard.to_string()),
                    1.5,
                    SimDuration::from_secs(30),
                    AlertSeverity::Critical,
                )
            })
            .collect()
    }

    /// Build an [`Alerting`] evaluator with the per-shard failover rules.
    pub fn shard_alerting(&self) -> Alerting {
        let mut alerting = Alerting::new();
        for rule in self.shard_failover_alert_rules() {
            alerting.add_rule(rule);
        }
        alerting
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::ChatCompletionRequest;
    use crate::deploy::DeploymentBuilder;
    use first_desim::SimProcess;
    use first_telemetry::render_prometheus;

    const MODEL: &str = "meta-llama/Llama-3.3-70B-Instruct";

    fn run_some_traffic() -> Gateway {
        run_traffic(DeploymentBuilder::single_cluster_test().prewarm(1))
    }

    fn run_traffic(builder: DeploymentBuilder) -> Gateway {
        let (mut gw, tokens) = builder.build_with_tokens();
        for i in 0..5 {
            let req = ChatCompletionRequest::simple(MODEL, &format!("prompt {i}"), 200);
            gw.chat_completions(&req, &tokens.alice, Some(120), SimTime::from_secs(i))
                .unwrap();
        }
        let mut now = SimTime::ZERO;
        while let Some(t) = SimProcess::next_event_time(&gw) {
            now = now.max(t);
            gw.advance(now);
            if gw.is_drained() {
                break;
            }
        }
        gw
    }

    #[test]
    fn dashboard_reflects_served_traffic() {
        let gw = run_some_traffic();
        let snap = gw.dashboard_snapshot(SimTime::from_secs(600));
        assert_eq!(snap.total_completed, 5);
        assert_eq!(snap.total_failed, 0);
        assert!(snap.total_output_tokens >= 5 * 120);
        assert_eq!(snap.distinct_users, 1);
        let row = snap.models.iter().find(|m| m.model == MODEL).unwrap();
        assert_eq!(row.state, "running");
        assert_eq!(row.requests, 5);
        assert!(row.median_latency_s > 0.0);
        assert!(!snap.clusters.is_empty());
        assert!(snap.clusters[0].total_nodes > 0);
        // The per-tenant partition mirrors the request log's user view.
        assert_eq!(snap.tenants.len(), 1);
        assert_eq!(snap.tenants[0].tenant, "alice");
        assert_eq!(snap.tenants[0].requests, 5);
        assert_eq!(snap.tenants[0].failures, 0);
        assert!(snap.tenants[0].output_tokens >= 5 * 120);
        let text = snap.render_text();
        assert!(text.contains(MODEL));
        assert!(text.contains("-- clusters --"));
        assert!(text.contains("-- tenants --"));
        assert!(text.contains("alice"));
    }

    #[test]
    fn exported_metrics_match_gateway_counters_and_render() {
        let gw = run_some_traffic();
        let registry = gw.export_metrics(SimTime::from_secs(600));
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_family_total("first_gateway_requests_received_total"),
            5
        );
        assert_eq!(
            snap.counter_value("first_gateway_requests_completed_total", &LabelSet::empty()),
            5
        );
        assert_eq!(
            snap.counter_family_total("first_request_tokens_total"),
            gw.log()
                .entries()
                .iter()
                .map(|e| e.total_tokens())
                .sum::<u64>()
        );
        assert_eq!(
            snap.counter_value(
                "first_tenant_requests_total",
                &LabelSet::single("tenant", "alice".to_string())
            ),
            5
        );
        let text = render_prometheus(&snap);
        assert!(text.contains("first_request_latency_seconds_bucket"));
        assert!(text.contains("first_cluster_total_nodes"));
        assert!(text.contains("first_tenant_requests_total"));
        // Exporting twice yields identical totals (no double counting).
        let again = gw.export_metrics(SimTime::from_secs(601));
        assert_eq!(
            again
                .snapshot()
                .counter_family_total("first_gateway_requests_received_total"),
            5
        );
    }

    #[test]
    fn traced_traffic_exports_phase_metrics_and_dashboard_rows() {
        use first_telemetry::TraceConfig;
        let gw = run_traffic(
            DeploymentBuilder::single_cluster_test()
                .prewarm(1)
                .trace(TraceConfig::every_request(64)),
        );
        assert!(!gw.recorder().is_empty(), "flight recorder sampled traffic");

        // Exposition is read-only and carries the per-phase histogram.
        let registry = gw.export_metrics(SimTime::from_secs(600));
        let snap = registry.snapshot();
        let text = render_prometheus(&snap);
        assert!(text.contains("first_phase_seconds_bucket"));
        assert!(text.contains("phase=\"decode\""));
        assert!(text.contains("tenant=\"alice\""));

        // The dashboard grows a phases section, in lifecycle order.
        let dash = gw.dashboard_snapshot(SimTime::from_secs(600));
        assert!(!dash.phases.is_empty());
        let rendered = dash.render_text();
        assert!(rendered.contains("-- phases --"));
        let queue = rendered.find("queue_wait").expect("queue_wait row");
        let decode = rendered.find("decode").expect("decode row");
        assert!(queue < decode, "rows render in lifecycle order");

        // Untraced gateways export no phase family and no dashboard section.
        let gw = run_some_traffic();
        let text = render_prometheus(&gw.export_metrics(SimTime::from_secs(600)).snapshot());
        assert!(!text.contains("first_phase_seconds"));
    }

    #[test]
    fn default_alerts_stay_quiet_on_a_healthy_deployment_and_fire_on_failures() {
        let mut gw = run_some_traffic();
        let registry = gw.export_metrics(SimTime::from_secs(600));
        let mut alerting = Gateway::default_alerting();
        assert_eq!(alerting.rule_count(), 3);
        let fired = alerting.evaluate(&registry, SimTime::from_secs(600));
        assert!(fired.is_empty(), "unexpected alerts: {fired:?}");

        // Inject failures into the metrics layer and re-export: the failure
        // alert fires immediately (hold_for is zero).
        gw.metrics_mut().on_failed();
        let registry = gw.export_metrics(SimTime::from_secs(700));
        let fired = alerting.evaluate(&registry, SimTime::from_secs(700));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].rule, "gateway_failures_present");
    }

    #[test]
    fn dashboard_and_jobs_surface_resilience_counters() {
        let resilience = first_chaos::ResilienceConfig {
            hedge_after: None,
            ..first_chaos::ResilienceConfig::production()
        };
        let (mut gw, tokens) = DeploymentBuilder::federated_sophia_polaris()
            .prewarm(1)
            .resilience(resilience)
            .build_with_tokens();
        gw.service_mut()
            .endpoint_mut("sophia-endpoint")
            .unwrap()
            .set_offline_until(SimTime::from_secs(3600));
        let req = ChatCompletionRequest::simple(MODEL, "resilient dashboard", 100);
        gw.chat_completions(&req, &tokens.alice, Some(100), SimTime::ZERO)
            .unwrap();
        let mut now = SimTime::ZERO;
        while let Some(t) = SimProcess::next_event_time(&gw) {
            now = now.max(t);
            gw.advance(now);
            if gw.is_drained() {
                break;
            }
        }
        let snap = gw.dashboard_snapshot(now);
        assert_eq!(snap.total_completed, 1);
        assert!(snap.total_retries >= 1);
        assert!(snap.total_failovers >= 1);
        let sophia_row = snap
            .queues
            .iter()
            .find(|q| q.endpoint == "sophia-endpoint")
            .unwrap();
        assert_eq!(sophia_row.health, "degraded");
        let text = snap.render_text();
        assert!(text.contains("-- resilience --"));
    }

    #[test]
    fn shard_failover_alert_fires_when_a_shard_stays_dead() {
        use crate::shard::{ShardedGateway, ShardingConfig};
        let builder = DeploymentBuilder::single_cluster_test().prewarm(1);
        let mut fleet = ShardedGateway::from_builder(&builder, ShardingConfig::with_shards(3));
        let mut alerting = fleet.shard_alerting();
        assert_eq!(alerting.rule_count(), 3, "one rule per shard");

        // Healthy fleet: quiet.
        let registry = fleet.export_shard_metrics(SimTime::from_secs(10));
        assert!(alerting
            .evaluate(&registry, SimTime::from_secs(10))
            .is_empty());

        // Kill shard 2 at t=20: the health gauge hits 2 immediately, the
        // sustained rule fires only after the 30 s hold.
        fleet.kill_shard(2, SimTime::from_secs(20));
        let registry = fleet.export_shard_metrics(SimTime::from_secs(21));
        assert!(alerting
            .evaluate(&registry, SimTime::from_secs(21))
            .is_empty());
        let registry = fleet.export_shard_metrics(SimTime::from_secs(55));
        let fired = alerting.evaluate(&registry, SimTime::from_secs(55));
        assert!(
            fired
                .iter()
                .any(|a| a.rule == "shard_unavailable_sustained:2"),
            "expected shard-2 sustained alert, got {fired:?}"
        );
    }

    #[test]
    fn sustained_unavailability_alert_fires_in_outages_and_stays_quiet_otherwise() {
        // Healthy deployment: the resilience rules exist but never fire.
        let gw = run_some_traffic();
        let mut alerting = gw.alerting();
        assert_eq!(
            alerting.rule_count(),
            Gateway::default_alert_rules().len() + 1,
            "one sustained-unavailability rule per endpoint"
        );
        for t in [600u64, 700, 800] {
            let registry = gw.export_metrics(SimTime::from_secs(t));
            assert!(alerting
                .evaluate(&registry, SimTime::from_secs(t))
                .is_empty());
        }

        // Outage: Sophia dark, four requests trip the breaker (~t=25); the
        // health gauge sits at 2 and the sustained rule fires after 30 s.
        let resilience = first_chaos::ResilienceConfig {
            hedge_after: None,
            ..first_chaos::ResilienceConfig::production()
        };
        let (mut gw, tokens) = DeploymentBuilder::federated_sophia_polaris()
            .prewarm(1)
            .resilience(resilience)
            .build_with_tokens();
        gw.service_mut()
            .endpoint_mut("sophia-endpoint")
            .unwrap()
            .set_offline_until(SimTime::from_secs(3600));
        for i in 0..4u64 {
            let req = ChatCompletionRequest::simple(MODEL, &format!("outage {i}"), 80);
            gw.chat_completions(&req, &tokens.alice, Some(80), SimTime::from_secs(i * 10))
                .unwrap();
        }
        let mut now = SimTime::ZERO;
        while let Some(t) = SimProcess::next_event_time(&gw) {
            if t > SimTime::from_secs(75) {
                break;
            }
            now = now.max(t);
            gw.advance(now);
            if gw.is_drained() {
                break;
            }
        }
        let registry = gw.export_metrics(SimTime::from_secs(40));
        let snapshot = registry.snapshot();
        let health = snapshot.find(
            "first_endpoint_health",
            &LabelSet::single("endpoint", "sophia-endpoint".to_string()),
        );
        assert!(health.is_some(), "health gauge exported per endpoint");
        let mut alerting = gw.alerting();
        assert!(alerting
            .evaluate(&registry, SimTime::from_secs(40))
            .is_empty());
        let registry = gw.export_metrics(SimTime::from_secs(72));
        let fired = alerting.evaluate(&registry, SimTime::from_secs(72));
        assert!(
            fired
                .iter()
                .any(|a| a.rule == "endpoint_unavailable_sustained:sophia-endpoint"),
            "expected sustained-unavailability alert, got {fired:?}"
        );
    }
}
