//! Batch processing mode (§4.4).
//!
//! Users submit a JSON Lines input file to `/v1/batches`; FIRST runs the whole
//! file as one dedicated HPC job that loads the model solely for that task and
//! processes every request offline, with no online serving layer in between.
//! The manager tracks job status ("validating", "queued", "in_progress",
//! "completed") so long-running jobs can be monitored.

use crate::gateway::Gateway;
use first_desim::{SimDuration, SimProcess, SimTime};
use first_hpc::{JobId, JobRequest, JobState};
use first_serving::{
    find_model, run_offline_batch, BatchRunReport, EngineConfig, InferenceRequest,
};
use first_workload::BatchInputFile;
use serde::{Deserialize, Serialize};

/// Identifier of a batch job at the gateway.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BatchId(pub u64);

/// Lifecycle of a batch job, mirroring the OpenAI batch states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BatchState {
    /// Input file accepted and validated.
    Validating,
    /// Dedicated HPC job waiting in the cluster queue.
    Queued,
    /// Model loading / requests being processed.
    InProgress,
    /// All requests processed; output available.
    Completed,
    /// The input file failed validation.
    Failed,
}

/// A batch job record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchJob {
    /// Batch identifier.
    pub id: BatchId,
    /// Submitting user.
    pub user: String,
    /// Target model.
    pub model: String,
    /// Endpoint / cluster executing the job.
    pub endpoint: String,
    /// Number of requests in the input file.
    pub requests: usize,
    /// Current state.
    pub state: BatchState,
    /// Submission time.
    pub submitted_at: SimTime,
    /// When the dedicated HPC job started (resources allocated).
    pub started_at: Option<SimTime>,
    /// When the batch finished.
    pub completed_at: Option<SimTime>,
    /// Execution report, once completed.
    pub report: Option<BatchRunReport>,
    /// Underlying scheduler job.
    pub hpc_job: Option<JobId>,
    /// Validation error, if any.
    pub error: Option<String>,
}

impl BatchJob {
    /// Total wall time from submission to completion, if finished.
    pub fn turnaround(&self) -> Option<SimDuration> {
        self.completed_at.map(|t| t - self.submitted_at)
    }
}

/// Manager for batch jobs submitted through `/v1/batches`.
#[derive(Debug, Default)]
pub struct BatchManager {
    jobs: Vec<BatchJob>,
}

impl BatchManager {
    /// Create an empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// All batch jobs.
    pub fn jobs(&self) -> &[BatchJob] {
        &self.jobs
    }

    /// Look up a batch job.
    pub fn job(&self, id: BatchId) -> Option<&BatchJob> {
        self.jobs.iter().find(|j| j.id == id)
    }

    /// Submit a batch input file targeting `model` on behalf of `user`.
    ///
    /// The dedicated HPC job is submitted to the endpoint chosen by the
    /// federation registry (first endpoint hosting the model); its queue wait
    /// comes from that cluster's scheduler, and the execution profile from the
    /// offline batch runner.
    pub fn submit(
        &mut self,
        gateway: &mut Gateway,
        user: &str,
        model: &str,
        input: &BatchInputFile,
        now: SimTime,
    ) -> BatchId {
        let id = BatchId(self.jobs.len() as u64 + 1);
        let mut job = BatchJob {
            id,
            user: user.to_string(),
            model: model.to_string(),
            endpoint: String::new(),
            requests: input.len(),
            state: BatchState::Validating,
            submitted_at: now,
            started_at: None,
            completed_at: None,
            report: None,
            hpc_job: None,
            error: None,
        };

        // Validate the input file and model registration.
        if input.is_empty() {
            job.state = BatchState::Failed;
            job.error = Some("input file contains no requests".to_string());
            self.jobs.push(job);
            return id;
        }
        let Some(endpoints) = gateway.registry().endpoints_for(model).map(|e| e.to_vec()) else {
            job.state = BatchState::Failed;
            job.error = Some(format!("model '{model}' is not registered"));
            self.jobs.push(job);
            return id;
        };
        let Some(spec) = find_model(model) else {
            job.state = BatchState::Failed;
            job.error = Some(format!("model '{model}' is not in the catalog"));
            self.jobs.push(job);
            return id;
        };
        let endpoint_name = endpoints[0].clone();
        job.endpoint = endpoint_name.clone();

        // Build the dedicated job request and the offline execution profile.
        let gpu = gateway
            .service()
            .endpoint(&endpoint_name)
            .map(|ep| ep.config().gpu)
            .unwrap_or(first_hpc::GpuModel::A100_40);
        let engine_config = EngineConfig::for_model(spec.clone(), gpu);
        let requests: Vec<InferenceRequest> = input
            .lines
            .iter()
            .enumerate()
            .map(|(i, line)| {
                let prompt = line
                    .body
                    .messages
                    .iter()
                    .map(|m| m.content.split_whitespace().count() as u32)
                    .sum::<u32>()
                    .max(1);
                InferenceRequest::chat(i as u64, model, prompt, line.body.max_tokens.max(1))
                    .with_user(user)
            })
            .collect();
        let report = run_offline_batch(engine_config.clone(), requests);

        // Submit the dedicated HPC job on the endpoint's scheduler; the batch
        // occupies its allocation for the report's total duration.
        if let Some(ep) = gateway.service_mut().endpoint_mut(&endpoint_name) {
            let hpc_job = ep.scheduler_mut().submit(
                JobRequest {
                    nodes: engine_config.nodes,
                    gpus_per_node: engine_config.gpus_total.min(8),
                    walltime: report.total_duration + SimDuration::from_mins(30),
                    priority: first_hpc::JobPriority::Normal,
                    user: user.to_string(),
                    tag: format!("batch:{model}"),
                },
                now,
            );
            job.hpc_job = Some(hpc_job);
            job.state = match ep.scheduler().job(hpc_job).map(|j| j.state) {
                Some(JobState::Running) => BatchState::InProgress,
                _ => BatchState::Queued,
            };
        } else {
            job.state = BatchState::Failed;
            job.error = Some(format!("endpoint '{endpoint_name}' not found"));
        }
        job.report = Some(report);
        self.jobs.push(job);
        id
    }

    /// Advance batch jobs: detect HPC job starts and mark completion when the
    /// offline run's duration has elapsed.
    pub fn advance(&mut self, gateway: &mut Gateway, now: SimTime) {
        for job in self.jobs.iter_mut() {
            if matches!(job.state, BatchState::Completed | BatchState::Failed) {
                continue;
            }
            let Some(hpc_job) = job.hpc_job else { continue };
            let Some(ep) = gateway.service_mut().endpoint_mut(&job.endpoint) else {
                continue;
            };
            ep.scheduler_mut().advance(now);
            let Some(rec) = ep.scheduler().job(hpc_job) else {
                continue;
            };
            if let Some(started) = rec.started_at {
                if job.started_at.is_none() {
                    job.started_at = Some(started);
                    job.state = BatchState::InProgress;
                }
                let duration = job
                    .report
                    .as_ref()
                    .map(|r| r.total_duration)
                    .unwrap_or_default();
                let finish = started + duration;
                if now >= finish {
                    job.state = BatchState::Completed;
                    job.completed_at = Some(finish);
                    ep.scheduler_mut().complete(hpc_job, finish);
                }
            }
        }
    }

    /// States of all jobs, for the `/v1/batches` status endpoint.
    pub fn statuses(&self) -> Vec<(BatchId, BatchState)> {
        self.jobs.iter().map(|j| (j.id, j.state)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::DeploymentBuilder;

    const MODEL: &str = "meta-llama/Llama-3.3-70B-Instruct";

    #[test]
    fn batch_job_runs_to_completion() {
        let (mut gw, _tokens) = DeploymentBuilder::single_cluster_test().build_with_tokens();
        let mut mgr = BatchManager::new();
        let input = BatchInputFile::synthetic(MODEL, 200, 9);
        let id = mgr.submit(&mut gw, "alice", MODEL, &input, SimTime::ZERO);
        assert!(matches!(
            mgr.job(id).unwrap().state,
            BatchState::Queued | BatchState::InProgress
        ));
        // Drive far enough for load + processing of 200 requests.
        mgr.advance(&mut gw, SimTime::from_secs(20));
        assert_eq!(mgr.job(id).unwrap().state, BatchState::InProgress);
        mgr.advance(&mut gw, SimTime::from_secs(4 * 3600));
        let job = mgr.job(id).unwrap();
        assert_eq!(job.state, BatchState::Completed);
        let report = job.report.as_ref().unwrap();
        assert_eq!(report.requests, 200);
        // A 200-request batch is still cold-start dominated; steady-state
        // throughput is what the paper's 2117 tok/s figure reflects.
        assert!(report.overall_tokens_per_sec > 150.0);
        assert!(report.steady_tokens_per_sec > 800.0);
        assert!(job.turnaround().unwrap() >= report.total_duration);
    }

    #[test]
    fn empty_input_fails_validation() {
        let (mut gw, _tokens) = DeploymentBuilder::single_cluster_test().build_with_tokens();
        let mut mgr = BatchManager::new();
        let id = mgr.submit(
            &mut gw,
            "alice",
            MODEL,
            &BatchInputFile::new(),
            SimTime::ZERO,
        );
        assert_eq!(mgr.job(id).unwrap().state, BatchState::Failed);
    }

    #[test]
    fn unregistered_model_fails_validation() {
        let (mut gw, _tokens) = DeploymentBuilder::single_cluster_test().build_with_tokens();
        let mut mgr = BatchManager::new();
        let input = BatchInputFile::synthetic("ghost-model", 5, 1);
        let id = mgr.submit(&mut gw, "alice", "ghost-model", &input, SimTime::ZERO);
        assert_eq!(mgr.job(id).unwrap().state, BatchState::Failed);
        assert!(mgr.job(id).unwrap().error.is_some());
    }

    #[test]
    fn batch_waits_for_cluster_resources() {
        let (mut gw, _tokens) = DeploymentBuilder::single_cluster_test().build_with_tokens();
        // Fill the whole cluster with background jobs first.
        {
            let ep = gw.service_mut().endpoint_mut("sophia-endpoint").unwrap();
            for _ in 0..8 {
                ep.scheduler_mut().submit(
                    JobRequest::single_node(8, SimDuration::from_hours(1), "background"),
                    SimTime::ZERO,
                );
            }
        }
        let mut mgr = BatchManager::new();
        let input = BatchInputFile::synthetic(MODEL, 50, 3);
        let id = mgr.submit(&mut gw, "bob", MODEL, &input, SimTime::ZERO);
        assert_eq!(mgr.job(id).unwrap().state, BatchState::Queued);
        // After the background jobs end, the batch starts and completes.
        mgr.advance(&mut gw, SimTime::from_secs(3600));
        assert!(matches!(
            mgr.job(id).unwrap().state,
            BatchState::InProgress | BatchState::Completed
        ));
        assert!(mgr.job(id).unwrap().started_at.unwrap() >= SimTime::from_secs(3600));
    }
}
