//! Sharded multi-gateway federation: N peer gateway shards behind a thin
//! front tier.
//!
//! One `Gateway` advance loop is the reproduction's serial ceiling (PR 4's
//! scale sweep drove 26.8M events through a single instance), and the
//! production path to million-user traffic is horizontal: run several
//! identical gateway deployments as peers and fan requests in through
//! DNS/load-balancer routing. This module models that tier:
//!
//! * [`ConsistentHashRing`] — virtual-node consistent hashing of tenant
//!   names (API keys) onto shards, so adding a shard remaps only ~`1/(n+1)`
//!   of the key space and every remapped key moves *to the new shard*.
//! * [`SpilloverPolicy`] — bounded cross-shard spillover: when a tenant's
//!   home shard is saturated (its [`Gateway::load_depth`] exceeds the
//!   threshold) a bounded fraction of its traffic may divert to the
//!   least-loaded peer. Spills are accounted per shard (out at the home,
//!   in at the receiver) and surface in telemetry.
//! * [`ShardedGateway`] — the front tier itself: owns the shard fleet,
//!   routes submissions, models the fan-in hop with a configurable latency,
//!   and rolls shard-local queues and telemetry up into per-shard
//!   [`ShardReport`] rows plus aggregate dashboard/metric views.
//!
//! Every shard is a full deployment replica built from the *same*
//! [`DeploymentBuilder`] configuration, so
//! a credential enrolled identically on each shard is valid wherever the
//! ring (or a spill) sends the request — exactly the shared-control-plane /
//! shard-local-data-plane split the production gateway runs.
//!
//! A 1-shard [`ShardedGateway`] is transparent: the ring maps every key to
//! shard 0, no spill target exists, and the default fan-in latency is zero,
//! so driving it is bit-identical to driving the bare [`Gateway`] — the
//! property the sharding proptests pin.

use crate::deploy::DeploymentBuilder;
use crate::gateway::Gateway;
use first_desim::{fnv1a_64, SimDuration, SimProcess, SimTime};
use first_telemetry::{DashboardSnapshot, LabelSet, MetricRegistry, ShardRow};
use serde::{Deserialize, Serialize};

/// Virtual nodes per shard on the [`ConsistentHashRing`]. 64 points per
/// shard keeps the expected load imbalance across shards within a few
/// percent while the ring stays small enough to rebuild on every topology
/// change.
pub const RING_VNODES: usize = 64;

/// Bounded cross-shard spillover policy for the front tier.
///
/// Spillover fires per submission: when the home shard's
/// [`Gateway::load_depth`] exceeds `queue_threshold` and a strictly
/// less-loaded peer exists, the request diverts to the least-loaded peer —
/// but never more than `max_fraction` of the home shard's routed traffic,
/// so a melting shard cannot silently turn the whole fleet into one big
/// queue. Disabled by default (strict consistent-hash routing).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpilloverPolicy {
    /// Whether spillover is allowed at all.
    pub enabled: bool,
    /// Home-shard [`Gateway::load_depth`] above which spillover may fire.
    pub queue_threshold: usize,
    /// Upper bound on the fraction of a home shard's routed requests that
    /// may spill away from it (evaluated cumulatively over the run).
    pub max_fraction: f64,
}

impl Default for SpilloverPolicy {
    fn default() -> Self {
        SpilloverPolicy {
            enabled: false,
            queue_threshold: 0,
            max_fraction: 0.0,
        }
    }
}

impl SpilloverPolicy {
    /// Spillover disabled: every request sticks to its ring shard.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Bounded spillover: divert once the home shard holds more than
    /// `queue_threshold` unanswered requests, spilling at most
    /// `max_fraction` of the home shard's traffic.
    pub fn bounded(queue_threshold: usize, max_fraction: f64) -> Self {
        SpilloverPolicy {
            enabled: true,
            queue_threshold,
            max_fraction: max_fraction.clamp(0.0, 1.0),
        }
    }
}

/// Front-tier configuration: how many shards, what the fan-in hop costs and
/// whether saturated shards may spill. The default (`1` shard, zero fan-in,
/// no spillover) is the transparent configuration whose behaviour is
/// bit-identical to an unsharded deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardingConfig {
    /// Number of peer gateway shards (≥ 1).
    pub shards: usize,
    /// DNS/LB fan-in latency added between a client's send instant and the
    /// request reaching its shard. Zero by default so single-shard runs stay
    /// bit-identical to the unsharded path.
    pub fanin_latency: SimDuration,
    /// Cross-shard spillover policy.
    pub spillover: SpilloverPolicy,
}

impl Default for ShardingConfig {
    fn default() -> Self {
        ShardingConfig {
            shards: 1,
            fanin_latency: SimDuration::ZERO,
            spillover: SpilloverPolicy::disabled(),
        }
    }
}

impl ShardingConfig {
    /// The transparent single-shard configuration.
    pub fn single() -> Self {
        Self::default()
    }

    /// `shards` peers with zero fan-in latency and no spillover.
    pub fn with_shards(shards: usize) -> Self {
        ShardingConfig {
            shards: shards.max(1),
            ..Self::default()
        }
    }

    /// Set the fan-in latency.
    pub fn fanin(mut self, latency: SimDuration) -> Self {
        self.fanin_latency = latency;
        self
    }

    /// Set the spillover policy.
    pub fn spill(mut self, policy: SpilloverPolicy) -> Self {
        self.spillover = policy;
        self
    }
}

/// Consistent hashing of string keys (tenant names / API keys) onto shard
/// indices via [`RING_VNODES`] virtual nodes per shard.
///
/// The stability property the tests pin: growing the ring from `n` to `n+1`
/// shards only *adds* points, so a key either keeps its shard or moves to
/// the new shard — never between two old shards — and the expected moved
/// fraction is `1/(n+1)`.
#[derive(Debug, Clone)]
pub struct ConsistentHashRing {
    /// `(point, shard)` pairs sorted by point.
    points: Vec<(u64, u32)>,
    shards: usize,
}

/// Finalize a 64-bit hash (splitmix64 mixer). FNV-1a alone avalanches
/// poorly on near-identical strings like `shard-0#vnode-1` /
/// `shard-0#vnode-2`, which clusters ring points and skews arc ownership;
/// one mixing round restores a uniform spread. Applied to both ring points
/// and lookup keys, it stays a pure deterministic function of the input.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl ConsistentHashRing {
    /// A ring over `shards` shards (≥ 1).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        let mut points = Vec::with_capacity(shards * RING_VNODES);
        for shard in 0..shards {
            for vnode in 0..RING_VNODES {
                let key = format!("shard-{shard}#vnode-{vnode}");
                points.push((mix64(fnv1a_64(key.as_bytes())), shard as u32));
            }
        }
        // Ties (64-bit collisions) are broken toward the lower shard index,
        // deterministically.
        points.sort_unstable();
        ConsistentHashRing { points, shards }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key`: the first ring point at or clockwise of the
    /// key's hash, wrapping at the top of the hash space.
    pub fn shard_for(&self, key: &str) -> usize {
        let hash = mix64(fnv1a_64(key.as_bytes()));
        let idx = self.points.partition_point(|&(p, _)| p < hash);
        let (_, shard) = self.points[idx % self.points.len()];
        shard as usize
    }
}

/// Per-shard rollup of one run, reported inside
/// [`ShardSection`](crate::scenario::ShardSection) and rendered by the
/// scenario report and the dashboard.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Requests the front tier routed to this shard (spill-ins included).
    pub offered: usize,
    /// Requests the shard accepted.
    pub accepted: usize,
    /// Requests the shard rejected at its API boundary.
    pub rejected: usize,
    /// Requests the shard answered successfully.
    pub completed: usize,
    /// Requests that failed after acceptance.
    pub failed: usize,
    /// Requests this shard received because another shard was saturated.
    pub spilled_in: usize,
    /// Requests routed away from this shard under the spillover policy.
    pub spilled_out: usize,
    /// Faults the shard's injector applied.
    pub faults_injected: usize,
    /// Peak [`Gateway::load_depth`] observed at submission instants.
    pub peak_load_depth: usize,
}

impl ShardReport {
    /// One formatted table row (used by the scenario report renderer).
    pub fn table_row(&self) -> String {
        format!(
            "{:<6} {:>8} {:>8} {:>6} {:>8} {:>6} {:>9} {:>10} {:>7} {:>9}",
            self.shard,
            self.offered,
            self.accepted,
            self.rejected,
            self.completed,
            self.failed,
            self.spilled_in,
            self.spilled_out,
            self.faults_injected,
            self.peak_load_depth,
        )
    }

    /// The table header matching [`ShardReport::table_row`].
    pub fn table_header() -> String {
        format!(
            "{:<6} {:>8} {:>8} {:>6} {:>8} {:>6} {:>9} {:>10} {:>7} {:>9}",
            "shard",
            "offered",
            "accept",
            "rej",
            "done",
            "fail",
            "spill_in",
            "spill_out",
            "faults",
            "peak_q"
        )
    }
}

/// Where the front tier decided one submission should go.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteDecision {
    /// The shard that will receive the request.
    pub shard: usize,
    /// The consistent-hash home shard of the key.
    pub home: usize,
    /// Whether this submission spilled away from its home shard.
    pub spilled: bool,
}

/// The sharded front tier: N peer [`Gateway`] deployments behind consistent
/// hashing, bounded spillover and a fan-in hop. See the module docs for the
/// model.
pub struct ShardedGateway {
    shards: Vec<Gateway>,
    ring: ConsistentHashRing,
    config: ShardingConfig,
    routed: Vec<usize>,
    spilled_in: Vec<usize>,
    spilled_out: Vec<usize>,
    peak_load: Vec<usize>,
}

impl ShardedGateway {
    /// Build `config.shards` identical deployments from `builder` (one
    /// [`DeploymentBuilder::build`] per shard — the shared control plane is
    /// the configuration itself, so auth policy, registry and topology match
    /// across the fleet).
    pub fn from_builder(builder: &DeploymentBuilder, config: ShardingConfig) -> Self {
        let n = config.shards.max(1);
        let shards: Vec<Gateway> = (0..n).map(|_| builder.clone().build()).collect();
        ShardedGateway {
            shards,
            ring: ConsistentHashRing::new(n),
            config: ShardingConfig {
                shards: n,
                ..config
            },
            routed: vec![0; n],
            spilled_in: vec![0; n],
            spilled_out: vec![0; n],
            peak_load: vec![0; n],
        }
    }

    /// Number of shards in the fleet.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The front tier's configuration.
    pub fn config(&self) -> &ShardingConfig {
        &self.config
    }

    /// The consistent-hash ring.
    pub fn ring(&self) -> &ConsistentHashRing {
        &self.ring
    }

    /// Borrow one shard.
    pub fn shard(&self, index: usize) -> &Gateway {
        &self.shards[index]
    }

    /// Mutably borrow one shard.
    pub fn shard_mut(&mut self, index: usize) -> &mut Gateway {
        &mut self.shards[index]
    }

    /// Borrow the whole fleet.
    pub fn shards(&self) -> &[Gateway] {
        &self.shards
    }

    /// Mutably borrow the whole fleet (enrollment loops, per-shard drains).
    pub fn shards_mut(&mut self) -> &mut [Gateway] {
        &mut self.shards
    }

    /// The consistent-hash home shard for `key` (no spillover considered).
    pub fn home_shard(&self, key: &str) -> usize {
        self.ring.shard_for(key)
    }

    /// Decide where the next submission keyed by `key` goes and account the
    /// decision: the ring's home shard unless the spillover policy diverts
    /// it to the least-loaded peer. Call exactly once per submission.
    pub fn route(&mut self, key: &str) -> RouteDecision {
        self.route_home(self.ring.shard_for(key))
    }

    /// [`ShardedGateway::route`] with a precomputed home shard (drivers that
    /// cache ring lookups per tenant).
    pub fn route_home(&mut self, home: usize) -> RouteDecision {
        let depth = self.shards[home].load_depth();
        self.peak_load[home] = self.peak_load[home].max(depth);
        let policy = self.config.spillover;
        let mut target = home;
        if policy.enabled && self.shards.len() > 1 && depth > policy.queue_threshold {
            // Cumulative budget, checked before counting this request so a
            // freshly saturated shard can spill its first request: once
            // traffic accumulates, `spilled_out <= max_fraction * routed`
            // bounds the diverted share.
            let budget_ok =
                self.spilled_out[home] as f64 <= policy.max_fraction * self.routed[home] as f64;
            if budget_ok {
                // Least-loaded peer, lowest index on ties (deterministic).
                let (best, best_depth) = self
                    .shards
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != home)
                    .map(|(i, gw)| (i, gw.load_depth()))
                    .min_by_key(|&(i, d)| (d, i))
                    .expect("more than one shard");
                if best_depth < depth {
                    target = best;
                }
            }
        }
        self.routed[home] += 1;
        let spilled = target != home;
        if spilled {
            self.spilled_out[home] += 1;
            self.spilled_in[target] += 1;
        }
        RouteDecision {
            shard: target,
            home,
            spilled,
        }
    }

    /// Earliest pending event across the fleet.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.shards
            .iter()
            .filter_map(SimProcess::next_event_time)
            .min()
    }

    /// Advance every shard to `now` (peer simulation entities share one
    /// clock).
    pub fn advance_all(&mut self, now: SimTime) {
        for shard in &mut self.shards {
            shard.advance(now);
        }
    }

    /// Whether every shard has answered everything it accepted.
    pub fn is_drained(&self) -> bool {
        self.shards.iter().all(Gateway::is_drained)
    }

    /// Requests the front tier routed per shard (spill-ins counted at the
    /// receiving shard is tracked separately in [`ShardedGateway::spilled_in`]).
    pub fn routed(&self) -> &[usize] {
        &self.routed
    }

    /// Per-shard spill-in counts.
    pub fn spilled_in(&self) -> &[usize] {
        &self.spilled_in
    }

    /// Per-shard spill-out counts.
    pub fn spilled_out(&self) -> &[usize] {
        &self.spilled_out
    }

    /// Total requests that crossed shards under the spillover policy.
    pub fn spilled_total(&self) -> usize {
        self.spilled_out.iter().sum()
    }

    /// Peak [`Gateway::load_depth`] per shard, observed at submission
    /// instants.
    pub fn peak_load(&self) -> &[usize] {
        &self.peak_load
    }

    /// Roll the fleet up into per-shard report rows. Acceptance and outcome
    /// counts come from each shard's own metrics layer, routing and spill
    /// counts from the front tier, fault counts from `faults_per_shard`
    /// (pass `&[]` when no injector ran).
    pub fn shard_reports(&self, faults_per_shard: &[usize]) -> Vec<ShardReport> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, gw)| {
                let m = gw.metrics();
                let completed = m.completed as usize;
                let failed = m.failed as usize;
                let rejected = m.rejected as usize;
                ShardReport {
                    shard: i,
                    offered: self.routed[i] - self.spilled_out[i] + self.spilled_in[i],
                    accepted: completed + failed,
                    rejected,
                    completed,
                    failed,
                    spilled_in: self.spilled_in[i],
                    spilled_out: self.spilled_out[i],
                    faults_injected: faults_per_shard.get(i).copied().unwrap_or(0),
                    peak_load_depth: self.peak_load[i],
                }
            })
            .collect()
    }

    /// The fleet dashboard: shard 0..n's snapshots folded into one aggregate
    /// view (totals summed, per-model/cluster/queue/tenant rows merged by
    /// key) plus the per-shard `-- shards --` section.
    pub fn dashboard_snapshot(&self, now: SimTime) -> DashboardSnapshot {
        let mut merged: Option<DashboardSnapshot> = None;
        for gw in &self.shards {
            let snap = gw.dashboard_snapshot(now);
            merged = Some(match merged {
                None => snap,
                Some(mut acc) => {
                    acc.absorb(&snap);
                    acc
                }
            });
        }
        let mut snapshot = merged.unwrap_or_default();
        snapshot.shards = self.shard_rows();
        snapshot.normalise();
        snapshot
    }

    /// The per-shard dashboard rows.
    pub fn shard_rows(&self) -> Vec<ShardRow> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, gw)| {
                let m = gw.metrics();
                ShardRow {
                    shard: i as u64,
                    requests: m.total_received(),
                    completed: m.completed,
                    failed: m.failed + m.rejected,
                    spilled_in: self.spilled_in[i] as u64,
                    spilled_out: self.spilled_out[i] as u64,
                    load_depth: gw.load_depth() as u64,
                }
            })
            .collect()
    }

    /// Export the `first_shard_*` metric family: one sample per shard,
    /// labelled `shard="<index>"`, covering routed/completed/failed
    /// requests, spill flow and the live load depth. Read-only, like
    /// [`Gateway::export_metrics`].
    pub fn export_shard_metrics(&self, _now: SimTime) -> MetricRegistry {
        let registry = MetricRegistry::new();
        for (i, gw) in self.shards.iter().enumerate() {
            let labels = LabelSet::single("shard", i.to_string());
            let m = gw.metrics();
            registry.add_counter(
                "first_shard_requests_total",
                labels.clone(),
                m.total_received(),
            );
            registry.add_counter("first_shard_completed_total", labels.clone(), m.completed);
            registry.add_counter(
                "first_shard_failed_total",
                labels.clone(),
                m.failed + m.rejected,
            );
            registry.add_counter(
                "first_shard_spilled_in_total",
                labels.clone(),
                self.spilled_in[i] as u64,
            );
            registry.add_counter(
                "first_shard_spilled_out_total",
                labels.clone(),
                self.spilled_out[i] as u64,
            );
            registry.set_gauge(
                "first_shard_load_depth",
                labels.clone(),
                gw.load_depth() as f64,
            );
            registry.set_gauge(
                "first_shard_peak_load_depth",
                labels,
                self.peak_load[i] as f64,
            );
        }
        registry.set_gauge(
            "first_shard_count",
            LabelSet::empty(),
            self.shards.len() as f64,
        );
        registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn ring_covers_every_shard_and_is_deterministic() {
        let ring = ConsistentHashRing::new(4);
        let mut seen: BTreeMap<usize, usize> = BTreeMap::new();
        for i in 0..2000 {
            let shard = ring.shard_for(&format!("tenant-{i}"));
            assert!(shard < 4);
            *seen.entry(shard).or_default() += 1;
        }
        assert_eq!(seen.len(), 4, "all shards own keys: {seen:?}");
        // Virtual nodes keep the split roughly balanced.
        for (&shard, &count) in &seen {
            assert!(
                count > 200,
                "shard {shard} owns only {count}/2000 keys: {seen:?}"
            );
        }
        let again = ConsistentHashRing::new(4);
        for i in 0..100 {
            let key = format!("tenant-{i}");
            assert_eq!(ring.shard_for(&key), again.shard_for(&key));
        }
    }

    #[test]
    fn growing_the_ring_only_moves_keys_to_the_new_shard() {
        for n in 1..6usize {
            let old = ConsistentHashRing::new(n);
            let new = ConsistentHashRing::new(n + 1);
            let mut moved = 0usize;
            let keys = 4000usize;
            for i in 0..keys {
                let key = format!("tenant-{i}");
                let before = old.shard_for(&key);
                let after = new.shard_for(&key);
                if before != after {
                    assert_eq!(
                        after, n,
                        "key '{key}' moved between old shards {before}->{after} at n={n}"
                    );
                    moved += 1;
                }
            }
            let expected = keys as f64 / (n + 1) as f64;
            let moved = moved as f64;
            assert!(
                moved > expected * 0.5 && moved < expected * 1.6,
                "n={n}: {moved} keys moved, expected ~{expected:.0}"
            );
        }
    }

    #[test]
    fn single_shard_routing_is_transparent() {
        let mut fleet = ShardedGateway::from_builder(
            &DeploymentBuilder::single_cluster_test().prewarm(1),
            ShardingConfig::single(),
        );
        for i in 0..10 {
            let d = fleet.route(&format!("tenant-{i}"));
            assert_eq!(d.shard, 0);
            assert!(!d.spilled);
        }
        assert_eq!(fleet.spilled_total(), 0);
        assert_eq!(fleet.routed()[0], 10);
    }

    #[test]
    fn spillover_respects_threshold_and_budget() {
        use crate::api::ChatCompletionRequest;
        let builder = DeploymentBuilder::single_cluster_test().prewarm(1);
        let mut fleet = ShardedGateway::from_builder(
            &builder,
            ShardingConfig::with_shards(2).spill(SpilloverPolicy::bounded(0, 0.5)),
        );
        // Enroll the same users on both shards (shared control plane).
        let tokens: Vec<_> = (0..2)
            .map(|i| {
                let gw = fleet.shard_mut(i);
                crate::deploy::enroll_standard_users(gw)
            })
            .collect();
        // Saturate shard 0 with a few requests so its load depth is nonzero.
        let model = "meta-llama/Llama-3.3-70B-Instruct";
        for i in 0..4u64 {
            let req = ChatCompletionRequest::simple(model, &format!("warm {i}"), 64);
            fleet
                .shard_mut(0)
                .chat_completions(&req, &tokens[0].alice, Some(32), SimTime::from_secs(i))
                .expect("accepted");
        }
        assert!(fleet.shard(0).load_depth() > 0);
        assert_eq!(fleet.shard(1).load_depth(), 0);
        // A key homed on shard 0 now spills to shard 1 — but only within the
        // 50% budget.
        let key = (0..)
            .map(|i| format!("probe-{i}"))
            .find(|k| fleet.home_shard(k) == 0)
            .unwrap();
        let first = fleet.route(&key);
        assert_eq!(first.home, 0);
        assert_eq!(first.shard, 1, "saturated home spills to the idle peer");
        assert!(first.spilled);
        // Exhaust the budget: with max_fraction=0.5 the cumulative spill
        // count can never exceed half the routed count.
        for _ in 0..20 {
            fleet.route(&key);
        }
        let routed = fleet.routed()[0];
        let spilled = fleet.spilled_out()[0];
        assert!(
            spilled as f64 <= 0.5 * routed as f64 + 1.0,
            "budget exceeded: {spilled}/{routed}"
        );
        assert_eq!(fleet.spilled_in()[1], spilled);
    }

    #[test]
    fn spillover_disabled_never_diverts() {
        let builder = DeploymentBuilder::single_cluster_test().prewarm(1);
        let mut fleet = ShardedGateway::from_builder(&builder, ShardingConfig::with_shards(3));
        for i in 0..50 {
            let d = fleet.route(&format!("tenant-{i}"));
            assert_eq!(d.shard, d.home);
            assert!(!d.spilled);
        }
        assert_eq!(fleet.spilled_total(), 0);
    }
}
