//! Sharded multi-gateway federation: N peer gateway shards behind a thin
//! front tier.
//!
//! One `Gateway` advance loop is the reproduction's serial ceiling (PR 4's
//! scale sweep drove 26.8M events through a single instance), and the
//! production path to million-user traffic is horizontal: run several
//! identical gateway deployments as peers and fan requests in through
//! DNS/load-balancer routing. This module models that tier:
//!
//! * [`ConsistentHashRing`] — virtual-node consistent hashing of tenant
//!   names (API keys) onto shards, so adding a shard remaps only ~`1/(n+1)`
//!   of the key space and every remapped key moves *to the new shard*.
//! * [`SpilloverPolicy`] — bounded cross-shard spillover: when a tenant's
//!   home shard is saturated (its [`Gateway::load_depth`] exceeds the
//!   threshold) a bounded fraction of its traffic may divert to the
//!   least-loaded peer. Spills are accounted per shard (out at the home,
//!   in at the receiver) and surface in telemetry.
//! * [`ShardedGateway`] — the front tier itself: owns the shard fleet,
//!   routes submissions, models the fan-in hop with a configurable latency,
//!   and rolls shard-local queues and telemetry up into per-shard
//!   [`ShardReport`] rows plus aggregate dashboard/metric views.
//!
//! Every shard is a full deployment replica built from the *same*
//! [`DeploymentBuilder`] configuration, so
//! a credential enrolled identically on each shard is valid wherever the
//! ring (or a spill) sends the request — exactly the shared-control-plane /
//! shard-local-data-plane split the production gateway runs.
//!
//! A 1-shard [`ShardedGateway`] is transparent: the ring maps every key to
//! shard 0, no spill target exists, and the default fan-in latency is zero,
//! so driving it is bit-identical to driving the bare [`Gateway`] — the
//! property the sharding proptests pin.

use crate::deploy::DeploymentBuilder;
use crate::gateway::Gateway;
use first_chaos::{CircuitBreakerConfig, HealthTracker, RetryPolicy};
use first_desim::{fnv1a_64, SimDuration, SimProcess, SimTime};
use first_telemetry::{DashboardSnapshot, LabelSet, MetricRegistry, ShardRow};
use serde::{Deserialize, Serialize};

/// Virtual nodes per shard on the [`ConsistentHashRing`]. 64 points per
/// shard keeps the expected load imbalance across shards within a few
/// percent while the ring stays small enough to rebuild on every topology
/// change.
pub const RING_VNODES: usize = 64;

/// Bounded cross-shard spillover policy for the front tier.
///
/// Spillover fires per submission: when the home shard's
/// [`Gateway::load_depth`] exceeds `queue_threshold` and a strictly
/// less-loaded peer exists, the request diverts to the least-loaded peer —
/// but never more than `max_fraction` of the home shard's routed traffic,
/// so a melting shard cannot silently turn the whole fleet into one big
/// queue. Disabled by default (strict consistent-hash routing).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpilloverPolicy {
    /// Whether spillover is allowed at all.
    pub enabled: bool,
    /// Home-shard [`Gateway::load_depth`] above which spillover may fire.
    pub queue_threshold: usize,
    /// Upper bound on the fraction of a home shard's routed requests that
    /// may spill away from it (evaluated cumulatively over the run).
    pub max_fraction: f64,
}

impl Default for SpilloverPolicy {
    fn default() -> Self {
        SpilloverPolicy {
            enabled: false,
            queue_threshold: 0,
            max_fraction: 0.0,
        }
    }
}

impl SpilloverPolicy {
    /// Spillover disabled: every request sticks to its ring shard.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Bounded spillover: divert once the home shard holds more than
    /// `queue_threshold` unanswered requests, spilling at most
    /// `max_fraction` of the home shard's traffic.
    pub fn bounded(queue_threshold: usize, max_fraction: f64) -> Self {
        SpilloverPolicy {
            enabled: true,
            queue_threshold,
            max_fraction: max_fraction.clamp(0.0, 1.0),
        }
    }
}

/// Degraded-mode load shedding at the front tier: when the surviving fleet
/// cannot absorb a failover wave, requests below `priority_floor` whose home
/// shard already holds more than `queue_depth` unanswered requests are
/// rejected with a typed overload outcome instead of joining a collapsing
/// queue. High-priority work is never shed by this policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShedPolicy {
    /// Home-shard [`Gateway::load_depth`] above which shedding starts.
    pub queue_depth: usize,
    /// Requests with priority strictly below this value may be shed.
    pub priority_floor: u8,
}

impl ShedPolicy {
    /// Shed sub-`priority_floor` work once the home queue exceeds `queue_depth`.
    pub fn new(queue_depth: usize, priority_floor: u8) -> Self {
        ShedPolicy {
            queue_depth,
            priority_floor,
        }
    }
}

/// How the front tier handles shard failure: the retry/backoff schedule for
/// requests lost to a dead shard, an optional per-attempt timeout, an
/// optional hedge delay (duplicate a slow request to a peer and take the
/// first answer), and an optional degraded-mode [`ShedPolicy`].
///
/// The default — [`RetryPolicy::default`] backoff, no timeout, no hedging,
/// no shedding — only ever acts when a shard actually dies, so fault-free
/// runs are byte-identical with or without it.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FrontTierPolicy {
    /// Backoff schedule for re-dispatching requests lost to a dead shard.
    pub retry: RetryPolicy,
    /// Per-attempt timeout: when set, an attempt unanswered after this long
    /// is re-dispatched (the original answer still wins if it arrives first).
    pub request_timeout: Option<SimDuration>,
    /// Hedge delay: when set, an attempt unanswered after this long is
    /// *duplicated* to the least-loaded routable peer; first answer wins.
    pub hedge_after: Option<SimDuration>,
    /// Degraded-mode shedding policy (off by default).
    pub shed: Option<ShedPolicy>,
}

/// Front-tier configuration: how many shards, what the fan-in hop costs and
/// whether saturated shards may spill. The default (`1` shard, zero fan-in,
/// no spillover) is the transparent configuration whose behaviour is
/// bit-identical to an unsharded deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardingConfig {
    /// Number of peer gateway shards (≥ 1).
    pub shards: usize,
    /// DNS/LB fan-in latency added between a client's send instant and the
    /// request reaching its shard. Zero by default so single-shard runs stay
    /// bit-identical to the unsharded path.
    pub fanin_latency: SimDuration,
    /// Cross-shard spillover policy.
    pub spillover: SpilloverPolicy,
    /// Shard-failure handling policy (retry/timeout/hedge/shed).
    #[serde(default)]
    pub front_tier: FrontTierPolicy,
}

impl Default for ShardingConfig {
    fn default() -> Self {
        ShardingConfig {
            shards: 1,
            fanin_latency: SimDuration::ZERO,
            spillover: SpilloverPolicy::disabled(),
            front_tier: FrontTierPolicy::default(),
        }
    }
}

impl ShardingConfig {
    /// The transparent single-shard configuration.
    pub fn single() -> Self {
        Self::default()
    }

    /// `shards` peers with zero fan-in latency and no spillover.
    pub fn with_shards(shards: usize) -> Self {
        ShardingConfig {
            shards: shards.max(1),
            ..Self::default()
        }
    }

    /// Set the fan-in latency.
    pub fn fanin(mut self, latency: SimDuration) -> Self {
        self.fanin_latency = latency;
        self
    }

    /// Set the spillover policy.
    pub fn spill(mut self, policy: SpilloverPolicy) -> Self {
        self.spillover = policy;
        self
    }

    /// Set the shard-failure handling policy.
    pub fn front(mut self, policy: FrontTierPolicy) -> Self {
        self.front_tier = policy;
        self
    }
}

/// Consistent hashing of string keys (tenant names / API keys) onto shard
/// indices via [`RING_VNODES`] virtual nodes per shard.
///
/// The stability property the tests pin: growing the ring from `n` to `n+1`
/// shards only *adds* points, so a key either keeps its shard or moves to
/// the new shard — never between two old shards — and the expected moved
/// fraction is `1/(n+1)`.
#[derive(Debug, Clone)]
pub struct ConsistentHashRing {
    /// `(point, shard)` pairs sorted by point.
    points: Vec<(u64, u32)>,
    shards: usize,
}

/// Finalize a 64-bit hash (splitmix64 mixer). FNV-1a alone avalanches
/// poorly on near-identical strings like `shard-0#vnode-1` /
/// `shard-0#vnode-2`, which clusters ring points and skews arc ownership;
/// one mixing round restores a uniform spread. Applied to both ring points
/// and lookup keys, it stays a pure deterministic function of the input.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl ConsistentHashRing {
    /// A ring over `shards` shards (≥ 1).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        let mut points = Vec::with_capacity(shards * RING_VNODES);
        for shard in 0..shards {
            for vnode in 0..RING_VNODES {
                let key = format!("shard-{shard}#vnode-{vnode}");
                points.push((mix64(fnv1a_64(key.as_bytes())), shard as u32));
            }
        }
        // Ties (64-bit collisions) are broken toward the lower shard index,
        // deterministically.
        points.sort_unstable();
        ConsistentHashRing { points, shards }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key`: the first ring point at or clockwise of the
    /// key's hash, wrapping at the top of the hash space.
    pub fn shard_for(&self, key: &str) -> usize {
        self.try_shard_for(key)
            .expect("ring has at least one point")
    }

    /// [`ConsistentHashRing::shard_for`] on rings that may have lost every
    /// point to membership removal: `None` means no shard is routable.
    pub fn try_shard_for(&self, key: &str) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let hash = mix64(fnv1a_64(key.as_bytes()));
        let idx = self.points.partition_point(|&(p, _)| p < hash);
        let (_, shard) = self.points[idx % self.points.len()];
        Some(shard as usize)
    }

    /// A view of this ring with `shard`'s points removed — the failover
    /// counterpart of ring growth. Removal only *deletes* points, so a
    /// surviving shard's arcs can only grow: keys homed on the dead shard
    /// re-home to surviving peers, and every other key keeps its assignment
    /// (the inverse of the growth property the sharding proptests pin).
    /// `shards()` is unchanged, so surviving indices keep their meaning.
    pub fn without(&self, shard: usize) -> Self {
        ConsistentHashRing {
            points: self
                .points
                .iter()
                .copied()
                .filter(|&(_, s)| s as usize != shard)
                .collect(),
            shards: self.shards,
        }
    }

    /// A view keeping only the points of shards marked routable. An
    /// all-`true` mask is the identity; an all-`false` mask yields an empty
    /// ring whose [`ConsistentHashRing::try_shard_for`] returns `None`.
    pub fn restricted(&self, routable: &[bool]) -> Self {
        ConsistentHashRing {
            points: self
                .points
                .iter()
                .copied()
                .filter(|&(_, s)| routable.get(s as usize).copied().unwrap_or(false))
                .collect(),
            shards: self.shards,
        }
    }
}

/// Per-shard rollup of one run, reported inside
/// [`ShardSection`](crate::scenario::ShardSection) and rendered by the
/// scenario report and the dashboard.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Requests the front tier routed to this shard (spill-ins included).
    pub offered: usize,
    /// Requests the shard accepted.
    pub accepted: usize,
    /// Requests the shard rejected at its API boundary.
    pub rejected: usize,
    /// Requests the shard answered successfully.
    pub completed: usize,
    /// Requests that failed after acceptance.
    pub failed: usize,
    /// Requests this shard received because another shard was saturated.
    pub spilled_in: usize,
    /// Requests routed away from this shard under the spillover policy.
    pub spilled_out: usize,
    /// Faults the shard's injector applied.
    pub faults_injected: usize,
    /// Peak [`Gateway::load_depth`] observed at submission instants.
    pub peak_load_depth: usize,
}

impl ShardReport {
    /// One formatted table row (used by the scenario report renderer).
    pub fn table_row(&self) -> String {
        format!(
            "{:<6} {:>8} {:>8} {:>6} {:>8} {:>6} {:>9} {:>10} {:>7} {:>9}",
            self.shard,
            self.offered,
            self.accepted,
            self.rejected,
            self.completed,
            self.failed,
            self.spilled_in,
            self.spilled_out,
            self.faults_injected,
            self.peak_load_depth,
        )
    }

    /// The table header matching [`ShardReport::table_row`].
    pub fn table_header() -> String {
        format!(
            "{:<6} {:>8} {:>8} {:>6} {:>8} {:>6} {:>9} {:>10} {:>7} {:>9}",
            "shard",
            "offered",
            "accept",
            "rej",
            "done",
            "fail",
            "spill_in",
            "spill_out",
            "faults",
            "peak_q"
        )
    }
}

/// Where the front tier decided one submission should go.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteDecision {
    /// The shard that will receive the request.
    pub shard: usize,
    /// The consistent-hash home shard of the key.
    pub home: usize,
    /// Whether this submission spilled away from its home shard.
    pub spilled: bool,
}

/// The sharded front tier: N peer [`Gateway`] deployments behind consistent
/// hashing, bounded spillover and a fan-in hop. See the module docs for the
/// model.
pub struct ShardedGateway {
    shards: Vec<Gateway>,
    ring: ConsistentHashRing,
    /// The ring restricted to routable (live *and* reachable) shards;
    /// identical to `ring` while the whole fleet is healthy.
    live_ring: ConsistentHashRing,
    config: ShardingConfig,
    routed: Vec<usize>,
    spilled_in: Vec<usize>,
    spilled_out: Vec<usize>,
    peak_load: Vec<usize>,
    /// Whether each shard process is alive (false after a crash, until a
    /// restart replaces it).
    live: Vec<bool>,
    /// Whether the front tier can reach each shard (false during a
    /// front-tier partition; the shard itself keeps running).
    reachable: Vec<bool>,
    /// Per-shard circuit-breaker health, keyed `shard-<index>`.
    health: HealthTracker,
    crashes: usize,
    restarts: usize,
}

impl ShardedGateway {
    /// Build `config.shards` identical deployments from `builder` (one
    /// [`DeploymentBuilder::build`] per shard — the shared control plane is
    /// the configuration itself, so auth policy, registry and topology match
    /// across the fleet).
    pub fn from_builder(builder: &DeploymentBuilder, config: ShardingConfig) -> Self {
        let n = config.shards.max(1);
        let shards: Vec<Gateway> = (0..n).map(|_| builder.clone().build()).collect();
        let ring = ConsistentHashRing::new(n);
        ShardedGateway {
            shards,
            live_ring: ring.clone(),
            ring,
            config: ShardingConfig {
                shards: n,
                ..config
            },
            routed: vec![0; n],
            spilled_in: vec![0; n],
            spilled_out: vec![0; n],
            peak_load: vec![0; n],
            live: vec![true; n],
            reachable: vec![true; n],
            health: HealthTracker::new(CircuitBreakerConfig::default()),
            crashes: 0,
            restarts: 0,
        }
    }

    /// The health-tracker key for shard `index`.
    fn health_key(index: usize) -> String {
        format!("shard-{index}")
    }

    fn rebuild_live_ring(&mut self) {
        let routable: Vec<bool> = (0..self.shards.len())
            .map(|i| self.live[i] && self.reachable[i])
            .collect();
        self.live_ring = self.ring.restricted(&routable);
    }

    /// Number of shards in the fleet.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The front tier's configuration.
    pub fn config(&self) -> &ShardingConfig {
        &self.config
    }

    /// The consistent-hash ring.
    pub fn ring(&self) -> &ConsistentHashRing {
        &self.ring
    }

    /// Borrow one shard.
    pub fn shard(&self, index: usize) -> &Gateway {
        &self.shards[index]
    }

    /// Mutably borrow one shard.
    pub fn shard_mut(&mut self, index: usize) -> &mut Gateway {
        &mut self.shards[index]
    }

    /// Borrow the whole fleet.
    pub fn shards(&self) -> &[Gateway] {
        &self.shards
    }

    /// Mutably borrow the whole fleet (enrollment loops, per-shard drains).
    pub fn shards_mut(&mut self) -> &mut [Gateway] {
        &mut self.shards
    }

    /// The consistent-hash home shard for `key` (no spillover considered).
    pub fn home_shard(&self, key: &str) -> usize {
        self.ring.shard_for(key)
    }

    /// The home shard for `key` on the *live* ring: the full ring's
    /// assignment while the fleet is healthy, a surviving peer when `key`'s
    /// home shard is dead or partitioned, and `None` when no shard is
    /// routable at all.
    pub fn routable_home(&self, key: &str) -> Option<usize> {
        self.live_ring.try_shard_for(key)
    }

    /// The ring restricted to routable shards.
    pub fn live_ring(&self) -> &ConsistentHashRing {
        &self.live_ring
    }

    /// Whether the shard process is alive (not crashed).
    pub fn is_live(&self, index: usize) -> bool {
        self.live.get(index).copied().unwrap_or(false)
    }

    /// Whether the front tier can reach the shard.
    pub fn is_reachable(&self, index: usize) -> bool {
        self.reachable.get(index).copied().unwrap_or(false)
    }

    /// Whether the front tier may route new work to the shard (live *and*
    /// reachable).
    pub fn routable(&self, index: usize) -> bool {
        self.is_live(index) && self.is_reachable(index)
    }

    /// Number of shards the front tier may currently route to.
    pub fn routable_count(&self) -> usize {
        (0..self.shards.len()).filter(|&i| self.routable(i)).count()
    }

    /// Kill shard `index`: it stops advancing, its in-flight work is lost,
    /// its breaker trips, and its keys re-home to surviving peers. Returns
    /// whether the fault was effective (the shard existed and was alive) —
    /// out-of-range indices apply vacuously, matching
    /// [`first_chaos::FaultInjector`]'s unknown-endpoint semantics.
    pub fn kill_shard(&mut self, index: usize, now: SimTime) -> bool {
        if index >= self.shards.len() || !self.live[index] {
            return false;
        }
        self.live[index] = false;
        self.crashes += 1;
        // A dead shard is observed as consecutive probe failures until the
        // breaker trips.
        let key = Self::health_key(index);
        for _ in 0..16 {
            if self.health.on_failure(&key, now) {
                break;
            }
        }
        self.rebuild_live_ring();
        true
    }

    /// Replace a dead shard with a freshly built `gateway` (cold caches,
    /// empty queues) and rejoin it to the ring. Returns whether the restart
    /// was effective (the shard existed and was dead).
    pub fn restore_shard(&mut self, index: usize, gateway: Gateway, now: SimTime) -> bool {
        if index >= self.shards.len() || self.live[index] {
            return false;
        }
        self.shards[index] = gateway;
        self.live[index] = true;
        self.reachable[index] = true;
        self.restarts += 1;
        self.health.on_success(&Self::health_key(index), now);
        self.rebuild_live_ring();
        true
    }

    /// Cut the front tier off from a (healthy) shard: it keeps draining its
    /// own queue but receives no new work until [`ShardedGateway::heal_shard`].
    /// Returns whether the partition was effective.
    pub fn partition_shard(&mut self, index: usize, now: SimTime) -> bool {
        if index >= self.shards.len() || !self.live[index] || !self.reachable[index] {
            return false;
        }
        self.reachable[index] = false;
        self.health.on_failure(&Self::health_key(index), now);
        self.rebuild_live_ring();
        true
    }

    /// Heal a front-tier partition. Returns whether anything changed.
    pub fn heal_shard(&mut self, index: usize, now: SimTime) -> bool {
        if index >= self.shards.len() || self.reachable[index] {
            return false;
        }
        self.reachable[index] = true;
        if self.live[index] {
            self.health.on_success(&Self::health_key(index), now);
        }
        self.rebuild_live_ring();
        true
    }

    /// Per-shard circuit-breaker health (keys are `shard-<index>`).
    pub fn health(&self) -> &HealthTracker {
        &self.health
    }

    /// Shard crashes applied so far.
    pub fn crashes(&self) -> usize {
        self.crashes
    }

    /// Shard restarts applied so far.
    pub fn restarts(&self) -> usize {
        self.restarts
    }

    /// Decide where the next submission keyed by `key` goes and account the
    /// decision: the ring's home shard unless the spillover policy diverts
    /// it to the least-loaded peer. Call exactly once per submission.
    pub fn route(&mut self, key: &str) -> RouteDecision {
        self.route_home(self.ring.shard_for(key))
    }

    /// [`ShardedGateway::route`] with a precomputed home shard (drivers that
    /// cache ring lookups per tenant).
    pub fn route_home(&mut self, home: usize) -> RouteDecision {
        let depth = self.shards[home].load_depth();
        self.peak_load[home] = self.peak_load[home].max(depth);
        let policy = self.config.spillover;
        let mut target = home;
        if policy.enabled && self.shards.len() > 1 && depth > policy.queue_threshold {
            // Cumulative budget, checked before counting this request so a
            // freshly saturated shard can spill its first request: once
            // traffic accumulates, `spilled_out <= max_fraction * routed`
            // bounds the diverted share.
            let budget_ok =
                self.spilled_out[home] as f64 <= policy.max_fraction * self.routed[home] as f64;
            if budget_ok {
                // Least-loaded routable peer, lowest index on ties
                // (deterministic). All shards are routable on a healthy
                // fleet, so this matches the pre-failover behaviour exactly.
                let best = self
                    .shards
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != home && self.live[i] && self.reachable[i])
                    .map(|(i, gw)| (i, gw.load_depth()))
                    .min_by_key(|&(i, d)| (d, i));
                if let Some((best, best_depth)) = best {
                    if best_depth < depth {
                        target = best;
                    }
                }
            }
        }
        self.routed[home] += 1;
        let spilled = target != home;
        if spilled {
            self.spilled_out[home] += 1;
            self.spilled_in[target] += 1;
        }
        RouteDecision {
            shard: target,
            home,
            spilled,
        }
    }

    /// Earliest pending event across the live fleet (dead shards no longer
    /// make progress).
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.shards
            .iter()
            .zip(&self.live)
            .filter(|&(_, &live)| live)
            .filter_map(|(shard, _)| SimProcess::next_event_time(shard))
            .min()
    }

    /// Advance every live shard to `now` (peer simulation entities share one
    /// clock). Partitioned shards still advance — they are running, merely
    /// unreachable from the front tier.
    pub fn advance_all(&mut self, now: SimTime) {
        for (shard, &live) in self.shards.iter_mut().zip(&self.live) {
            if live {
                shard.advance(now);
            }
        }
    }

    /// Whether every live shard has answered everything it accepted (a dead
    /// shard's in-flight work is lost, not awaited).
    pub fn is_drained(&self) -> bool {
        self.shards
            .iter()
            .zip(&self.live)
            .all(|(shard, &live)| !live || shard.is_drained())
    }

    /// Requests the front tier routed per shard (spill-ins counted at the
    /// receiving shard is tracked separately in [`ShardedGateway::spilled_in`]).
    pub fn routed(&self) -> &[usize] {
        &self.routed
    }

    /// Per-shard spill-in counts.
    pub fn spilled_in(&self) -> &[usize] {
        &self.spilled_in
    }

    /// Per-shard spill-out counts.
    pub fn spilled_out(&self) -> &[usize] {
        &self.spilled_out
    }

    /// Total requests that crossed shards under the spillover policy.
    pub fn spilled_total(&self) -> usize {
        self.spilled_out.iter().sum()
    }

    /// Peak [`Gateway::load_depth`] per shard, observed at submission
    /// instants.
    pub fn peak_load(&self) -> &[usize] {
        &self.peak_load
    }

    /// Roll the fleet up into per-shard report rows. Acceptance and outcome
    /// counts come from each shard's own metrics layer, routing and spill
    /// counts from the front tier, fault counts from `faults_per_shard`
    /// (pass `&[]` when no injector ran).
    pub fn shard_reports(&self, faults_per_shard: &[usize]) -> Vec<ShardReport> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, gw)| {
                let m = gw.metrics();
                let completed = m.completed as usize;
                let failed = m.failed as usize;
                let rejected = m.rejected as usize;
                ShardReport {
                    shard: i,
                    offered: self.routed[i] - self.spilled_out[i] + self.spilled_in[i],
                    accepted: completed + failed,
                    rejected,
                    completed,
                    failed,
                    spilled_in: self.spilled_in[i],
                    spilled_out: self.spilled_out[i],
                    faults_injected: faults_per_shard.get(i).copied().unwrap_or(0),
                    peak_load_depth: self.peak_load[i],
                }
            })
            .collect()
    }

    /// The fleet dashboard: shard 0..n's snapshots folded into one aggregate
    /// view (totals summed, per-model/cluster/queue/tenant rows merged by
    /// key) plus the per-shard `-- shards --` section.
    pub fn dashboard_snapshot(&self, now: SimTime) -> DashboardSnapshot {
        let mut merged: Option<DashboardSnapshot> = None;
        for gw in &self.shards {
            let snap = gw.dashboard_snapshot(now);
            merged = Some(match merged {
                None => snap,
                Some(mut acc) => {
                    acc.absorb(&snap);
                    acc
                }
            });
        }
        let mut snapshot = merged.unwrap_or_default();
        snapshot.shards = self.shard_rows();
        snapshot.normalise();
        snapshot
    }

    /// The per-shard dashboard rows.
    pub fn shard_rows(&self) -> Vec<ShardRow> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, gw)| {
                let m = gw.metrics();
                ShardRow {
                    shard: i as u64,
                    requests: m.total_received(),
                    completed: m.completed,
                    failed: m.failed + m.rejected,
                    spilled_in: self.spilled_in[i] as u64,
                    spilled_out: self.spilled_out[i] as u64,
                    load_depth: gw.load_depth() as u64,
                }
            })
            .collect()
    }

    /// Export the `first_shard_*` metric family: one sample per shard,
    /// labelled `shard="<index>"`, covering routed/completed/failed
    /// requests, spill flow, the live load depth, shard liveness and the
    /// time-dependent breaker health at `now`, plus the fleet-level
    /// `first_shard_failover_*` counters. Read-only, like
    /// [`Gateway::export_metrics`].
    pub fn export_shard_metrics(&self, now: SimTime) -> MetricRegistry {
        let registry = MetricRegistry::new();
        for (i, gw) in self.shards.iter().enumerate() {
            let labels = LabelSet::single("shard", i.to_string());
            let m = gw.metrics();
            registry.add_counter(
                "first_shard_requests_total",
                labels.clone(),
                m.total_received(),
            );
            registry.add_counter("first_shard_completed_total", labels.clone(), m.completed);
            registry.add_counter(
                "first_shard_failed_total",
                labels.clone(),
                m.failed + m.rejected,
            );
            registry.add_counter(
                "first_shard_spilled_in_total",
                labels.clone(),
                self.spilled_in[i] as u64,
            );
            registry.add_counter(
                "first_shard_spilled_out_total",
                labels.clone(),
                self.spilled_out[i] as u64,
            );
            registry.set_gauge(
                "first_shard_load_depth",
                labels.clone(),
                gw.load_depth() as f64,
            );
            registry.set_gauge(
                "first_shard_peak_load_depth",
                labels.clone(),
                self.peak_load[i] as f64,
            );
            registry.set_gauge(
                "first_shard_live",
                labels.clone(),
                if self.live[i] { 1.0 } else { 0.0 },
            );
            registry.set_gauge(
                "first_shard_health",
                labels,
                self.health.state(&Self::health_key(i), now).severity(),
            );
        }
        registry.set_gauge(
            "first_shard_count",
            LabelSet::empty(),
            self.shards.len() as f64,
        );
        registry.add_counter(
            "first_shard_failover_crashes_total",
            LabelSet::empty(),
            self.crashes as u64,
        );
        registry.add_counter(
            "first_shard_failover_restarts_total",
            LabelSet::empty(),
            self.restarts as u64,
        );
        registry.add_counter(
            "first_shard_failover_breaker_trips_total",
            LabelSet::empty(),
            self.health.trips(),
        );
        registry.set_gauge(
            "first_scrape_time_seconds",
            LabelSet::empty(),
            now.as_secs_f64(),
        );
        registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn ring_covers_every_shard_and_is_deterministic() {
        let ring = ConsistentHashRing::new(4);
        let mut seen: BTreeMap<usize, usize> = BTreeMap::new();
        for i in 0..2000 {
            let shard = ring.shard_for(&format!("tenant-{i}"));
            assert!(shard < 4);
            *seen.entry(shard).or_default() += 1;
        }
        assert_eq!(seen.len(), 4, "all shards own keys: {seen:?}");
        // Virtual nodes keep the split roughly balanced.
        for (&shard, &count) in &seen {
            assert!(
                count > 200,
                "shard {shard} owns only {count}/2000 keys: {seen:?}"
            );
        }
        let again = ConsistentHashRing::new(4);
        for i in 0..100 {
            let key = format!("tenant-{i}");
            assert_eq!(ring.shard_for(&key), again.shard_for(&key));
        }
    }

    #[test]
    fn growing_the_ring_only_moves_keys_to_the_new_shard() {
        for n in 1..6usize {
            let old = ConsistentHashRing::new(n);
            let new = ConsistentHashRing::new(n + 1);
            let mut moved = 0usize;
            let keys = 4000usize;
            for i in 0..keys {
                let key = format!("tenant-{i}");
                let before = old.shard_for(&key);
                let after = new.shard_for(&key);
                if before != after {
                    assert_eq!(
                        after, n,
                        "key '{key}' moved between old shards {before}->{after} at n={n}"
                    );
                    moved += 1;
                }
            }
            let expected = keys as f64 / (n + 1) as f64;
            let moved = moved as f64;
            assert!(
                moved > expected * 0.5 && moved < expected * 1.6,
                "n={n}: {moved} keys moved, expected ~{expected:.0}"
            );
        }
    }

    #[test]
    fn single_shard_routing_is_transparent() {
        let mut fleet = ShardedGateway::from_builder(
            &DeploymentBuilder::single_cluster_test().prewarm(1),
            ShardingConfig::single(),
        );
        for i in 0..10 {
            let d = fleet.route(&format!("tenant-{i}"));
            assert_eq!(d.shard, 0);
            assert!(!d.spilled);
        }
        assert_eq!(fleet.spilled_total(), 0);
        assert_eq!(fleet.routed()[0], 10);
    }

    #[test]
    fn spillover_respects_threshold_and_budget() {
        use crate::api::ChatCompletionRequest;
        let builder = DeploymentBuilder::single_cluster_test().prewarm(1);
        let mut fleet = ShardedGateway::from_builder(
            &builder,
            ShardingConfig::with_shards(2).spill(SpilloverPolicy::bounded(0, 0.5)),
        );
        // Enroll the same users on both shards (shared control plane).
        let tokens: Vec<_> = (0..2)
            .map(|i| {
                let gw = fleet.shard_mut(i);
                crate::deploy::enroll_standard_users(gw)
            })
            .collect();
        // Saturate shard 0 with a few requests so its load depth is nonzero.
        let model = "meta-llama/Llama-3.3-70B-Instruct";
        for i in 0..4u64 {
            let req = ChatCompletionRequest::simple(model, &format!("warm {i}"), 64);
            fleet
                .shard_mut(0)
                .chat_completions(&req, &tokens[0].alice, Some(32), SimTime::from_secs(i))
                .expect("accepted");
        }
        assert!(fleet.shard(0).load_depth() > 0);
        assert_eq!(fleet.shard(1).load_depth(), 0);
        // A key homed on shard 0 now spills to shard 1 — but only within the
        // 50% budget.
        let key = (0..)
            .map(|i| format!("probe-{i}"))
            .find(|k| fleet.home_shard(k) == 0)
            .unwrap();
        let first = fleet.route(&key);
        assert_eq!(first.home, 0);
        assert_eq!(first.shard, 1, "saturated home spills to the idle peer");
        assert!(first.spilled);
        // Exhaust the budget: with max_fraction=0.5 the cumulative spill
        // count can never exceed half the routed count.
        for _ in 0..20 {
            fleet.route(&key);
        }
        let routed = fleet.routed()[0];
        let spilled = fleet.spilled_out()[0];
        assert!(
            spilled as f64 <= 0.5 * routed as f64 + 1.0,
            "budget exceeded: {spilled}/{routed}"
        );
        assert_eq!(fleet.spilled_in()[1], spilled);
    }

    #[test]
    fn removing_a_shard_rehomes_only_its_keys() {
        for n in 2..6usize {
            let full = ConsistentHashRing::new(n);
            for dead in 0..n {
                let survivors = full.without(dead);
                assert_eq!(survivors.shards(), n, "indices keep their meaning");
                for i in 0..2000 {
                    let key = format!("tenant-{i}");
                    let before = full.shard_for(&key);
                    let after = survivors.shard_for(&key);
                    assert_ne!(after, dead, "key '{key}' routed to the dead shard");
                    if before != dead {
                        assert_eq!(
                            before, after,
                            "live key '{key}' moved {before}->{after} when shard {dead} died"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn restricted_ring_masks_and_empties() {
        let ring = ConsistentHashRing::new(3);
        assert_eq!(
            ring.restricted(&[true, true, true]).shard_for("tenant-7"),
            ring.shard_for("tenant-7"),
            "all-true mask is the identity"
        );
        let only_two = ring.restricted(&[false, false, true]);
        for i in 0..50 {
            assert_eq!(only_two.shard_for(&format!("tenant-{i}")), 2);
        }
        assert_eq!(
            ring.restricted(&[false, false, false]).try_shard_for("k"),
            None,
            "no routable shard left"
        );
    }

    #[test]
    fn kill_restore_and_partition_drive_routing_and_health() {
        let builder = DeploymentBuilder::single_cluster_test().prewarm(1);
        let mut fleet = ShardedGateway::from_builder(&builder, ShardingConfig::with_shards(3));
        let key = (0..)
            .map(|i| format!("probe-{i}"))
            .find(|k| fleet.home_shard(k) == 1)
            .unwrap();
        assert_eq!(fleet.routable_home(&key), Some(1));
        assert_eq!(fleet.routable_count(), 3);

        // Crash shard 1: its keys re-home, it stops counting toward drain,
        // and its breaker trips.
        let t = SimTime::from_secs(10);
        assert!(fleet.kill_shard(1, t));
        assert!(!fleet.kill_shard(1, t), "double-kill is vacuous");
        assert!(!fleet.kill_shard(9, t), "out-of-range kill is vacuous");
        assert!(!fleet.is_live(1));
        assert_eq!(fleet.routable_count(), 2);
        let rehomed = fleet.routable_home(&key).expect("survivors own the key");
        assert_ne!(rehomed, 1);
        assert_eq!(
            fleet.health().state("shard-1", t),
            first_chaos::HealthState::Unavailable
        );
        assert_eq!(fleet.crashes(), 1);

        // Restart with a fresh replica: routing returns to the full ring.
        let t2 = SimTime::from_secs(40);
        assert!(fleet.restore_shard(1, builder.clone().build(), t2));
        assert!(!fleet.restore_shard(1, builder.clone().build(), t2));
        assert!(fleet.is_live(1));
        assert_eq!(fleet.routable_home(&key), Some(1));
        assert_eq!(fleet.restarts(), 1);

        // Partition: the shard is alive but unroutable until healed.
        assert!(fleet.partition_shard(1, t2));
        assert!(fleet.is_live(1));
        assert!(!fleet.is_reachable(1));
        assert_ne!(fleet.routable_home(&key), Some(1));
        assert!(fleet.heal_shard(1, SimTime::from_secs(50)));
        assert_eq!(fleet.routable_home(&key), Some(1));
    }

    #[test]
    fn exported_shard_metrics_cover_health_liveness_and_failover_counters() {
        let builder = DeploymentBuilder::single_cluster_test().prewarm(1);
        let mut fleet = ShardedGateway::from_builder(&builder, ShardingConfig::with_shards(2));
        let t = SimTime::from_secs(30);
        fleet.kill_shard(1, t);
        let snap = fleet.export_shard_metrics(t).snapshot();
        for name in [
            "first_shard_requests_total",
            "first_shard_completed_total",
            "first_shard_failed_total",
            "first_shard_spilled_in_total",
            "first_shard_spilled_out_total",
        ] {
            for shard in 0..2 {
                assert!(
                    snap.find(name, &LabelSet::single("shard", shard.to_string()))
                        .is_some(),
                    "missing {name} for shard {shard}"
                );
            }
        }
        let gauge = |name: &str, shard: usize| {
            snap.gauge_value(name, &LabelSet::single("shard", shard.to_string()))
        };
        assert_eq!(gauge("first_shard_live", 0), 1.0);
        assert_eq!(gauge("first_shard_live", 1), 0.0);
        assert_eq!(gauge("first_shard_health", 0), 0.0, "healthy severity");
        assert_eq!(gauge("first_shard_health", 1), 2.0, "unavailable severity");
        assert_eq!(
            snap.counter_value("first_shard_failover_crashes_total", &LabelSet::empty()),
            1
        );
        assert_eq!(
            snap.counter_value("first_shard_failover_restarts_total", &LabelSet::empty()),
            0
        );
        assert!(
            snap.counter_value(
                "first_shard_failover_breaker_trips_total",
                &LabelSet::empty()
            ) >= 1
        );
        // The scrape timestamp comes from `now`, no longer ignored.
        assert_eq!(
            snap.gauge_value("first_scrape_time_seconds", &LabelSet::empty()),
            30.0
        );
    }

    #[test]
    fn spillover_disabled_never_diverts() {
        let builder = DeploymentBuilder::single_cluster_test().prewarm(1);
        let mut fleet = ShardedGateway::from_builder(&builder, ShardingConfig::with_shards(3));
        for i in 0..50 {
            let d = fleet.route(&format!("tenant-{i}"));
            assert_eq!(d.shard, d.home);
            assert!(!d.spilled);
        }
        assert_eq!(fleet.spilled_total(), 0);
    }
}
