//! # first-core — the FIRST Inference Gateway
//!
//! The paper's primary contribution: an OpenAI-compatible, Globus-Auth-gated
//! gateway that turns API calls into Globus Compute tasks on federated HPC
//! clusters and relays the results back, with rate limiting, caching,
//! federation routing, a batch mode, a `/jobs` status endpoint, metrics and a
//! WebUI session layer.
//!
//! * [`api`] — OpenAI-compatible request/response types and errors.
//! * [`middleware`] — token validation + introspection cache, rate limiter,
//!   response cache.
//! * [`registry`] — model/endpoint registry and the §4.5 federation router.
//! * [`workers`] — sync-vs-async worker-pool models (Optimization 3).
//! * [`gateway`] — the gateway itself (request lifecycle, `/jobs`, logging).
//! * [`batch`] — the `/v1/batches` dedicated-job batch mode (§4.4).
//! * [`webui`] — chat-session store behind the web interface (§4.7).
//! * [`streaming`] — per-token streaming reconstruction, TTFT/ITL metrics
//!   (§4.7 "streaming responses").
//! * [`storage`] — request log (PostgreSQL substitute) and the metrics layer.
//! * [`monitoring`] — dashboard snapshots, metric export and default alerts
//!   bridging the gateway into `first-telemetry` (§3.1.1, §7).
//! * [`deploy`] — deployment assembly (single-cluster test, Sophia, federated).
//! * [`sim`] — open-loop and closed-loop scenario runners used by every
//!   benchmark in `first-bench`.
//! * [`scenario`] — the declarative scenario runner behind the
//!   [`ScenarioRun`] builder: compiles a `first-workload`
//!   [`ScenarioSpec`](first_workload::ScenarioSpec) and reports per-tenant
//!   SLO attainment, with seed, sharding, tracing, recording and replay
//!   composing on one `execute()`.
//! * [`shard`] — the sharded multi-gateway federation front tier:
//!   consistent-hash routing, bounded spillover and per-shard telemetry.
//! * [`invariants`] — post-run invariant checking (request conservation,
//!   monotone clock, no leaked tasks, replay and cross-shard conservation)
//!   shared by the runners and tests.

#![warn(missing_docs)]

pub mod api;
pub mod batch;
pub mod deploy;
pub mod gateway;
pub mod invariants;
pub mod middleware;
pub mod monitoring;
pub mod registry;
pub mod scenario;
pub mod shard;
pub mod sim;
pub mod storage;
pub mod streaming;
pub mod webui;
pub mod workers;

pub use api::{
    ApiOperation, ChatChoice, ChatCompletionRequest, ChatCompletionResponse, CompletionRequest,
    EmbeddingRequest, EmbeddingResponse, GatewayError, Usage,
};
pub use batch::{BatchId, BatchJob, BatchManager, BatchState};
pub use deploy::{enroll_standard_users, ClusterSite, DeploymentBuilder, HostedModel, TestTokens};
pub use gateway::{CompletedRequest, Gateway, GatewayConfig, GatewayQueueSnapshot, JobsEntry};
pub use invariants::{
    check_failover_run_invariants, check_replay_invariants, check_run_invariants,
    check_sharded_run_invariants, ClockMonitor, RunLedger,
};
pub use middleware::{AuthMiddleware, RateLimiter, ResponseCache};
pub use registry::{
    FederationRouter, ModelId, ModelRegistry, RouteCandidate, RoutedTarget, RoutingDecision,
    RoutingPolicy, RoutingReason,
};
#[allow(deprecated)]
pub use scenario::{
    replay_cassette, replay_cassette_traced, run_scenario, run_scenario_recorded,
    run_scenario_recorded_traced, run_scenario_traced,
};
pub use scenario::{
    replay_dashboard_cell, FailoverSection, GatewayReport, RunOutput, ScenarioRun, ShardSection,
    TenantReport,
};
pub use shard::{
    ConsistentHashRing, FrontTierPolicy, RouteDecision, ShardReport, ShardedGateway,
    ShardingConfig, ShedPolicy, SpilloverPolicy, RING_VNODES,
};
pub use sim::{
    run_direct_openloop, run_gateway_openloop, run_openai_openloop, run_resilience_openloop,
    run_sharded_openloop, run_webui_closed_loop, ResilienceReport, ScenarioReport, WebUiCell,
};
pub use storage::{GatewayMetrics, RequestLog, RequestLogEntry, UsageSummary};
pub use streaming::{stream_response, StreamChunk, StreamStats, StreamedResponse, StreamingConfig};
pub use webui::{ChatSession, WebUiStore, DEFAULT_WEBUI_OVERHEAD};
pub use workers::{WorkerMode, WorkerPool, WorkerPoolConfig};

/// Commonly used items, re-exported for glob import.
pub mod prelude {
    pub use crate::api::{ChatCompletionRequest, EmbeddingRequest, GatewayError};
    pub use crate::deploy::DeploymentBuilder;
    pub use crate::gateway::{CompletedRequest, Gateway, GatewayConfig};
    pub use crate::sim::{run_gateway_openloop, ScenarioReport};
}
