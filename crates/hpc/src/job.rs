//! Batch-job descriptions and lifecycle states.

use crate::node::NodeId;
use first_desim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Unique job identifier assigned by the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Scheduling priority class (PBS-style queue priority).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum JobPriority {
    /// Backfill / preemptible priority.
    Low = 0,
    /// Default priority.
    Normal = 1,
    /// Interactive / demand priority (used for hot-node acquisitions).
    High = 2,
}

/// What the job asks the scheduler for.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRequest {
    /// Number of nodes requested.
    pub nodes: u32,
    /// GPUs required on each node (≤ GPUs per node). `0` means whole node.
    pub gpus_per_node: u32,
    /// Maximum walltime.
    pub walltime: SimDuration,
    /// Priority class.
    pub priority: JobPriority,
    /// Submitting user (free-form; the scheduler does not enforce auth).
    pub user: String,
    /// Human-readable tag, e.g. the model being served.
    pub tag: String,
}

impl JobRequest {
    /// A single-node GPU job (the common case for model serving).
    pub fn single_node(gpus: u32, walltime: SimDuration, tag: impl Into<String>) -> Self {
        JobRequest {
            nodes: 1,
            gpus_per_node: gpus,
            walltime,
            priority: JobPriority::Normal,
            user: "first-service".to_string(),
            tag: tag.into(),
        }
    }

    /// A multi-node job (e.g. 405B-class models spanning several nodes).
    pub fn multi_node(
        nodes: u32,
        gpus_per_node: u32,
        walltime: SimDuration,
        tag: impl Into<String>,
    ) -> Self {
        JobRequest {
            nodes,
            gpus_per_node,
            walltime,
            priority: JobPriority::Normal,
            user: "first-service".to_string(),
            tag: tag.into(),
        }
    }

    /// Override the priority class.
    pub fn with_priority(mut self, priority: JobPriority) -> Self {
        self.priority = priority;
        self
    }

    /// Override the submitting user.
    pub fn with_user(mut self, user: impl Into<String>) -> Self {
        self.user = user.into();
        self
    }

    /// Total GPUs requested across all nodes.
    pub fn total_gpus(&self) -> u32 {
        self.nodes * self.gpus_per_node
    }
}

/// Where a running job's resources live.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Allocation {
    /// `(node, gpu indices)` pairs granted to the job.
    pub placements: Vec<(NodeId, Vec<u32>)>,
}

impl Allocation {
    /// Node ids in the allocation.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.placements.iter().map(|(n, _)| *n).collect()
    }

    /// Total GPUs in the allocation.
    pub fn total_gpus(&self) -> u32 {
        self.placements.iter().map(|(_, g)| g.len() as u32).sum()
    }
}

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Waiting in the scheduler queue for resources.
    Queued,
    /// Resources allocated, job processes running.
    Running,
    /// Finished normally (released by its owner).
    Completed,
    /// Killed by the scheduler for exceeding its walltime.
    TimedOut,
    /// Cancelled while still queued or running.
    Cancelled,
}

impl JobState {
    /// Whether the job still holds or may hold resources.
    pub fn is_active(&self) -> bool {
        matches!(self, JobState::Queued | JobState::Running)
    }
}

/// Full record the scheduler keeps per job.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobRecord {
    /// Job identifier.
    pub id: JobId,
    /// The original request.
    pub request: JobRequest,
    /// Current state.
    pub state: JobState,
    /// Submission time.
    pub submitted_at: SimTime,
    /// Start time (when resources were granted).
    pub started_at: Option<SimTime>,
    /// End time (completion, timeout or cancellation).
    pub ended_at: Option<SimTime>,
    /// Granted resources while running.
    pub allocation: Allocation,
}

impl JobRecord {
    /// Queue wait so far (or total queue wait once started).
    pub fn queue_wait(&self, now: SimTime) -> SimDuration {
        match self.started_at {
            Some(s) => s - self.submitted_at,
            None => now - self.submitted_at,
        }
    }

    /// Walltime deadline, if running.
    pub fn deadline(&self) -> Option<SimTime> {
        self.started_at.map(|s| s + self.request.walltime)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_builders() {
        let r = JobRequest::single_node(8, SimDuration::from_hours(2), "llama-70b")
            .with_priority(JobPriority::High)
            .with_user("gateway");
        assert_eq!(r.nodes, 1);
        assert_eq!(r.total_gpus(), 8);
        assert_eq!(r.priority, JobPriority::High);
        assert_eq!(r.user, "gateway");
        let m = JobRequest::multi_node(3, 8, SimDuration::from_hours(4), "llama-405b");
        assert_eq!(m.total_gpus(), 24);
    }

    #[test]
    fn state_activity() {
        assert!(JobState::Queued.is_active());
        assert!(JobState::Running.is_active());
        assert!(!JobState::Completed.is_active());
        assert!(!JobState::TimedOut.is_active());
        assert!(!JobState::Cancelled.is_active());
    }

    #[test]
    fn record_timings() {
        let rec = JobRecord {
            id: JobId(1),
            request: JobRequest::single_node(4, SimDuration::from_hours(1), "m"),
            state: JobState::Running,
            submitted_at: SimTime::from_secs(10),
            started_at: Some(SimTime::from_secs(70)),
            ended_at: None,
            allocation: Allocation::default(),
        };
        assert_eq!(
            rec.queue_wait(SimTime::from_secs(100)),
            SimDuration::from_secs(60)
        );
        assert_eq!(rec.deadline(), Some(SimTime::from_secs(70 + 3600)));
    }

    #[test]
    fn priority_ordering() {
        assert!(JobPriority::High > JobPriority::Normal);
        assert!(JobPriority::Normal > JobPriority::Low);
    }
}
