//! GPU node hardware model.
//!
//! Encodes the hardware the paper deploys on: Sophia's NVIDIA DGX A100 nodes
//! (8 × A100, mostly 40 GB with two 80 GB nodes, 15 TB local SSD) and the
//! other accelerator types FIRST supports (H100, AMD MI250).

use serde::{Deserialize, Serialize};

/// GPU accelerator model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GpuModel {
    /// NVIDIA A100, 40 GB HBM2e.
    A100_40,
    /// NVIDIA A100, 80 GB HBM2e.
    A100_80,
    /// NVIDIA H100, 80 GB HBM3.
    H100,
    /// AMD MI250, 128 GB HBM2e.
    MI250,
}

impl GpuModel {
    /// Usable device memory in gigabytes.
    pub fn vram_gb(&self) -> f64 {
        match self {
            GpuModel::A100_40 => 40.0,
            GpuModel::A100_80 => 80.0,
            GpuModel::H100 => 80.0,
            GpuModel::MI250 => 128.0,
        }
    }

    /// Relative compute throughput versus an A100-40 baseline. Used by the
    /// serving performance model to scale prefill/decode rates.
    pub fn relative_throughput(&self) -> f64 {
        match self {
            GpuModel::A100_40 => 1.0,
            GpuModel::A100_80 => 1.05,
            GpuModel::H100 => 2.2,
            GpuModel::MI250 => 0.85,
        }
    }

    /// Sustained weight-load bandwidth from node-local storage into HBM, in
    /// GB/s. Dominates cold-start time for large models (§4.3).
    pub fn weight_load_gbps(&self) -> f64 {
        match self {
            GpuModel::A100_40 | GpuModel::A100_80 => 2.0,
            GpuModel::H100 => 3.0,
            GpuModel::MI250 => 1.6,
        }
    }
}

/// A single GPU device within a node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuDevice {
    /// Index within the node (0-based).
    pub index: u32,
    /// Hardware model.
    pub model: GpuModel,
    /// Whether the device is currently allocated to a job.
    pub allocated: bool,
}

/// Unique node identifier within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// A compute node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    /// Node identifier.
    pub id: NodeId,
    /// Hostname-style label.
    pub name: String,
    /// GPUs installed in the node.
    pub gpus: Vec<GpuDevice>,
    /// CPU core count (2 × AMD Rome on Sophia).
    pub cpu_cores: u32,
    /// Node-local SSD capacity in terabytes.
    pub local_ssd_tb: f64,
    /// Whether the node is drained / offline for maintenance.
    pub offline: bool,
}

impl Node {
    /// Create a node with `gpu_count` GPUs of the given model.
    pub fn new(id: NodeId, name: impl Into<String>, model: GpuModel, gpu_count: u32) -> Self {
        Node {
            id,
            name: name.into(),
            gpus: (0..gpu_count)
                .map(|index| GpuDevice {
                    index,
                    model,
                    allocated: false,
                })
                .collect(),
            cpu_cores: 128,
            local_ssd_tb: 15.0,
            offline: false,
        }
    }

    /// Total number of GPUs.
    pub fn gpu_count(&self) -> u32 {
        self.gpus.len() as u32
    }

    /// Number of GPUs not currently allocated (zero when offline).
    pub fn free_gpus(&self) -> u32 {
        if self.offline {
            return 0;
        }
        self.gpus.iter().filter(|g| !g.allocated).count() as u32
    }

    /// Number of GPUs currently allocated.
    pub fn allocated_gpus(&self) -> u32 {
        self.gpus.iter().filter(|g| g.allocated).count() as u32
    }

    /// Whether the node is fully idle.
    pub fn is_idle(&self) -> bool {
        self.allocated_gpus() == 0
    }

    /// Total VRAM across all GPUs in gigabytes.
    pub fn total_vram_gb(&self) -> f64 {
        self.gpus.iter().map(|g| g.model.vram_gb()).sum()
    }

    /// Allocate `count` free GPUs; returns the allocated device indices or
    /// `None` (leaving the node untouched) if not enough are free.
    pub fn allocate_gpus(&mut self, count: u32) -> Option<Vec<u32>> {
        if self.free_gpus() < count {
            return None;
        }
        let mut taken = Vec::with_capacity(count as usize);
        for gpu in self.gpus.iter_mut() {
            if taken.len() as u32 == count {
                break;
            }
            if !gpu.allocated {
                gpu.allocated = true;
                taken.push(gpu.index);
            }
        }
        Some(taken)
    }

    /// Release previously allocated GPU indices.
    pub fn release_gpus(&mut self, indices: &[u32]) {
        for &i in indices {
            if let Some(gpu) = self.gpus.iter_mut().find(|g| g.index == i) {
                gpu.allocated = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_model_parameters_are_sane() {
        assert_eq!(GpuModel::A100_40.vram_gb(), 40.0);
        assert_eq!(GpuModel::A100_80.vram_gb(), 80.0);
        assert!(GpuModel::H100.relative_throughput() > GpuModel::A100_40.relative_throughput());
        assert!(GpuModel::MI250.vram_gb() > GpuModel::A100_80.vram_gb());
    }

    #[test]
    fn node_allocation_and_release() {
        let mut node = Node::new(NodeId(0), "sophia-gpu-00", GpuModel::A100_40, 8);
        assert_eq!(node.free_gpus(), 8);
        let six = node.allocate_gpus(6).unwrap();
        assert_eq!(six.len(), 6);
        assert_eq!(node.free_gpus(), 2);
        // Co-location: remaining 2 GPUs can host smaller models (paper §3.2.2).
        let two = node.allocate_gpus(2).unwrap();
        assert_eq!(node.free_gpus(), 0);
        assert!(node.allocate_gpus(1).is_none());
        node.release_gpus(&six);
        assert_eq!(node.free_gpus(), 6);
        node.release_gpus(&two);
        assert!(node.is_idle());
    }

    #[test]
    fn failed_allocation_leaves_node_untouched() {
        let mut node = Node::new(NodeId(1), "n1", GpuModel::A100_40, 4);
        node.allocate_gpus(3).unwrap();
        assert!(node.allocate_gpus(2).is_none());
        assert_eq!(node.free_gpus(), 1);
    }

    #[test]
    fn offline_node_has_no_free_gpus() {
        let mut node = Node::new(NodeId(2), "n2", GpuModel::A100_80, 8);
        node.offline = true;
        assert_eq!(node.free_gpus(), 0);
        assert!(node.allocate_gpus(1).is_none());
    }

    #[test]
    fn vram_totals() {
        let node = Node::new(NodeId(3), "n3", GpuModel::A100_40, 8);
        assert_eq!(node.total_vram_gb(), 320.0);
    }
}
