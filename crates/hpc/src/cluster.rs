//! Cluster definitions and the publicly queryable cluster status used by the
//! federation layer (§4.5: "queries the publicly available status of each
//! cluster ... decides which cluster to use based on node availability").

use crate::node::{GpuModel, Node, NodeId};
use serde::{Deserialize, Serialize};

/// A named collection of compute nodes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cluster {
    /// Facility-visible cluster name ("sophia", "polaris", ...).
    pub name: String,
    /// Nodes in the cluster.
    pub nodes: Vec<Node>,
}

/// Snapshot of cluster occupancy, in the shape a facility status page exposes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterStatus {
    /// Cluster name.
    pub cluster: String,
    /// Total schedulable nodes.
    pub total_nodes: u32,
    /// Nodes with every GPU free.
    pub idle_nodes: u32,
    /// Nodes with at least one free GPU.
    pub nodes_with_free_gpus: u32,
    /// Total GPUs.
    pub total_gpus: u32,
    /// Free GPUs.
    pub free_gpus: u32,
    /// Nodes marked offline.
    pub offline_nodes: u32,
}

impl ClusterStatus {
    /// Whether the cluster has any free capacity at all.
    pub fn has_free_capacity(&self) -> bool {
        self.free_gpus > 0
    }
}

impl Cluster {
    /// Create a cluster of `node_count` identical nodes.
    pub fn homogeneous(
        name: impl Into<String>,
        node_count: u32,
        gpus_per_node: u32,
        model: GpuModel,
    ) -> Self {
        let name = name.into();
        let nodes = (0..node_count)
            .map(|i| {
                Node::new(
                    NodeId(i),
                    format!("{name}-gpu-{i:02}"),
                    model,
                    gpus_per_node,
                )
            })
            .collect();
        Cluster { name, nodes }
    }

    /// The ALCF Sophia cluster as described in §5.2.1: 24 DGX A100 nodes with
    /// eight A100 GPUs each, two of which carry 80 GB parts.
    pub fn sophia() -> Self {
        let mut cluster = Cluster::homogeneous("sophia", 24, 8, GpuModel::A100_40);
        for node in cluster.nodes.iter_mut().take(2) {
            for gpu in node.gpus.iter_mut() {
                gpu.model = GpuModel::A100_80;
            }
        }
        cluster
    }

    /// The ALCF Polaris system (federation proof-of-concept target, §4.5):
    /// modelled as 40 nodes × 4 A100-40 GPUs.
    pub fn polaris() -> Self {
        Cluster::homogeneous("polaris", 40, 4, GpuModel::A100_40)
    }

    /// A small test cluster.
    pub fn tiny(name: impl Into<String>, nodes: u32, gpus: u32) -> Self {
        Cluster::homogeneous(name, nodes, gpus, GpuModel::A100_40)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> u32 {
        self.nodes.len() as u32
    }

    /// Total GPUs across the cluster.
    pub fn total_gpus(&self) -> u32 {
        self.nodes.iter().map(|n| n.gpu_count()).sum()
    }

    /// Total VRAM across the cluster in gigabytes.
    pub fn total_vram_gb(&self) -> f64 {
        self.nodes.iter().map(|n| n.total_vram_gb()).sum()
    }

    /// The largest per-node GPU count in the cluster — the ceiling on how many
    /// GPUs a single-node allocation can ever obtain here (8 on Sophia's DGX
    /// nodes, 4 on Polaris).
    pub fn max_gpus_per_node(&self) -> u32 {
        self.nodes.iter().map(|n| n.gpu_count()).max().unwrap_or(0)
    }

    /// Borrow a node by id.
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.iter().find(|n| n.id == id)
    }

    /// Mutably borrow a node by id.
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut Node> {
        self.nodes.iter_mut().find(|n| n.id == id)
    }

    /// Publicly visible status snapshot.
    pub fn status(&self) -> ClusterStatus {
        let online: Vec<&Node> = self.nodes.iter().filter(|n| !n.offline).collect();
        ClusterStatus {
            cluster: self.name.clone(),
            total_nodes: online.len() as u32,
            idle_nodes: online.iter().filter(|n| n.is_idle()).count() as u32,
            nodes_with_free_gpus: online.iter().filter(|n| n.free_gpus() > 0).count() as u32,
            total_gpus: online.iter().map(|n| n.gpu_count()).sum(),
            free_gpus: online.iter().map(|n| n.free_gpus()).sum(),
            offline_nodes: self.nodes.iter().filter(|n| n.offline).count() as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sophia_matches_paper_description() {
        let sophia = Cluster::sophia();
        assert_eq!(sophia.node_count(), 24);
        assert_eq!(sophia.total_gpus(), 24 * 8);
        // 22 nodes × 8 × 40 GB + 2 nodes × 8 × 80 GB = 8320 GB, as in §5.2.1.
        assert_eq!(sophia.total_vram_gb(), 8320.0);
    }

    #[test]
    fn polaris_preset_exists() {
        let polaris = Cluster::polaris();
        assert_eq!(polaris.node_count(), 40);
        assert_eq!(polaris.total_gpus(), 160);
    }

    #[test]
    fn max_gpus_per_node_reflects_node_size() {
        assert_eq!(Cluster::sophia().max_gpus_per_node(), 8);
        assert_eq!(Cluster::polaris().max_gpus_per_node(), 4);
        assert_eq!(Cluster::tiny("t", 2, 6).max_gpus_per_node(), 6);
    }

    #[test]
    fn status_reflects_allocations() {
        let mut c = Cluster::tiny("test", 4, 8);
        let fresh = c.status();
        assert_eq!(fresh.idle_nodes, 4);
        assert_eq!(fresh.free_gpus, 32);
        assert!(fresh.has_free_capacity());

        c.node_mut(NodeId(0)).unwrap().allocate_gpus(8).unwrap();
        c.node_mut(NodeId(1)).unwrap().allocate_gpus(3).unwrap();
        let s = c.status();
        assert_eq!(s.idle_nodes, 2);
        assert_eq!(s.nodes_with_free_gpus, 3);
        assert_eq!(s.free_gpus, 32 - 8 - 3);
    }

    #[test]
    fn offline_nodes_excluded_from_status() {
        let mut c = Cluster::tiny("test", 3, 4);
        c.node_mut(NodeId(2)).unwrap().offline = true;
        let s = c.status();
        assert_eq!(s.total_nodes, 2);
        assert_eq!(s.offline_nodes, 1);
        assert_eq!(s.total_gpus, 8);
    }

    #[test]
    fn node_lookup() {
        let c = Cluster::tiny("t", 2, 4);
        assert!(c.node(NodeId(1)).is_some());
        assert!(c.node(NodeId(9)).is_none());
    }
}
