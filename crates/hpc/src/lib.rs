//! # first-hpc — HPC cluster substrate
//!
//! The compute facility FIRST schedules onto: GPU nodes (`Node`, `GpuModel`),
//! clusters with facility presets matching the paper's deployment
//! ([`Cluster::sophia`], [`Cluster::polaris`]), and a PBS-style
//! [`BatchScheduler`] with queueing, priorities, walltime enforcement and
//! backfill. The compute fabric (`first-fabric`) acquires and releases nodes
//! through this scheduler exactly as Globus Compute endpoints submit batch
//! jobs in the real deployment.

#![warn(missing_docs)]

pub mod cluster;
pub mod job;
pub mod node;
pub mod scheduler;

pub use cluster::{Cluster, ClusterStatus};
pub use job::{Allocation, JobId, JobPriority, JobRecord, JobRequest, JobState};
pub use node::{GpuDevice, GpuModel, Node, NodeId};
pub use scheduler::{BatchScheduler, SchedulerEvent, SchedulerEventKind, SchedulerStats};
