//! PBS-style batch scheduler.
//!
//! Models the part of the facility stack FIRST interacts with (§2.3, §4.3):
//! jobs are submitted to a queue, wait for node/GPU allocation, run until
//! released by their owner or killed at their walltime limit, and the queue is
//! drained in priority order with simple backfill so small jobs can slip past
//! blocked large ones — the behaviour that shapes cold-start wait times.

use crate::cluster::{Cluster, ClusterStatus};
use crate::job::{Allocation, JobId, JobRecord, JobRequest, JobState};
use crate::node::NodeId;
use first_desim::{SimDuration, SimProcess, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Events emitted by the scheduler as jobs change state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulerEvent {
    /// When the transition happened.
    pub time: SimTime,
    /// Which job.
    pub job: JobId,
    /// What happened.
    pub kind: SchedulerEventKind,
}

/// The kind of job state transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerEventKind {
    /// Resources granted; job processes launched.
    Started,
    /// Job released its resources normally.
    Completed,
    /// Job exceeded its walltime and was killed.
    TimedOut,
    /// Job was cancelled.
    Cancelled,
}

/// Aggregate scheduler statistics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SchedulerStats {
    /// Jobs submitted.
    pub submitted: u64,
    /// Jobs started.
    pub started: u64,
    /// Jobs completed normally.
    pub completed: u64,
    /// Jobs killed at walltime.
    pub timed_out: u64,
    /// Jobs cancelled.
    pub cancelled: u64,
    /// Sum of queue-wait seconds over started jobs (for mean wait).
    pub total_queue_wait_secs: f64,
}

impl SchedulerStats {
    /// Mean queue wait over all started jobs, in seconds.
    pub fn mean_queue_wait_secs(&self) -> f64 {
        if self.started == 0 {
            0.0
        } else {
            self.total_queue_wait_secs / self.started as f64
        }
    }
}

/// The batch scheduler for one cluster.
#[derive(Debug, Clone)]
pub struct BatchScheduler {
    cluster: Cluster,
    jobs: BTreeMap<JobId, JobRecord>,
    queue: Vec<JobId>,
    events: Vec<SchedulerEvent>,
    stats: SchedulerStats,
    next_id: u64,
    last_advance: SimTime,
}

impl BatchScheduler {
    /// Create a scheduler managing the given cluster.
    pub fn new(cluster: Cluster) -> Self {
        BatchScheduler {
            cluster,
            jobs: BTreeMap::new(),
            queue: Vec::new(),
            events: Vec::new(),
            stats: SchedulerStats::default(),
            next_id: 1,
            last_advance: SimTime::ZERO,
        }
    }

    /// The managed cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Mutable access to the managed cluster (e.g. to drain a node).
    pub fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    /// Publicly visible cluster occupancy.
    pub fn cluster_status(&self) -> ClusterStatus {
        self.cluster.status()
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &SchedulerStats {
        &self.stats
    }

    /// Look up a job record.
    pub fn job(&self, id: JobId) -> Option<&JobRecord> {
        self.jobs.get(&id)
    }

    /// All job records (for the `/jobs` endpoint and tests).
    pub fn jobs(&self) -> impl Iterator<Item = &JobRecord> {
        self.jobs.values()
    }

    /// Number of jobs waiting in the queue.
    pub fn queued_count(&self) -> usize {
        self.queue.len()
    }

    /// Number of currently running jobs.
    pub fn running_count(&self) -> usize {
        self.jobs
            .values()
            .filter(|j| j.state == JobState::Running)
            .count()
    }

    /// Drain the accumulated state-transition events.
    pub fn take_events(&mut self) -> Vec<SchedulerEvent> {
        std::mem::take(&mut self.events)
    }

    /// Submit a job. The job may start immediately if resources are free.
    pub fn submit(&mut self, request: JobRequest, now: SimTime) -> JobId {
        let id = JobId(self.next_id);
        self.next_id += 1;
        self.jobs.insert(
            id,
            JobRecord {
                id,
                request,
                state: JobState::Queued,
                submitted_at: now,
                started_at: None,
                ended_at: None,
                allocation: Allocation::default(),
            },
        );
        self.queue.push(id);
        self.stats.submitted += 1;
        self.try_schedule(now);
        id
    }

    /// Cancel a queued or running job.
    pub fn cancel(&mut self, id: JobId, now: SimTime) -> bool {
        let Some(rec) = self.jobs.get_mut(&id) else {
            return false;
        };
        if !rec.state.is_active() {
            return false;
        }
        if rec.state == JobState::Running {
            let alloc = std::mem::take(&mut rec.allocation);
            Self::release_allocation(&mut self.cluster, &alloc);
        }
        rec.state = JobState::Cancelled;
        rec.ended_at = Some(now);
        self.queue.retain(|&q| q != id);
        self.stats.cancelled += 1;
        self.events.push(SchedulerEvent {
            time: now,
            job: id,
            kind: SchedulerEventKind::Cancelled,
        });
        self.try_schedule(now);
        true
    }

    /// Release a running job's resources (normal completion).
    pub fn complete(&mut self, id: JobId, now: SimTime) -> bool {
        let Some(rec) = self.jobs.get_mut(&id) else {
            return false;
        };
        if rec.state != JobState::Running {
            return false;
        }
        let alloc = std::mem::take(&mut rec.allocation);
        Self::release_allocation(&mut self.cluster, &alloc);
        rec.state = JobState::Completed;
        rec.ended_at = Some(now);
        self.stats.completed += 1;
        self.events.push(SchedulerEvent {
            time: now,
            job: id,
            kind: SchedulerEventKind::Completed,
        });
        self.try_schedule(now);
        true
    }

    fn release_allocation(cluster: &mut Cluster, alloc: &Allocation) {
        for (node_id, gpus) in &alloc.placements {
            if let Some(node) = cluster.node_mut(*node_id) {
                node.release_gpus(gpus);
            }
        }
    }

    /// Attempt to place a request without mutating anything; returns the
    /// candidate placement if it fits right now.
    fn find_placement(&self, request: &JobRequest) -> Option<Vec<(NodeId, u32)>> {
        let per_node = if request.gpus_per_node == 0 {
            None // whole node
        } else {
            Some(request.gpus_per_node)
        };
        let mut chosen: Vec<(NodeId, u32)> = Vec::new();
        for node in &self.cluster.nodes {
            if chosen.len() as u32 == request.nodes {
                break;
            }
            if node.offline {
                continue;
            }
            match per_node {
                None => {
                    if node.is_idle() && node.gpu_count() > 0 {
                        chosen.push((node.id, node.gpu_count()));
                    }
                }
                Some(g) => {
                    if node.free_gpus() >= g {
                        chosen.push((node.id, g));
                    }
                }
            }
        }
        if chosen.len() as u32 == request.nodes {
            Some(chosen)
        } else {
            None
        }
    }

    /// Whether a request could start immediately given current occupancy.
    pub fn would_fit_now(&self, request: &JobRequest) -> bool {
        self.find_placement(request).is_some()
    }

    /// Rough wait estimate used by the `/jobs` endpoint: zero when the request
    /// fits now, otherwise the time until the earliest running-job deadline.
    pub fn estimate_queue_wait(&self, request: &JobRequest, now: SimTime) -> SimDuration {
        if self.would_fit_now(request) && self.queue.is_empty() {
            return SimDuration::ZERO;
        }
        self.jobs
            .values()
            .filter(|j| j.state == JobState::Running)
            .filter_map(|j| j.deadline())
            .min()
            .map(|d| d.saturating_since(now))
            .unwrap_or(SimDuration::ZERO)
    }

    /// Scan the queue (priority order, then FIFO, with backfill) and start
    /// every job that fits.
    fn try_schedule(&mut self, now: SimTime) {
        // Sort a copy of the queue indices by (priority desc, submit order asc).
        let mut order: Vec<JobId> = self.queue.clone();
        order.sort_by_key(|id| {
            let rec = &self.jobs[id];
            (
                std::cmp::Reverse(rec.request.priority as u8),
                rec.submitted_at,
                id.0,
            )
        });

        for id in order {
            let Some(rec) = self.jobs.get(&id) else {
                continue;
            };
            if rec.state != JobState::Queued {
                continue;
            }
            let Some(placement) = self.find_placement(&rec.request) else {
                // Backfill: a job that does not fit is skipped; later (smaller)
                // jobs may still start. High-priority blocking is intentionally
                // not modelled — inference service jobs are small relative to
                // the cluster and the paper relies on shared-queue behaviour.
                continue;
            };
            // Perform the allocation.
            let mut placements = Vec::with_capacity(placement.len());
            for (node_id, count) in placement {
                let node = self
                    .cluster
                    .node_mut(node_id)
                    .expect("placement referenced a known node");
                let gpus = node
                    .allocate_gpus(count)
                    .expect("placement verified free GPUs");
                placements.push((node_id, gpus));
            }
            let rec = self.jobs.get_mut(&id).expect("job exists");
            rec.allocation = Allocation { placements };
            rec.state = JobState::Running;
            rec.started_at = Some(now);
            self.queue.retain(|&q| q != id);
            self.stats.started += 1;
            self.stats.total_queue_wait_secs += rec.queue_wait(now).as_secs_f64();
            self.events.push(SchedulerEvent {
                time: now,
                job: id,
                kind: SchedulerEventKind::Started,
            });
        }
    }

    /// Kill jobs whose walltime expired at or before `now`.
    fn enforce_walltime(&mut self, now: SimTime) {
        let expired: Vec<JobId> = self
            .jobs
            .values()
            .filter(|j| j.state == JobState::Running)
            .filter(|j| j.deadline().map(|d| d <= now).unwrap_or(false))
            .map(|j| j.id)
            .collect();
        for id in expired {
            let rec = self.jobs.get_mut(&id).expect("job exists");
            let alloc = std::mem::take(&mut rec.allocation);
            Self::release_allocation(&mut self.cluster, &alloc);
            let rec = self.jobs.get_mut(&id).expect("job exists");
            rec.state = JobState::TimedOut;
            rec.ended_at = rec.deadline().or(Some(now));
            self.stats.timed_out += 1;
            self.events.push(SchedulerEvent {
                time: rec.ended_at.unwrap_or(now),
                job: id,
                kind: SchedulerEventKind::TimedOut,
            });
        }
    }
}

impl SimProcess for BatchScheduler {
    fn next_event_time(&self) -> Option<SimTime> {
        self.jobs
            .values()
            .filter(|j| j.state == JobState::Running)
            .filter_map(|j| j.deadline())
            .min()
    }

    fn advance(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_advance, "time went backwards");
        self.last_advance = now;
        self.enforce_walltime(now);
        self.try_schedule(now);
    }

    fn name(&self) -> &str {
        "batch-scheduler"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobPriority;

    fn scheduler(nodes: u32, gpus: u32) -> BatchScheduler {
        BatchScheduler::new(Cluster::tiny("test", nodes, gpus))
    }

    #[test]
    fn job_starts_immediately_when_resources_free() {
        let mut s = scheduler(2, 8);
        let id = s.submit(
            JobRequest::single_node(8, SimDuration::from_hours(2), "llama-70b"),
            SimTime::ZERO,
        );
        assert_eq!(s.job(id).unwrap().state, JobState::Running);
        assert_eq!(s.running_count(), 1);
        assert_eq!(s.cluster_status().idle_nodes, 1);
        let events = s.take_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, SchedulerEventKind::Started);
    }

    #[test]
    fn job_queues_when_cluster_full_and_starts_on_release() {
        let mut s = scheduler(1, 8);
        let a = s.submit(
            JobRequest::single_node(8, SimDuration::from_hours(2), "a"),
            SimTime::ZERO,
        );
        let b = s.submit(
            JobRequest::single_node(8, SimDuration::from_hours(2), "b"),
            SimTime::from_secs(10),
        );
        assert_eq!(s.job(b).unwrap().state, JobState::Queued);
        assert_eq!(s.queued_count(), 1);

        s.complete(a, SimTime::from_secs(500));
        assert_eq!(s.job(b).unwrap().state, JobState::Running);
        assert_eq!(
            s.job(b).unwrap().queue_wait(SimTime::from_secs(500)),
            SimDuration::from_secs(490)
        );
    }

    #[test]
    fn gpu_colocation_on_one_node() {
        // 70B on 6 GPUs plus 8B and 7B on one GPU each — the §3.2.2 example.
        let mut s = scheduler(1, 8);
        let a = s.submit(
            JobRequest::single_node(6, SimDuration::from_hours(2), "llama-70b"),
            SimTime::ZERO,
        );
        let b = s.submit(
            JobRequest::single_node(1, SimDuration::from_hours(2), "llama-8b"),
            SimTime::ZERO,
        );
        let c = s.submit(
            JobRequest::single_node(1, SimDuration::from_hours(2), "mistral-7b"),
            SimTime::ZERO,
        );
        for id in [a, b, c] {
            assert_eq!(s.job(id).unwrap().state, JobState::Running);
        }
        assert_eq!(s.cluster_status().free_gpus, 0);
    }

    #[test]
    fn backfill_lets_small_jobs_pass_blocked_large_ones() {
        let mut s = scheduler(2, 8);
        // Fill one node.
        s.submit(
            JobRequest::single_node(8, SimDuration::from_hours(4), "big0"),
            SimTime::ZERO,
        );
        // Needs two whole nodes -> cannot start.
        let blocked = s.submit(
            JobRequest::multi_node(2, 8, SimDuration::from_hours(4), "blocked"),
            SimTime::ZERO,
        );
        // Small job fits on the second node and should backfill past it.
        let small = s.submit(
            JobRequest::single_node(2, SimDuration::from_hours(1), "small"),
            SimTime::from_secs(1),
        );
        assert_eq!(s.job(blocked).unwrap().state, JobState::Queued);
        assert_eq!(s.job(small).unwrap().state, JobState::Running);
    }

    #[test]
    fn walltime_enforcement_frees_resources() {
        let mut s = scheduler(1, 8);
        let id = s.submit(
            JobRequest::single_node(8, SimDuration::from_hours(2), "a"),
            SimTime::ZERO,
        );
        assert_eq!(
            SimProcess::next_event_time(&s),
            Some(SimTime::from_secs(7200))
        );
        s.advance(SimTime::from_secs(7200));
        assert_eq!(s.job(id).unwrap().state, JobState::TimedOut);
        assert_eq!(s.cluster_status().free_gpus, 8);
        assert_eq!(s.stats().timed_out, 1);
    }

    #[test]
    fn walltime_expiry_lets_queued_job_start() {
        let mut s = scheduler(1, 8);
        s.submit(
            JobRequest::single_node(8, SimDuration::from_hours(1), "a"),
            SimTime::ZERO,
        );
        let b = s.submit(
            JobRequest::single_node(8, SimDuration::from_hours(1), "b"),
            SimTime::ZERO,
        );
        s.advance(SimTime::from_secs(3600));
        assert_eq!(s.job(b).unwrap().state, JobState::Running);
        assert_eq!(s.job(b).unwrap().started_at, Some(SimTime::from_secs(3600)));
    }

    #[test]
    fn cancel_queued_and_running_jobs() {
        let mut s = scheduler(1, 4);
        let a = s.submit(
            JobRequest::single_node(4, SimDuration::from_hours(1), "a"),
            SimTime::ZERO,
        );
        let b = s.submit(
            JobRequest::single_node(4, SimDuration::from_hours(1), "b"),
            SimTime::ZERO,
        );
        assert!(s.cancel(b, SimTime::from_secs(5)));
        assert_eq!(s.job(b).unwrap().state, JobState::Cancelled);
        assert!(s.cancel(a, SimTime::from_secs(6)));
        assert_eq!(s.cluster_status().free_gpus, 4);
        // Cancelling twice is a no-op.
        assert!(!s.cancel(a, SimTime::from_secs(7)));
    }

    #[test]
    fn high_priority_jobs_start_first() {
        let mut s = scheduler(1, 8);
        let running = s.submit(
            JobRequest::single_node(8, SimDuration::from_hours(1), "running"),
            SimTime::ZERO,
        );
        let normal = s.submit(
            JobRequest::single_node(8, SimDuration::from_hours(1), "normal"),
            SimTime::from_secs(1),
        );
        let urgent = s.submit(
            JobRequest::single_node(8, SimDuration::from_hours(1), "urgent")
                .with_priority(JobPriority::High),
            SimTime::from_secs(2),
        );
        s.complete(running, SimTime::from_secs(100));
        assert_eq!(s.job(urgent).unwrap().state, JobState::Running);
        assert_eq!(s.job(normal).unwrap().state, JobState::Queued);
    }

    #[test]
    fn multi_node_allocation_for_large_models() {
        let mut s = scheduler(4, 8);
        let id = s.submit(
            JobRequest::multi_node(3, 8, SimDuration::from_hours(2), "llama-405b"),
            SimTime::ZERO,
        );
        let rec = s.job(id).unwrap();
        assert_eq!(rec.state, JobState::Running);
        assert_eq!(rec.allocation.total_gpus(), 24);
        assert_eq!(rec.allocation.nodes().len(), 3);
    }

    #[test]
    fn whole_node_requests_require_idle_nodes() {
        let mut s = scheduler(2, 8);
        s.submit(
            JobRequest::single_node(1, SimDuration::from_hours(1), "tiny"),
            SimTime::ZERO,
        );
        // gpus_per_node == 0 means "whole node": only one node is fully idle.
        let whole = JobRequest {
            nodes: 2,
            gpus_per_node: 0,
            walltime: SimDuration::from_hours(1),
            priority: JobPriority::Normal,
            user: "u".into(),
            tag: "whole".into(),
        };
        let id = s.submit(whole, SimTime::ZERO);
        assert_eq!(s.job(id).unwrap().state, JobState::Queued);
    }

    #[test]
    fn queue_wait_estimate_is_zero_when_idle() {
        let mut s = scheduler(2, 8);
        let req = JobRequest::single_node(8, SimDuration::from_hours(1), "m");
        assert_eq!(
            s.estimate_queue_wait(&req, SimTime::ZERO),
            SimDuration::ZERO
        );
        s.submit(req.clone(), SimTime::ZERO);
        s.submit(req.clone(), SimTime::ZERO);
        // Cluster now full: estimate points at the earliest deadline.
        let est = s.estimate_queue_wait(&req, SimTime::from_secs(600));
        assert_eq!(est, SimDuration::from_secs(3000));
    }

    #[test]
    fn stats_track_queue_waits() {
        let mut s = scheduler(1, 8);
        let a = s.submit(
            JobRequest::single_node(8, SimDuration::from_hours(1), "a"),
            SimTime::ZERO,
        );
        s.submit(
            JobRequest::single_node(8, SimDuration::from_hours(1), "b"),
            SimTime::ZERO,
        );
        s.complete(a, SimTime::from_secs(100));
        assert_eq!(s.stats().started, 2);
        assert!((s.stats().mean_queue_wait_secs() - 50.0).abs() < 1e-9);
    }
}
