//! Property-based tests: the scheduler never oversubscribes GPUs and always
//! conserves them across arbitrary submit/complete/advance sequences.

use first_desim::{SimDuration, SimProcess, SimTime};
use first_hpc::{BatchScheduler, Cluster, JobRequest, JobState};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Submit { gpus: u32, walltime_mins: u64 },
    CompleteOldest,
    Advance { mins: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u32..=8, 10u64..240).prop_map(|(gpus, walltime_mins)| Op::Submit {
            gpus,
            walltime_mins
        }),
        Just(Op::CompleteOldest),
        (1u64..120).prop_map(|mins| Op::Advance { mins }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scheduler_never_oversubscribes(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let nodes = 3u32;
        let gpus_per_node = 8u32;
        let mut sched = BatchScheduler::new(Cluster::tiny("prop", nodes, gpus_per_node));
        let mut now = SimTime::ZERO;

        for op in ops {
            match op {
                Op::Submit { gpus, walltime_mins } => {
                    sched.submit(
                        JobRequest::single_node(gpus, SimDuration::from_mins(walltime_mins), "prop"),
                        now,
                    );
                }
                Op::CompleteOldest => {
                    let running: Vec<_> = sched
                        .jobs()
                        .filter(|j| j.state == JobState::Running)
                        .map(|j| j.id)
                        .collect();
                    if let Some(&id) = running.first() {
                        sched.complete(id, now);
                    }
                }
                Op::Advance { mins } => {
                    now += SimDuration::from_mins(mins);
                    sched.advance(now);
                }
            }

            // Invariant 1: free + allocated GPUs always equals the cluster total.
            let status = sched.cluster_status();
            let allocated: u32 = sched
                .jobs()
                .filter(|j| j.state == JobState::Running)
                .map(|j| j.allocation.total_gpus())
                .sum();
            prop_assert_eq!(status.free_gpus + allocated, nodes * gpus_per_node);

            // Invariant 2: per-node allocations never exceed the node size.
            for node in &sched.cluster().nodes {
                prop_assert!(node.allocated_gpus() <= gpus_per_node);
            }

            // Invariant 3: running jobs each hold exactly what they asked for.
            for job in sched.jobs() {
                if job.state == JobState::Running {
                    prop_assert_eq!(job.allocation.total_gpus(), job.request.total_gpus());
                }
            }
        }
    }

    #[test]
    fn queue_drains_when_everything_completes(
        gpu_sizes in proptest::collection::vec(1u32..=8, 1..40)
    ) {
        let mut sched = BatchScheduler::new(Cluster::tiny("drain", 2, 8));
        let mut now = SimTime::ZERO;
        for &g in &gpu_sizes {
            sched.submit(
                JobRequest::single_node(g, SimDuration::from_hours(10), "drain"),
                now,
            );
        }
        // Repeatedly complete running jobs; everything must eventually finish.
        for _ in 0..gpu_sizes.len() * 2 {
            now += SimDuration::from_mins(1);
            let running: Vec<_> = sched
                .jobs()
                .filter(|j| j.state == JobState::Running)
                .map(|j| j.id)
                .collect();
            for id in running {
                sched.complete(id, now);
            }
        }
        prop_assert_eq!(sched.queued_count(), 0);
        prop_assert!(sched.jobs().all(|j| j.state == JobState::Completed));
        prop_assert_eq!(sched.cluster_status().free_gpus, 16);
    }
}
