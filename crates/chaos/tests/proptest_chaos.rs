//! Property-based determinism tests for the chaos subsystem: seeded fault
//! plans are pure functions of their seed, and a simulation perturbed by a
//! fault plan produces a byte-identical event log when re-run with the same
//! seed.

use first_chaos::{FaultInjector, FaultPlan};
use first_desim::{SimDuration, SimProcess, SimTime};
use first_fabric::{
    ComputeEndpoint, ComputeService, EndpointConfig, FabricLatencyModel, ModelHostingConfig,
    TaskResult,
};
use first_hpc::{Cluster, GpuModel};
use first_serving::{find_model, InferenceRequest};
use proptest::prelude::*;

const MODEL: &str = "meta-llama/Llama-3.3-70B-Instruct";

fn service() -> ComputeService {
    let config = EndpointConfig::new("sophia-endpoint", "sophia", GpuModel::A100_40).host(
        ModelHostingConfig::new(find_model("llama-70b").unwrap(), GpuModel::A100_40)
            .with_max_instances(2),
    );
    let mut ep = ComputeEndpoint::new(config, Cluster::tiny("sophia", 4, 8));
    ep.prewarm(MODEL, 1, SimTime::ZERO);
    let mut svc = ComputeService::new(FabricLatencyModel::default());
    svc.add_endpoint(ep);
    svc
}

/// Drive a faulted service over a fixed workload and return the serialized
/// event log (every task result, in delivery order).
fn event_log(seed: u64, submissions: &[u64]) -> String {
    let mut submissions = submissions.to_vec();
    submissions.sort_unstable();
    let mut svc = service();
    let plan = FaultPlan::seeded(
        seed,
        SimTime::ZERO,
        SimTime::from_secs(300),
        &["sophia-endpoint".to_string()],
        6,
    );
    let mut injector = FaultInjector::new(plan);
    let function = svc
        .registry()
        .find_by_name("run_vllm_inference")
        .unwrap()
        .id;
    for (i, &at_secs) in submissions.iter().enumerate() {
        let at = SimTime::from_secs(at_secs);
        // Apply faults and advance up to the submission instant first, so the
        // submission observes exactly the same world state on every run.
        injector.apply_due(&mut svc, at);
        svc.advance(at);
        let req = InferenceRequest::chat(i as u64, MODEL, 200, 60);
        let _ = svc.submit(function, "sophia-endpoint", req, at);
    }
    let mut log: Vec<TaskResult> = Vec::new();
    let horizon = SimTime::from_secs(3600);
    // The service was already advanced to the last submission instant; never
    // step back before it (components assert monotone time).
    let mut now = SimTime::from_secs(submissions.last().copied().unwrap_or(0));
    while let Some(step) = injector.next_event_merged(&svc) {
        if step > horizon {
            break;
        }
        now = now.max(step);
        injector.apply_due(&mut svc, now);
        svc.advance(now);
        log.extend(svc.poll_results(now));
        if svc.is_drained() && injector.is_exhausted() {
            break;
        }
    }
    log.extend(svc.poll_results(horizon));
    serde_json::to_string(&log).expect("event log serializes")
}

proptest! {
    /// Seeded fault-plan generation is a pure function of the seed.
    #[test]
    fn fault_plans_are_pure_functions_of_the_seed(seed in 0u64..u64::MAX) {
        let endpoints = vec!["sophia-endpoint".to_string(), "polaris-endpoint".to_string()];
        let a = FaultPlan::seeded(seed, SimTime::ZERO, SimTime::from_secs(600), &endpoints, 10);
        let b = FaultPlan::seeded(seed, SimTime::ZERO, SimTime::from_secs(600), &endpoints, 10);
        prop_assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        let flaps_a = FaultPlan::endpoint_flaps(
            "sophia-endpoint", seed, SimTime::ZERO, SimTime::from_secs(600),
            SimDuration::from_secs(45), SimDuration::from_secs(15),
        );
        let flaps_b = FaultPlan::endpoint_flaps(
            "sophia-endpoint", seed, SimTime::ZERO, SimTime::from_secs(600),
            SimDuration::from_secs(45), SimDuration::from_secs(15),
        );
        prop_assert_eq!(flaps_a, flaps_b);
    }

    /// Two simulations with the same seed and the same fault plan produce
    /// byte-identical event logs.
    #[test]
    fn same_seed_and_fault_plan_give_byte_identical_event_logs(
        seed in 0u64..u64::MAX,
        submissions in proptest::collection::vec(0u64..200, 1..12),
    ) {
        let first = event_log(seed, &submissions);
        let second = event_log(seed, &submissions);
        prop_assert_eq!(first.into_bytes(), second.into_bytes());
    }

    /// Different seeds yield different fault schedules (except in the
    /// vanishingly unlikely collision case, which the filter excludes).
    #[test]
    fn different_seeds_change_the_schedule(seed in 0u64..u64::MAX) {
        let endpoints = vec!["sophia-endpoint".to_string()];
        let a = FaultPlan::seeded(seed, SimTime::ZERO, SimTime::from_secs(600), &endpoints, 8);
        let b = FaultPlan::seeded(seed.wrapping_add(1), SimTime::ZERO, SimTime::from_secs(600), &endpoints, 8);
        prop_assert_ne!(a, b);
    }
}
