//! Deterministic fault plans and the injector that applies them.
//!
//! A [`FaultPlan`] is a time-ordered schedule of [`FaultEvent`]s — node
//! crashes and PBS preemptions on the HPC substrate, endpoint flaps, cluster
//! outages and network latency spikes on the compute fabric, and engine
//! stalls in the serving layer. Plans are either hand-written (scenario
//! tests) or generated from a seed (sweep benchmarks), and the same seed
//! always yields the same plan, so every chaos experiment reproduces
//! bit-for-bit. The [`FaultInjector`] replays a plan against a live
//! [`ComputeService`] as virtual time advances and schedules the matching
//! recovery actions (e.g. a crashed node coming back online).

use first_desim::{SimDuration, SimRng, SimTime};
use first_fabric::ComputeService;
use first_hpc::NodeId;
use serde::{Deserialize, Serialize};

/// One kind of injected fault.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A compute node backing a hot instance crashes: the instance fails,
    /// its in-flight tasks error out, and the node stays offline for
    /// `offline_for` before rejoining the cluster.
    NodeCrash {
        /// Endpoint whose cluster loses the node.
        endpoint: String,
        /// How long the node stays offline.
        offline_for: SimDuration,
    },
    /// The PBS scheduler preempts the batch job backing one hot instance
    /// (walltime pressure or a higher-priority reservation).
    JobPreemption {
        /// Endpoint whose instance job is cancelled.
        endpoint: String,
    },
    /// The Globus-Compute endpoint becomes unreachable (process flap or
    /// network partition): task deliveries fail until it recovers.
    EndpointFlap {
        /// Endpoint that goes dark.
        endpoint: String,
        /// How long deliveries fail.
        down_for: SimDuration,
    },
    /// A full cluster outage: the endpoint is unreachable *and* every active
    /// instance is killed, so nothing survives the window.
    ClusterOutage {
        /// Endpoint whose cluster goes down.
        endpoint: String,
        /// Outage duration.
        down_for: SimDuration,
    },
    /// A fabric-wide latency spike (congested WAN path): every submission and
    /// result relay pays `extra` until the spike ends.
    LatencySpike {
        /// Extra one-way latency added.
        extra: SimDuration,
        /// Spike duration.
        duration: SimDuration,
    },
    /// Every autoregressive (vLLM) serving engine on the endpoint stops
    /// making decode progress (NCCL hang, storage stall) until the given
    /// duration elapses; queued and running work resumes afterwards.
    /// Embedding backends are unaffected.
    EngineStall {
        /// Endpoint whose engines stall.
        endpoint: String,
        /// Stall duration.
        duration: SimDuration,
    },
}

impl FaultKind {
    /// The endpoint this fault targets, if any (latency spikes are global).
    pub fn endpoint(&self) -> Option<&str> {
        match self {
            FaultKind::NodeCrash { endpoint, .. }
            | FaultKind::JobPreemption { endpoint }
            | FaultKind::EndpointFlap { endpoint, .. }
            | FaultKind::ClusterOutage { endpoint, .. }
            | FaultKind::EngineStall { endpoint, .. } => Some(endpoint),
            FaultKind::LatencySpike { .. } => None,
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::NodeCrash { .. } => "node-crash",
            FaultKind::JobPreemption { .. } => "job-preemption",
            FaultKind::EndpointFlap { .. } => "endpoint-flap",
            FaultKind::ClusterOutage { .. } => "cluster-outage",
            FaultKind::LatencySpike { .. } => "latency-spike",
            FaultKind::EngineStall { .. } => "engine-stall",
        }
    }
}

/// A fault scheduled at an absolute virtual time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the fault strikes.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic, time-ordered schedule of faults.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (the fault-free baseline).
    pub fn none() -> Self {
        Self::default()
    }

    /// Add a fault; events are kept sorted by time (ties keep push order).
    pub fn push(&mut self, at: SimTime, kind: FaultKind) -> &mut Self {
        self.events.push(FaultEvent { at, kind });
        self.events.sort_by_key(|e| e.at);
        self
    }

    /// Builder-style [`FaultPlan::push`].
    pub fn with(mut self, at: SimTime, kind: FaultKind) -> Self {
        self.push(at, kind);
        self
    }

    /// The scheduled events, in time order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing (the baseline).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A single full-cluster outage at `at` lasting `down_for`.
    pub fn cluster_outage(endpoint: &str, at: SimTime, down_for: SimDuration) -> Self {
        Self::none().with(
            at,
            FaultKind::ClusterOutage {
                endpoint: endpoint.to_string(),
                down_for,
            },
        )
    }

    /// Seeded endpoint flapping: the endpoint alternates between up periods
    /// (exponential, mean `mean_up`) and outages (exponential, mean
    /// `mean_down`) from `start` until `horizon`.
    pub fn endpoint_flaps(
        endpoint: &str,
        seed: u64,
        start: SimTime,
        horizon: SimTime,
        mean_up: SimDuration,
        mean_down: SimDuration,
    ) -> Self {
        let mut rng = SimRng::seed_from_u64(seed ^ 0xF1A9_F1A9_F1A9_F1A9);
        let mut plan = FaultPlan::none();
        let mut t = start;
        loop {
            t += SimDuration::from_secs_f64(rng.exponential(mean_up.as_secs_f64()).max(1.0));
            if t >= horizon {
                break;
            }
            let down =
                SimDuration::from_secs_f64(rng.exponential(mean_down.as_secs_f64()).max(1.0));
            plan.push(
                t,
                FaultKind::EndpointFlap {
                    endpoint: endpoint.to_string(),
                    down_for: down,
                },
            );
            t += down;
        }
        plan
    }

    /// A seeded mixed-fault schedule over the given endpoints: `count` faults
    /// drawn uniformly over `[start, horizon)` with kinds weighted toward the
    /// common failure modes (flaps and preemptions over full outages).
    pub fn seeded(
        seed: u64,
        start: SimTime,
        horizon: SimTime,
        endpoints: &[String],
        count: usize,
    ) -> Self {
        let mut rng = SimRng::seed_from_u64(seed ^ 0xC4A0_5C4A_05C4_A05C);
        let mut plan = FaultPlan::none();
        if endpoints.is_empty() || horizon <= start {
            return plan;
        }
        let span = (horizon - start).as_secs_f64();
        for _ in 0..count {
            let at = start + SimDuration::from_secs_f64(rng.uniform(0.0, span));
            let endpoint = endpoints[rng.uniform_usize(0, endpoints.len() - 1)].clone();
            let kind = match rng.weighted_index(&[4.0, 3.0, 2.0, 1.0, 1.0]) {
                0 => FaultKind::EndpointFlap {
                    endpoint,
                    down_for: SimDuration::from_secs_f64(rng.uniform(5.0, 45.0)),
                },
                1 => FaultKind::JobPreemption { endpoint },
                2 => FaultKind::EngineStall {
                    endpoint,
                    duration: SimDuration::from_secs_f64(rng.uniform(10.0, 60.0)),
                },
                3 => FaultKind::NodeCrash {
                    endpoint,
                    offline_for: SimDuration::from_secs_f64(rng.uniform(60.0, 300.0)),
                },
                _ => FaultKind::LatencySpike {
                    extra: SimDuration::from_secs_f64(rng.uniform(0.5, 3.0)),
                    duration: SimDuration::from_secs_f64(rng.uniform(10.0, 60.0)),
                },
            };
            plan.push(at, kind);
        }
        plan
    }
}

/// One kind of shard-scoped fault. Unlike [`FaultKind`], which perturbs the
/// compute substrate *inside* one shard, these strike the federation tier
/// itself: whole-shard death and recovery, front-tier reachability, and the
/// shared fan-in path. They are applied by the scenario driver at the
/// `ShardedGateway` level, not by the per-shard [`FaultInjector`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ShardFaultKind {
    /// The shard process dies: every in-flight request on it is lost, its
    /// keys re-home to surviving peers, and it stays dead until an explicit
    /// [`ShardFaultKind::ShardRestart`].
    ShardCrash {
        /// Index of the shard that crashes.
        shard: usize,
    },
    /// A previously crashed shard comes back empty (cold caches, fresh
    /// queues) and rejoins the ring.
    ShardRestart {
        /// Index of the shard that restarts.
        shard: usize,
    },
    /// The front tier loses reachability to a healthy shard for `duration`:
    /// the shard keeps draining its queue, but no new requests route to it
    /// and responses it produces are only collected once the partition heals.
    FrontTierPartition {
        /// Index of the shard cut off from the front tier.
        shard: usize,
        /// How long the partition lasts.
        duration: SimDuration,
    },
    /// The shared DNS/LB fan-in path degrades: every submission pays `extra`
    /// on top of the configured fan-in latency until the spike ends.
    FanInLatencySpike {
        /// Extra fan-in latency added.
        extra: SimDuration,
        /// Spike duration.
        duration: SimDuration,
    },
}

impl ShardFaultKind {
    /// The shard this fault targets, if any (fan-in spikes hit every shard).
    pub fn shard(&self) -> Option<usize> {
        match self {
            ShardFaultKind::ShardCrash { shard }
            | ShardFaultKind::ShardRestart { shard }
            | ShardFaultKind::FrontTierPartition { shard, .. } => Some(*shard),
            ShardFaultKind::FanInLatencySpike { .. } => None,
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            ShardFaultKind::ShardCrash { .. } => "shard-crash",
            ShardFaultKind::ShardRestart { .. } => "shard-restart",
            ShardFaultKind::FrontTierPartition { .. } => "front-tier-partition",
            ShardFaultKind::FanInLatencySpike { .. } => "fanin-latency-spike",
        }
    }
}

/// A shard-scoped fault scheduled at an absolute virtual time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardFaultEvent {
    /// When the fault strikes.
    pub at: SimTime,
    /// What happens.
    pub kind: ShardFaultKind,
}

/// A deterministic, time-ordered schedule of shard-scoped faults, mirroring
/// [`FaultPlan`] for the federation tier.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardFaultPlan {
    events: Vec<ShardFaultEvent>,
}

impl ShardFaultPlan {
    /// An empty plan (the shard-fault-free baseline).
    pub fn none() -> Self {
        Self::default()
    }

    /// Add a fault; events are kept sorted by time (ties keep push order).
    pub fn push(&mut self, at: SimTime, kind: ShardFaultKind) -> &mut Self {
        self.events.push(ShardFaultEvent { at, kind });
        self.events.sort_by_key(|e| e.at);
        self
    }

    /// Builder-style [`ShardFaultPlan::push`].
    pub fn with(mut self, at: SimTime, kind: ShardFaultKind) -> Self {
        self.push(at, kind);
        self
    }

    /// The scheduled events, in time order.
    pub fn events(&self) -> &[ShardFaultEvent] {
        &self.events
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing (the baseline).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A single permanent shard crash at `at`.
    pub fn kill(shard: usize, at: SimTime) -> Self {
        Self::none().with(at, ShardFaultKind::ShardCrash { shard })
    }

    /// A shard crash at `at` followed by its restart `down_for` later.
    pub fn kill_and_restart(shard: usize, at: SimTime, down_for: SimDuration) -> Self {
        Self::none()
            .with(at, ShardFaultKind::ShardCrash { shard })
            .with(at + down_for, ShardFaultKind::ShardRestart { shard })
    }

    /// A front-tier partition of `shard` at `at` lasting `duration`.
    pub fn partition(shard: usize, at: SimTime, duration: SimDuration) -> Self {
        Self::none().with(at, ShardFaultKind::FrontTierPartition { shard, duration })
    }
}

/// A fault the injector actually applied (for logs and assertions).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppliedFault {
    /// Virtual time of application.
    pub at: SimTime,
    /// Fault label (see [`FaultKind::label`]).
    pub fault: String,
    /// Target endpoint, when the fault has one.
    pub endpoint: Option<String>,
    /// Whether the fault found something to break (e.g. a preemption with no
    /// running instance applies vacuously).
    pub effective: bool,
}

/// Scheduled recovery action paired with an applied fault.
#[derive(Debug, Clone, PartialEq)]
enum RestoreAction {
    NodeOnline { endpoint: String, node: NodeId },
}

/// Replays a [`FaultPlan`] against a [`ComputeService`] as time advances.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    /// Pending events, earliest last (so `pop` is O(1)).
    pending: Vec<FaultEvent>,
    restores: Vec<(SimTime, RestoreAction)>,
    applied: Vec<AppliedFault>,
    planned: usize,
}

impl FaultInjector {
    /// An injector for the given plan.
    pub fn new(plan: FaultPlan) -> Self {
        let mut pending = plan.events;
        pending.reverse();
        FaultInjector {
            planned: pending.len(),
            pending,
            restores: Vec::new(),
            applied: Vec::new(),
        }
    }

    /// Whether the plan scheduled any fault at all (drives "chaos active"
    /// gating in examples and alerts).
    pub fn is_active(&self) -> bool {
        self.planned > 0
    }

    /// Earliest pending fault or recovery instant, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        let fault = self.pending.last().map(|e| e.at);
        let restore = self.restores.iter().map(|(t, _)| *t).min();
        match (fault, restore) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        }
    }

    /// The earliest of the injector's next fault/recovery instant and a
    /// simulated process's next event — the driver-loop merge every chaos
    /// scenario needs (call [`FaultInjector::apply_due`] before advancing the
    /// process to the returned instant).
    pub fn next_event_merged(&self, process: &impl first_desim::SimProcess) -> Option<SimTime> {
        match (process.next_event_time(), self.next_event_time()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        }
    }

    /// Faults applied so far.
    pub fn applied(&self) -> &[AppliedFault] {
        &self.applied
    }

    /// Whether every scheduled fault and recovery has been applied.
    pub fn is_exhausted(&self) -> bool {
        self.pending.is_empty() && self.restores.is_empty()
    }

    /// Apply every fault and recovery due at or before `now`. Returns the
    /// faults applied in this call.
    pub fn apply_due(&mut self, service: &mut ComputeService, now: SimTime) -> Vec<AppliedFault> {
        let restore_due = self.restores.iter().any(|(t, _)| *t <= now);
        let fault_due = self.pending.last().map(|e| e.at <= now).unwrap_or(false);
        if !restore_due && !fault_due {
            return Vec::new();
        }
        // Bring the deployment up to `now` before perturbing it: fault
        // application fast-forwards endpoint internals, and anything still in
        // transit with an earlier timestamp must land first.
        use first_desim::SimProcess as _;
        service.advance(now);
        // Recoveries first so that a restore and a re-crash at the same
        // instant leave the node down (the crash wins, matching real races).
        let mut i = 0;
        while i < self.restores.len() {
            if self.restores[i].0 <= now {
                let (_, action) = self.restores.remove(i);
                match action {
                    RestoreAction::NodeOnline { endpoint, node } => {
                        if let Some(ep) = service.endpoint_mut(&endpoint) {
                            ep.restore_node(node);
                        }
                    }
                }
            } else {
                i += 1;
            }
        }

        let mut out = Vec::new();
        while self.pending.last().map(|e| e.at <= now).unwrap_or(false) {
            let event = self.pending.pop().expect("pending checked non-empty");
            let effective = self.apply_one(service, &event, now);
            let record = AppliedFault {
                at: event.at,
                fault: event.kind.label().to_string(),
                endpoint: event.kind.endpoint().map(str::to_string),
                effective,
            };
            self.applied.push(record.clone());
            out.push(record);
        }
        out
    }

    fn apply_one(
        &mut self,
        service: &mut ComputeService,
        event: &FaultEvent,
        now: SimTime,
    ) -> bool {
        match &event.kind {
            FaultKind::NodeCrash {
                endpoint,
                offline_for,
            } => {
                let Some(ep) = service.endpoint_mut(endpoint) else {
                    return false;
                };
                match ep.inject_node_crash(now) {
                    Some(node) => {
                        self.restores.push((
                            now + *offline_for,
                            RestoreAction::NodeOnline {
                                endpoint: endpoint.clone(),
                                node,
                            },
                        ));
                        true
                    }
                    None => false,
                }
            }
            FaultKind::JobPreemption { endpoint } => service
                .endpoint_mut(endpoint)
                .map(|ep| ep.preempt_instance(now))
                .unwrap_or(false),
            FaultKind::EndpointFlap { endpoint, down_for } => {
                match service.endpoint_mut(endpoint) {
                    Some(ep) => {
                        ep.set_offline_until(now + *down_for);
                        true
                    }
                    None => false,
                }
            }
            FaultKind::ClusterOutage { endpoint, down_for } => {
                match service.endpoint_mut(endpoint) {
                    Some(ep) => {
                        ep.set_offline_until(now + *down_for);
                        ep.preempt_all_instances(now);
                        true
                    }
                    None => false,
                }
            }
            FaultKind::LatencySpike { extra, duration } => {
                service.inject_latency_spike(*extra, now + *duration);
                true
            }
            FaultKind::EngineStall { endpoint, duration } => service
                .endpoint_mut(endpoint)
                .map(|ep| ep.stall_engines(now + *duration) > 0)
                .unwrap_or(false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_stay_time_ordered() {
        let plan = FaultPlan::none()
            .with(
                SimTime::from_secs(100),
                FaultKind::JobPreemption {
                    endpoint: "b".into(),
                },
            )
            .with(
                SimTime::from_secs(10),
                FaultKind::JobPreemption {
                    endpoint: "a".into(),
                },
            );
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.events()[0].at, SimTime::from_secs(10));
        assert_eq!(plan.events()[1].at, SimTime::from_secs(100));
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn seeded_plans_are_reproducible_and_seed_sensitive() {
        let endpoints = vec!["sophia-endpoint".to_string(), "polaris-endpoint".into()];
        let a = FaultPlan::seeded(7, SimTime::ZERO, SimTime::from_secs(600), &endpoints, 12);
        let b = FaultPlan::seeded(7, SimTime::ZERO, SimTime::from_secs(600), &endpoints, 12);
        let c = FaultPlan::seeded(8, SimTime::ZERO, SimTime::from_secs(600), &endpoints, 12);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 12);
        assert!(a.events().windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn flap_plans_cover_the_window() {
        let plan = FaultPlan::endpoint_flaps(
            "sophia-endpoint",
            42,
            SimTime::ZERO,
            SimTime::from_secs(600),
            SimDuration::from_secs(60),
            SimDuration::from_secs(20),
        );
        assert!(!plan.is_empty());
        assert!(plan.events().iter().all(|e| e.at < SimTime::from_secs(600)));
        assert!(plan
            .events()
            .iter()
            .all(|e| matches!(e.kind, FaultKind::EndpointFlap { .. })));
    }

    #[test]
    fn injector_orders_events_and_reports_exhaustion() {
        let plan = FaultPlan::none()
            .with(
                SimTime::from_secs(5),
                FaultKind::LatencySpike {
                    extra: SimDuration::from_secs(1),
                    duration: SimDuration::from_secs(10),
                },
            )
            .with(
                SimTime::from_secs(2),
                FaultKind::LatencySpike {
                    extra: SimDuration::from_secs(1),
                    duration: SimDuration::from_secs(10),
                },
            );
        let mut injector = FaultInjector::new(plan);
        assert!(injector.is_active());
        assert_eq!(injector.next_event_time(), Some(SimTime::from_secs(2)));
        let mut service = ComputeService::new(first_fabric::FabricLatencyModel::default());
        let applied = injector.apply_due(&mut service, SimTime::from_secs(3));
        assert_eq!(applied.len(), 1);
        assert_eq!(applied[0].fault, "latency-spike");
        assert_eq!(injector.next_event_time(), Some(SimTime::from_secs(5)));
        injector.apply_due(&mut service, SimTime::from_secs(10));
        assert!(injector.is_exhausted());
        assert_eq!(injector.applied().len(), 2);
        assert!(!FaultInjector::new(FaultPlan::none()).is_active());
    }

    #[test]
    fn shard_fault_plans_stay_time_ordered_and_round_trip() {
        let plan = ShardFaultPlan::none()
            .with(
                SimTime::from_secs(40),
                ShardFaultKind::ShardRestart { shard: 1 },
            )
            .with(
                SimTime::from_secs(8),
                ShardFaultKind::ShardCrash { shard: 1 },
            )
            .with(
                SimTime::from_secs(20),
                ShardFaultKind::FanInLatencySpike {
                    extra: SimDuration::from_millis(250),
                    duration: SimDuration::from_secs(15),
                },
            );
        assert_eq!(plan.len(), 3);
        assert!(plan.events().windows(2).all(|w| w[0].at <= w[1].at));
        assert_eq!(plan.events()[0].kind.label(), "shard-crash");
        assert_eq!(plan.events()[0].kind.shard(), Some(1));
        assert_eq!(plan.events()[1].kind.shard(), None);
        let json = serde_json::to_string(&plan).unwrap();
        let back: ShardFaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
        assert!(ShardFaultPlan::none().is_empty());
    }

    #[test]
    fn kill_and_restart_schedules_the_matching_pair() {
        let plan =
            ShardFaultPlan::kill_and_restart(2, SimTime::from_secs(10), SimDuration::from_secs(30));
        assert_eq!(plan.len(), 2);
        assert_eq!(
            plan.events()[0].kind,
            ShardFaultKind::ShardCrash { shard: 2 }
        );
        assert_eq!(plan.events()[0].at, SimTime::from_secs(10));
        assert_eq!(
            plan.events()[1].kind,
            ShardFaultKind::ShardRestart { shard: 2 }
        );
        assert_eq!(plan.events()[1].at, SimTime::from_secs(40));
        assert_eq!(
            ShardFaultPlan::partition(0, SimTime::from_secs(5), SimDuration::from_secs(9)).events()
                [0]
            .kind
            .label(),
            "front-tier-partition"
        );
    }

    #[test]
    fn faults_against_unknown_endpoints_are_ineffective() {
        let plan = FaultPlan::cluster_outage(
            "nowhere-endpoint",
            SimTime::from_secs(1),
            SimDuration::from_secs(60),
        );
        let mut injector = FaultInjector::new(plan);
        let mut service = ComputeService::new(first_fabric::FabricLatencyModel::default());
        let applied = injector.apply_due(&mut service, SimTime::from_secs(2));
        assert_eq!(applied.len(), 1);
        assert!(!applied[0].effective);
    }
}
