//! # first-chaos — deterministic fault injection and resilience primitives
//!
//! FIRST's value proposition is keeping an OpenAI-compatible endpoint alive
//! on substrates that are *expected* to misbehave: batch jobs get preempted,
//! Globus-Compute endpoints flap, nodes crash mid-decode, WAN paths spike.
//! This crate provides both sides of that story for the simulation:
//!
//! * [`fault`] — seeded, schedule-driven fault plans ([`FaultPlan`]) and the
//!   [`FaultInjector`] that replays them against a deployment: node crashes
//!   and PBS preemptions (`first-hpc`), endpoint flaps, cluster outages and
//!   latency spikes (`first-fabric`), engine stalls (`first-serving`). The
//!   same seed always produces the same failure scenario. Shard-scoped plans
//!   ([`ShardFaultPlan`]) schedule federation-tier faults — whole-shard
//!   crashes and restarts, front-tier partitions, fan-in latency spikes —
//!   that the sharded scenario driver applies above the per-shard injectors.
//! * [`health`] — the resilience machinery the gateway consumes: per-endpoint
//!   [`HealthState`]s, an exponential-backoff [`RetryPolicy`], hedged-request
//!   support, a [`CircuitBreaker`], and the [`ResilienceConfig`] bundle.
//!
//! `first-core` wires these through the stack: the federation router routes
//! around unavailable endpoints, the gateway retries and hedges idempotent
//! calls, and `first-telemetry` surfaces failover/retry/breaker-trip counters.

#![warn(missing_docs)]

pub mod fault;
pub mod health;

pub use fault::{
    AppliedFault, FaultEvent, FaultInjector, FaultKind, FaultPlan, ShardFaultEvent, ShardFaultKind,
    ShardFaultPlan,
};
pub use health::{
    CircuitBreaker, CircuitBreakerConfig, HealthState, HealthTracker, ResilienceConfig, RetryPolicy,
};

/// Commonly used items, re-exported for glob import.
pub mod prelude {
    pub use crate::fault::{FaultInjector, FaultKind, FaultPlan, ShardFaultKind, ShardFaultPlan};
    pub use crate::health::{HealthState, HealthTracker, ResilienceConfig, RetryPolicy};
}
