//! Endpoint health tracking and resilience policies.
//!
//! The paper's production concern — keeping an always-on API alive on top of
//! batch-scheduled, preemptible HPC substrates — needs more than the §4.5
//! routing priorities: the gateway must know *which* endpoints are currently
//! trustworthy, back off before hammering a flapping site, stop sending work
//! to a dead one, and hedge requests that appear stuck. This module provides
//! those primitives: per-endpoint [`HealthState`]s driven by observed
//! successes/failures, an exponential-backoff [`RetryPolicy`], a
//! [`CircuitBreaker`], and the [`ResilienceConfig`] bundle the gateway
//! consumes.

use first_desim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Coarse health of one federated endpoint, as seen from the gateway.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HealthState {
    /// Recent requests succeeded; route freely.
    Healthy,
    /// Recent failures (or a half-open breaker probing recovery): route only
    /// when no healthy endpoint is available.
    Degraded,
    /// Circuit breaker open: do not route here.
    Unavailable,
}

impl HealthState {
    /// Numeric severity used for the `first_endpoint_health` gauge
    /// (0 = healthy, 1 = degraded, 2 = unavailable).
    pub fn severity(&self) -> f64 {
        match self {
            HealthState::Healthy => 0.0,
            HealthState::Degraded => 1.0,
            HealthState::Unavailable => 2.0,
        }
    }

    /// Short label for dashboards and `/jobs`.
    pub fn label(&self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Unavailable => "unavailable",
        }
    }
}

/// Exponential-backoff retry policy for idempotent gateway requests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum retry attempts after the initial try (0 disables retries).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base_backoff: SimDuration,
    /// Multiplier applied per subsequent retry.
    pub multiplier: f64,
    /// Upper bound on any single backoff.
    pub max_backoff: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: SimDuration::from_millis(500),
            multiplier: 2.0,
            max_backoff: SimDuration::from_secs(30),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn disabled() -> Self {
        RetryPolicy {
            max_retries: 0,
            ..Self::default()
        }
    }

    /// Backoff before retry number `attempt` (0-based): `base * m^attempt`,
    /// capped at `max_backoff`. Deterministic — no jitter, so simulations
    /// reproduce bit-for-bit from the seed.
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        let factor = self.multiplier.max(1.0).powi(attempt.min(30) as i32);
        let backed = self.base_backoff.mul_f64(factor);
        if backed.as_micros() > self.max_backoff.as_micros() {
            self.max_backoff
        } else {
            backed
        }
    }
}

/// Circuit-breaker tuning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CircuitBreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long the breaker stays open before allowing a half-open probe.
    pub open_for: SimDuration,
    /// How long past the breaker's open window an endpoint is still reported
    /// [`HealthState::Degraded`]: after its last failure an endpoint spends
    /// up to `open_for` unavailable, then stays degraded until
    /// `open_for + degraded_window` has elapsed since that failure, after
    /// which it optimistically returns to full rotation.
    pub degraded_window: SimDuration,
}

impl Default for CircuitBreakerConfig {
    fn default() -> Self {
        CircuitBreakerConfig {
            failure_threshold: 3,
            open_for: SimDuration::from_secs(60),
            degraded_window: SimDuration::from_secs(120),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    Closed,
    /// Open until the embedded instant; afterwards half-open (one probe).
    Open(SimTime),
}

/// A per-endpoint circuit breaker (closed → open → half-open → closed).
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: CircuitBreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    trips: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: CircuitBreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            trips: 0,
        }
    }

    /// Whether requests may be sent through the breaker at `now` (closed, or
    /// open long enough that a half-open probe is due).
    pub fn allows(&self, now: SimTime) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open(until) => now >= until,
        }
    }

    /// Whether the breaker is open (not yet probing) at `now`.
    pub fn is_open(&self, now: SimTime) -> bool {
        matches!(self.state, BreakerState::Open(until) if now < until)
    }

    /// Whether the breaker is half-open (probing recovery) at `now`.
    pub fn is_half_open(&self, now: SimTime) -> bool {
        matches!(self.state, BreakerState::Open(until) if now >= until)
    }

    /// Times the breaker has transitioned to open.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Record a success at `now`. Closes the breaker only from the closed or
    /// half-open state: a stale success relayed for work that was already in
    /// flight before an outage must not reset a fully-open breaker while the
    /// endpoint is still unreachable.
    pub fn on_success(&mut self, now: SimTime) {
        match self.state {
            BreakerState::Open(until) if now < until => {}
            _ => {
                self.state = BreakerState::Closed;
                self.consecutive_failures = 0;
            }
        }
    }

    /// Record a failure. Returns `true` when this failure (re-)tripped the
    /// breaker open — a failed half-open probe reopens immediately.
    pub fn on_failure(&mut self, now: SimTime) -> bool {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        match self.state {
            BreakerState::Open(until) if now >= until => {
                // Half-open probe failed: reopen for another window.
                self.state = BreakerState::Open(now + self.config.open_for);
                self.trips += 1;
                true
            }
            BreakerState::Open(_) => false,
            BreakerState::Closed => {
                if self.consecutive_failures >= self.config.failure_threshold {
                    self.state = BreakerState::Open(now + self.config.open_for);
                    self.trips += 1;
                    true
                } else {
                    false
                }
            }
        }
    }
}

/// Rolling health record for one endpoint.
#[derive(Debug, Clone)]
struct EndpointHealth {
    breaker: CircuitBreaker,
    successes: u64,
    failures: u64,
    last_failure_at: Option<SimTime>,
}

impl EndpointHealth {
    fn new(config: CircuitBreakerConfig) -> Self {
        EndpointHealth {
            breaker: CircuitBreaker::new(config),
            successes: 0,
            failures: 0,
            last_failure_at: None,
        }
    }
}

/// Per-endpoint health states driven by observed request outcomes.
///
/// The tracker is consulted by the failover-aware federation router (route
/// around unavailable endpoints), by the gateway's retry logic (pick a
/// different site), and by the telemetry layer (the `first_endpoint_health`
/// gauge and the sustained-unavailability alert).
#[derive(Debug, Clone)]
pub struct HealthTracker {
    config: CircuitBreakerConfig,
    endpoints: BTreeMap<String, EndpointHealth>,
}

impl Default for HealthTracker {
    fn default() -> Self {
        Self::new(CircuitBreakerConfig::default())
    }
}

impl HealthTracker {
    /// A tracker applying the given breaker tuning to every endpoint.
    pub fn new(config: CircuitBreakerConfig) -> Self {
        HealthTracker {
            config,
            endpoints: BTreeMap::new(),
        }
    }

    fn entry(&mut self, endpoint: &str) -> &mut EndpointHealth {
        let config = self.config.clone();
        self.endpoints
            .entry(endpoint.to_string())
            .or_insert_with(|| EndpointHealth::new(config))
    }

    /// Record a successful request served by `endpoint`.
    pub fn on_success(&mut self, endpoint: &str, now: SimTime) {
        let e = self.entry(endpoint);
        e.successes += 1;
        e.breaker.on_success(now);
    }

    /// Record a failed request attributed to `endpoint`. Returns `true` when
    /// the failure tripped the endpoint's circuit breaker open.
    pub fn on_failure(&mut self, endpoint: &str, now: SimTime) -> bool {
        let e = self.entry(endpoint);
        e.failures += 1;
        e.last_failure_at = Some(now);
        e.breaker.on_failure(now)
    }

    /// The endpoint's health state at `now`. Unknown endpoints are healthy.
    pub fn state(&self, endpoint: &str, now: SimTime) -> HealthState {
        let Some(e) = self.endpoints.get(endpoint) else {
            return HealthState::Healthy;
        };
        if e.breaker.is_open(now) {
            return HealthState::Unavailable;
        }
        // Degraded while the breaker is half-open or a failure is recent;
        // long after the last failure the endpoint optimistically returns to
        // full rotation (a healthy-preferred router would otherwise never
        // probe it again). A failure during the aged-out phase reopens the
        // breaker immediately, so the optimism is bounded.
        let recently_failed = e.last_failure_at.map(|at| {
            now.saturating_since(at) < self.config.open_for + self.config.degraded_window
        });
        match recently_failed {
            Some(true) => HealthState::Degraded,
            _ => HealthState::Healthy,
        }
    }

    /// Whether the router may send work to `endpoint` at `now` (anything but
    /// an open breaker; half-open endpoints accept probe traffic).
    pub fn allows(&self, endpoint: &str, now: SimTime) -> bool {
        self.state(endpoint, now) != HealthState::Unavailable
    }

    /// Total breaker trips across all endpoints.
    pub fn trips(&self) -> u64 {
        self.endpoints.values().map(|e| e.breaker.trips()).sum()
    }

    /// `(successes, failures)` recorded for an endpoint.
    pub fn counts(&self, endpoint: &str) -> (u64, u64) {
        self.endpoints
            .get(endpoint)
            .map(|e| (e.successes, e.failures))
            .unwrap_or((0, 0))
    }

    /// Health state of every tracked endpoint, in name order.
    pub fn snapshot(&self, now: SimTime) -> Vec<(String, HealthState)> {
        self.endpoints
            .keys()
            .map(|name| (name.clone(), self.state(name, now)))
            .collect()
    }
}

/// The resilience bundle the gateway consumes: failover-aware routing,
/// retries, hedging and circuit breaking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ResilienceConfig {
    /// Master switch. When `false` the gateway behaves exactly like the
    /// paper's proof of concept: failures are returned to the client as-is.
    pub enabled: bool,
    /// Retry policy for idempotent requests that failed at an endpoint.
    pub retry: RetryPolicy,
    /// Circuit-breaker tuning applied per endpoint.
    pub breaker: CircuitBreakerConfig,
    /// Hedge a request still unanswered after this long by duplicating it to
    /// another endpoint (first response wins). `None` disables hedging.
    pub hedge_after: Option<SimDuration>,
}

impl ResilienceConfig {
    /// The hardened production profile: retries, failover, breaker and
    /// hedging all on.
    pub fn production() -> Self {
        ResilienceConfig {
            enabled: true,
            retry: RetryPolicy::default(),
            breaker: CircuitBreakerConfig::default(),
            hedge_after: Some(SimDuration::from_secs(60)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(0), SimDuration::from_millis(500));
        assert_eq!(p.backoff(1), SimDuration::from_secs(1));
        assert_eq!(p.backoff(2), SimDuration::from_secs(2));
        // Far past the cap.
        assert_eq!(p.backoff(20), SimDuration::from_secs(30));
        assert_eq!(RetryPolicy::disabled().max_retries, 0);
    }

    #[test]
    fn breaker_trips_after_threshold_and_recovers_via_half_open() {
        let mut b = CircuitBreaker::new(CircuitBreakerConfig::default());
        let t0 = SimTime::ZERO;
        assert!(!b.on_failure(t0));
        assert!(!b.on_failure(t0));
        assert!(b.allows(t0));
        // Third consecutive failure trips it.
        assert!(b.on_failure(t0));
        assert_eq!(b.trips(), 1);
        assert!(!b.allows(SimTime::from_secs(30)));
        assert!(b.is_open(SimTime::from_secs(30)));
        // A stale success arriving while the breaker is still open (work that
        // was in flight before the outage) must not reset it.
        b.on_success(SimTime::from_secs(30));
        assert!(!b.allows(SimTime::from_secs(31)));
        // After open_for, a half-open probe is allowed.
        assert!(b.allows(SimTime::from_secs(61)));
        assert!(b.is_half_open(SimTime::from_secs(61)));
        // Successful probe closes the breaker.
        b.on_success(SimTime::from_secs(61));
        assert!(b.allows(SimTime::from_secs(62)));
        assert!(!b.is_open(SimTime::from_secs(62)));
    }

    #[test]
    fn failed_half_open_probe_reopens_the_breaker() {
        let mut b = CircuitBreaker::new(CircuitBreakerConfig::default());
        for _ in 0..3 {
            b.on_failure(SimTime::ZERO);
        }
        // Probe at t=61 fails: reopen until t=121.
        assert!(b.on_failure(SimTime::from_secs(61)));
        assert_eq!(b.trips(), 2);
        assert!(!b.allows(SimTime::from_secs(100)));
        assert!(b.allows(SimTime::from_secs(121)));
    }

    #[test]
    fn tracker_reports_states_and_allows() {
        let mut h = HealthTracker::default();
        let t = SimTime::from_secs(10);
        assert_eq!(h.state("sophia-endpoint", t), HealthState::Healthy);
        assert!(h.allows("sophia-endpoint", t));

        // One failure: degraded but still routable.
        assert!(!h.on_failure("sophia-endpoint", t));
        assert_eq!(h.state("sophia-endpoint", t), HealthState::Degraded);
        assert!(h.allows("sophia-endpoint", t));

        // Two more: breaker opens, endpoint unavailable.
        h.on_failure("sophia-endpoint", t);
        assert!(h.on_failure("sophia-endpoint", t));
        assert_eq!(h.state("sophia-endpoint", t), HealthState::Unavailable);
        assert!(!h.allows("sophia-endpoint", t));
        assert_eq!(h.trips(), 1);

        // Recovery: half-open probe, then success, then the degraded window
        // elapses and the endpoint is healthy again.
        let probe = t + SimDuration::from_secs(61);
        assert_eq!(h.state("sophia-endpoint", probe), HealthState::Degraded);
        h.on_success("sophia-endpoint", probe);
        let later = probe + SimDuration::from_secs(300);
        assert_eq!(h.state("sophia-endpoint", later), HealthState::Healthy);
        assert_eq!(h.counts("sophia-endpoint"), (1, 3));
    }

    #[test]
    fn snapshot_lists_endpoints_in_name_order() {
        let mut h = HealthTracker::default();
        h.on_success("polaris-endpoint", SimTime::ZERO);
        h.on_success("aurora-endpoint", SimTime::ZERO);
        let snap = h.snapshot(SimTime::ZERO);
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].0, "aurora-endpoint");
        assert_eq!(snap[1].0, "polaris-endpoint");
        assert!(snap.iter().all(|(_, s)| *s == HealthState::Healthy));
    }

    #[test]
    fn severity_and_labels_are_monotone() {
        assert_eq!(HealthState::Healthy.severity(), 0.0);
        assert_eq!(HealthState::Degraded.severity(), 1.0);
        assert_eq!(HealthState::Unavailable.severity(), 2.0);
        assert_eq!(HealthState::Unavailable.label(), "unavailable");
    }

    #[test]
    fn production_profile_enables_everything() {
        let c = ResilienceConfig::production();
        assert!(c.enabled);
        assert!(c.retry.max_retries > 0);
        assert!(c.hedge_after.is_some());
        assert!(!ResilienceConfig::default().enabled);
    }
}
