//! Exponential-bucket histograms.
//!
//! The desim crate keeps an exact-sample reservoir histogram for benchmark
//! reports; the monitoring path instead wants a fixed-memory sketch that can
//! run for the whole ten-month deployment replay without growing. This is the
//! classic Prometheus shape: a fixed set of increasing bucket upper bounds,
//! a count per bucket, plus total count and sum. Quantiles are estimated by
//! linear interpolation inside the bucket that crosses the target rank.

use serde::{Deserialize, Serialize};

/// A histogram with fixed, strictly increasing bucket upper bounds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BucketHistogram {
    bounds: Vec<f64>,
    /// `counts[i]` observations fell in `(bounds[i-1], bounds[i]]`;
    /// `counts[len]` is the overflow (+Inf) bucket.
    counts: Vec<u64>,
    total: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl BucketHistogram {
    /// Build a histogram from explicit bucket upper bounds. Bounds must be
    /// finite and strictly increasing; invalid bounds panic because they are
    /// a configuration error, not a data error.
    pub fn with_bounds(bounds: &[f64]) -> Self {
        assert!(
            !bounds.is_empty(),
            "histogram needs at least one bucket bound"
        );
        for pair in bounds.windows(2) {
            assert!(
                pair[0] < pair[1],
                "bucket bounds must be strictly increasing"
            );
        }
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "bounds must be finite"
        );
        BucketHistogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            total: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Exponential buckets: `start`, `start*factor`, … (`count` bounds).
    pub fn exponential(start: f64, factor: f64, count: usize) -> Self {
        assert!(start > 0.0 && factor > 1.0 && count > 0);
        let mut bounds = Vec::with_capacity(count);
        let mut b = start;
        for _ in 0..count {
            bounds.push(b);
            b *= factor;
        }
        Self::with_bounds(&bounds)
    }

    /// Default latency buckets for request latencies in seconds: 10 ms up to
    /// ~45 minutes, covering cache hits through 405B cold starts.
    pub fn latency_seconds() -> Self {
        Self::exponential(0.01, 2.0, 18)
    }

    /// Default buckets for token counts per request: 1 up to ~65k tokens.
    pub fn token_counts() -> Self {
        Self::exponential(1.0, 2.0, 17)
    }

    /// Record one observation.
    pub fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += value;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Smallest observation, or 0 when empty.
    pub fn min(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation, or 0 when empty.
    pub fn max(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Cumulative count up to and including bucket `i` (Prometheus `le`
    /// semantics). `i == bounds.len()` gives the +Inf bucket (== total).
    pub fn cumulative(&self, i: usize) -> u64 {
        self.counts.iter().take(i + 1).sum()
    }

    /// Estimate the `q`-quantile (0 ≤ q ≤ 1) by linear interpolation within
    /// the bucket that crosses the target rank, clamped to the observed
    /// min/max so tiny samples do not report impossible values.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * self.total as f64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = seen + c;
            if (next as f64) >= rank {
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let upper = if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    // Overflow bucket: fall back to the observed maximum.
                    self.max
                };
                let within = if c == 0 {
                    0.0
                } else {
                    (rank - seen as f64) / c as f64
                };
                let est = lower + (upper - lower) * within.clamp(0.0, 1.0);
                return est.clamp(self.min, self.max);
            }
            seen = next;
        }
        self.max
    }

    /// Median estimate.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Merge another histogram with identical bounds into this one.
    /// Returns `false` (leaving `self` unchanged) when the bounds differ.
    pub fn merge(&mut self, other: &BucketHistogram) -> bool {
        if self.bounds != other.bounds {
            return false;
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        if other.total > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        true
    }

    /// Per-bucket `(upper_bound, cumulative_count)` pairs, ending with the
    /// +Inf bucket — the rows the Prometheus exposition format needs.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::with_capacity(self.bounds.len() + 1);
        let mut seen = 0;
        for (i, &b) in self.bounds.iter().enumerate() {
            seen += self.counts[i];
            out.push((b, seen));
        }
        out.push((f64::INFINITY, self.total));
        out
    }
}

impl Default for BucketHistogram {
    fn default() -> Self {
        Self::latency_seconds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_land_in_the_right_buckets() {
        let mut h = BucketHistogram::with_bounds(&[1.0, 2.0, 4.0]);
        for v in [0.5, 1.0, 1.5, 3.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.cumulative(0), 2); // ≤1.0 : 0.5, 1.0
        assert_eq!(h.cumulative(1), 3); // ≤2.0 : +1.5
        assert_eq!(h.cumulative(2), 4); // ≤4.0 : +3.0
        assert_eq!(h.cumulative(3), 5); // +Inf : +100.0
        assert!((h.sum() - 106.0).abs() < 1e-9);
        assert_eq!(h.min(), 0.5);
        assert_eq!(h.max(), 100.0);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let mut h = BucketHistogram::latency_seconds();
        for i in 1..=1000 {
            h.observe(i as f64 / 100.0); // 0.01 .. 10.0 s
        }
        let q10 = h.quantile(0.10);
        let q50 = h.median();
        let q95 = h.p95();
        let q99 = h.p99();
        assert!(q10 <= q50 && q50 <= q95 && q95 <= q99);
        assert!(q10 >= h.min() && q99 <= h.max());
        // Median of a uniform 0.01..10 sample should land in the right decade.
        assert!(q50 > 2.0 && q50 < 8.0, "median {q50}");
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = BucketHistogram::latency_seconds();
        assert_eq!(h.count(), 0);
        assert_eq!(h.median(), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn merge_requires_identical_bounds() {
        let mut a = BucketHistogram::with_bounds(&[1.0, 2.0]);
        let mut b = BucketHistogram::with_bounds(&[1.0, 2.0]);
        let c = BucketHistogram::with_bounds(&[1.0, 3.0]);
        a.observe(0.5);
        b.observe(1.5);
        b.observe(10.0);
        assert!(a.merge(&b));
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 10.0);
        assert!(!a.merge(&c));
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn exponential_constructor_builds_increasing_bounds() {
        let h = BucketHistogram::exponential(0.5, 3.0, 4);
        assert_eq!(h.bounds(), &[0.5, 1.5, 4.5, 13.5]);
        let rows = h.cumulative_buckets();
        assert_eq!(rows.len(), 5);
        assert!(rows.last().unwrap().0.is_infinite());
    }

    #[test]
    #[should_panic]
    fn non_monotone_bounds_panic() {
        BucketHistogram::with_bounds(&[1.0, 1.0]);
    }
}
