//! The operations dashboard model (§3.1.1).
//!
//! The paper's gateway exposes "performance and summary metrics … through a
//! web dashboard": which models are hot, how busy each federated cluster is,
//! what the queues look like, and per-model throughput/latency summaries.
//! This module is the renderable data model of that dashboard; `first-core`
//! fills it from a live deployment and the examples print it.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One model row on the dashboard.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ModelRow {
    /// Model name.
    pub model: String,
    /// Aggregate `/jobs` state ("running", "starting", "queued", "stopped").
    pub state: String,
    /// Hot instances across all endpoints.
    pub running_instances: u32,
    /// Requests completed so far.
    pub requests: u64,
    /// Output tokens generated so far.
    pub output_tokens: u64,
    /// Median end-to-end latency in seconds.
    pub median_latency_s: f64,
    /// 95th-percentile end-to-end latency in seconds.
    pub p95_latency_s: f64,
}

/// One federated cluster row on the dashboard.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ClusterRow {
    /// Cluster name (e.g. "sophia", "polaris").
    pub cluster: String,
    /// Total compute nodes.
    pub total_nodes: u32,
    /// Nodes currently allocated to inference jobs.
    pub busy_nodes: u32,
    /// Nodes idle and available.
    pub idle_nodes: u32,
    /// Jobs waiting in the batch queue.
    pub queued_jobs: u32,
}

impl ClusterRow {
    /// Fraction of nodes currently busy (0 when the cluster has no nodes).
    pub fn utilisation(&self) -> f64 {
        if self.total_nodes == 0 {
            0.0
        } else {
            self.busy_nodes as f64 / self.total_nodes as f64
        }
    }
}

/// One queue-status row (per endpoint).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QueueRow {
    /// Endpoint name.
    pub endpoint: String,
    /// Tasks queued at the compute service waiting for dispatch.
    pub queued_tasks: u64,
    /// Tasks currently executing.
    pub running_tasks: u64,
    /// Tasks completed so far.
    pub completed_tasks: u64,
    /// Endpoint health ("healthy", "degraded", "unavailable"; empty when the
    /// deployment does not track health).
    pub health: String,
}

/// One tenant (auth user) row on the dashboard. Scenario runs enroll one
/// user per tenant class, so this is the per-tenant partition of the
/// request log.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TenantRow {
    /// Tenant / user name.
    pub tenant: String,
    /// Requests logged for this tenant.
    pub requests: u64,
    /// Failed requests.
    pub failures: u64,
    /// Output tokens delivered.
    pub output_tokens: u64,
    /// Prompt + completion tokens processed.
    pub total_tokens: u64,
}

/// One phase-latency row on the dashboard: latency quantiles for a single
/// request-lifecycle phase, aggregated over the flight recorder's sampled
/// traces (see `trace::PhaseBreakdown`). Rows appear in lifecycle order,
/// not alphabetical order, so the table reads top-to-bottom as a request
/// flows through the gateway.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseLatencyRow {
    /// Phase name (snake_case, e.g. "queue_wait", "prefill", "decode").
    pub phase: String,
    /// Sampled spans observed for this phase.
    pub count: u64,
    /// Median phase latency in seconds.
    pub p50_s: f64,
    /// 95th-percentile phase latency in seconds.
    pub p95_s: f64,
    /// Total time spent in this phase across all sampled requests.
    pub total_s: f64,
}

/// One gateway-shard row on the dashboard: the front-tier view of a sharded
/// federation, one row per peer gateway shard with its routed traffic and
/// cross-shard spill flow.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardRow {
    /// Shard index.
    pub shard: u64,
    /// Requests received by this shard.
    pub requests: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests failed or rejected.
    pub failed: u64,
    /// Requests received because another shard spilled them here.
    pub spilled_in: u64,
    /// Requests diverted away from this shard under the spillover policy.
    pub spilled_out: u64,
    /// Live unanswered-request depth (pending + in flight).
    pub load_depth: u64,
}

/// The replay-mode banner cell: shown when the dashboard observes a run
/// that is replaying a recorded cassette rather than live traffic.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReplayCell {
    /// Name of the cassette (scenario) being replayed.
    pub cassette: String,
    /// Seed the recording was made under (the replay reuses it).
    pub seed: u64,
    /// Recorded requests in the cassette.
    pub entries: u64,
    /// Fault events embedded in the cassette's timeline.
    pub fault_events: u64,
}

/// A complete dashboard snapshot.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DashboardSnapshot {
    /// Virtual time of the snapshot, in seconds since the deployment started.
    pub at_seconds: f64,
    /// Per-model rows, sorted by model name.
    pub models: Vec<ModelRow>,
    /// Per-cluster rows, sorted by cluster name.
    pub clusters: Vec<ClusterRow>,
    /// Per-endpoint queue rows, sorted by endpoint name.
    pub queues: Vec<QueueRow>,
    /// Per-tenant rows, sorted by tenant name (empty when no requests have
    /// been logged yet).
    #[serde(default)]
    pub tenants: Vec<TenantRow>,
    /// Per-phase latency rows in request-lifecycle order (empty unless the
    /// gateway's flight recorder is enabled and has sampled traces).
    #[serde(default)]
    pub phases: Vec<PhaseLatencyRow>,
    /// Per-shard rows for sharded federations, sorted by shard index (empty
    /// for single-gateway deployments; `default` keeps old snapshots
    /// parseable).
    #[serde(default)]
    pub shards: Vec<ShardRow>,
    /// Replay-mode banner: present when the observed run is a cassette
    /// replay (absent for live traffic; `default` keeps old snapshots
    /// parseable).
    #[serde(default)]
    pub replay: Option<ReplayCell>,
    /// Total requests received by the gateway.
    pub total_requests: u64,
    /// Total requests completed successfully.
    pub total_completed: u64,
    /// Total requests failed or rejected.
    pub total_failed: u64,
    /// Total output tokens generated.
    pub total_output_tokens: u64,
    /// Distinct users seen so far.
    pub distinct_users: u64,
    /// Retries of failed idempotent requests (resilience layer).
    pub total_retries: u64,
    /// Requests failed over to a different endpoint.
    pub total_failovers: u64,
    /// Circuit-breaker trips across all endpoints.
    pub breaker_trips: u64,
    /// Hedged (duplicated) requests issued for slow in-flight calls.
    pub total_hedges: u64,
    /// Harness health: wall-clock seconds the simulation has been running.
    pub harness_wall_s: f64,
    /// Harness health: simulation events processed per wall-clock second.
    pub harness_events_per_sec: f64,
}

impl DashboardSnapshot {
    /// Sort every section so rendering and comparisons are deterministic.
    /// (`phases` is left alone: it is already deterministic in lifecycle
    /// order, which is the order the table should read in.)
    pub fn normalise(&mut self) {
        self.models.sort_by(|a, b| a.model.cmp(&b.model));
        self.clusters.sort_by(|a, b| a.cluster.cmp(&b.cluster));
        self.queues.sort_by(|a, b| a.endpoint.cmp(&b.endpoint));
        self.tenants.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        self.shards.sort_by_key(|s| s.shard);
    }

    /// Fold another snapshot into this one: totals are summed and the keyed
    /// sections (models, clusters, queues, tenants) are merged by key, with
    /// numeric fields summed and latency quantiles taken as the worst of the
    /// two. This is how a sharded front tier builds its fleet-wide aggregate
    /// view from per-shard snapshots; the per-shard `shards` section is left
    /// untouched (the front tier fills it itself).
    pub fn absorb(&mut self, other: &DashboardSnapshot) {
        self.at_seconds = self.at_seconds.max(other.at_seconds);
        for m in &other.models {
            match self.models.iter_mut().find(|x| x.model == m.model) {
                Some(row) => {
                    row.running_instances += m.running_instances;
                    row.requests += m.requests;
                    row.output_tokens += m.output_tokens;
                    row.median_latency_s = row.median_latency_s.max(m.median_latency_s);
                    row.p95_latency_s = row.p95_latency_s.max(m.p95_latency_s);
                }
                None => self.models.push(m.clone()),
            }
        }
        for c in &other.clusters {
            match self.clusters.iter_mut().find(|x| x.cluster == c.cluster) {
                Some(row) => {
                    row.total_nodes += c.total_nodes;
                    row.busy_nodes += c.busy_nodes;
                    row.idle_nodes += c.idle_nodes;
                    row.queued_jobs += c.queued_jobs;
                }
                None => self.clusters.push(c.clone()),
            }
        }
        for q in &other.queues {
            match self.queues.iter_mut().find(|x| x.endpoint == q.endpoint) {
                Some(row) => {
                    row.queued_tasks += q.queued_tasks;
                    row.running_tasks += q.running_tasks;
                    row.completed_tasks += q.completed_tasks;
                    if row.health != q.health {
                        row.health = "mixed".to_string();
                    }
                }
                None => self.queues.push(q.clone()),
            }
        }
        for t in &other.tenants {
            match self.tenants.iter_mut().find(|x| x.tenant == t.tenant) {
                Some(row) => {
                    row.requests += t.requests;
                    row.failures += t.failures;
                    row.output_tokens += t.output_tokens;
                    row.total_tokens += t.total_tokens;
                }
                None => self.tenants.push(t.clone()),
            }
        }
        self.total_requests += other.total_requests;
        self.total_completed += other.total_completed;
        self.total_failed += other.total_failed;
        self.total_output_tokens += other.total_output_tokens;
        self.distinct_users = self.distinct_users.max(other.distinct_users);
        self.total_retries += other.total_retries;
        self.total_failovers += other.total_failovers;
        self.breaker_trips += other.breaker_trips;
        self.total_hedges += other.total_hedges;
        self.harness_wall_s = self.harness_wall_s.max(other.harness_wall_s);
        self.harness_events_per_sec += other.harness_events_per_sec;
    }

    /// Overall success ratio (1.0 when nothing has completed or failed yet).
    pub fn success_ratio(&self) -> f64 {
        let finished = self.total_completed + self.total_failed;
        if finished == 0 {
            1.0
        } else {
            self.total_completed as f64 / finished as f64
        }
    }

    /// The model rows currently marked "running".
    pub fn hot_models(&self) -> impl Iterator<Item = &ModelRow> {
        self.models.iter().filter(|m| m.state == "running")
    }

    /// Render the dashboard as the plain-text layout the examples print.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "FIRST dashboard @ t={:.0}s   requests={} completed={} failed={} users={} output_tokens={}",
            self.at_seconds,
            self.total_requests,
            self.total_completed,
            self.total_failed,
            self.distinct_users,
            self.total_output_tokens
        );
        let _ = writeln!(out, "-- models --");
        let _ = writeln!(
            out,
            "{:<44} {:>9} {:>5} {:>8} {:>12} {:>9} {:>9}",
            "model", "state", "inst", "reqs", "out_tokens", "median_s", "p95_s"
        );
        for m in &self.models {
            let _ = writeln!(
                out,
                "{:<44} {:>9} {:>5} {:>8} {:>12} {:>9.2} {:>9.2}",
                m.model,
                m.state,
                m.running_instances,
                m.requests,
                m.output_tokens,
                m.median_latency_s,
                m.p95_latency_s
            );
        }
        let _ = writeln!(out, "-- clusters --");
        let _ = writeln!(
            out,
            "{:<12} {:>6} {:>6} {:>6} {:>8} {:>7}",
            "cluster", "nodes", "busy", "idle", "queued", "util%"
        );
        for c in &self.clusters {
            let _ = writeln!(
                out,
                "{:<12} {:>6} {:>6} {:>6} {:>8} {:>6.1}%",
                c.cluster,
                c.total_nodes,
                c.busy_nodes,
                c.idle_nodes,
                c.queued_jobs,
                c.utilisation() * 100.0
            );
        }
        let _ = writeln!(out, "-- queues --");
        let _ = writeln!(
            out,
            "{:<24} {:>8} {:>8} {:>10} {:>12}",
            "endpoint", "queued", "running", "completed", "health"
        );
        for q in &self.queues {
            let _ = writeln!(
                out,
                "{:<24} {:>8} {:>8} {:>10} {:>12}",
                q.endpoint, q.queued_tasks, q.running_tasks, q.completed_tasks, q.health
            );
        }
        if !self.tenants.is_empty() {
            let _ = writeln!(out, "-- tenants --");
            let _ = writeln!(
                out,
                "{:<24} {:>8} {:>8} {:>12} {:>12}",
                "tenant", "reqs", "fail", "out_tokens", "tot_tokens"
            );
            for t in &self.tenants {
                let _ = writeln!(
                    out,
                    "{:<24} {:>8} {:>8} {:>12} {:>12}",
                    t.tenant, t.requests, t.failures, t.output_tokens, t.total_tokens
                );
            }
        }
        if !self.phases.is_empty() {
            let _ = writeln!(out, "-- phases --");
            let _ = writeln!(
                out,
                "{:<14} {:>8} {:>10} {:>10} {:>10}",
                "phase", "count", "p50_s", "p95_s", "total_s"
            );
            for p in &self.phases {
                let _ = writeln!(
                    out,
                    "{:<14} {:>8} {:>10.4} {:>10.4} {:>10.4}",
                    p.phase, p.count, p.p50_s, p.p95_s, p.total_s
                );
            }
        }
        if !self.shards.is_empty() {
            let _ = writeln!(out, "-- shards --");
            let _ = writeln!(
                out,
                "{:<6} {:>9} {:>9} {:>8} {:>9} {:>10} {:>8}",
                "shard", "reqs", "done", "fail", "spill_in", "spill_out", "depth"
            );
            for s in &self.shards {
                let _ = writeln!(
                    out,
                    "{:<6} {:>9} {:>9} {:>8} {:>9} {:>10} {:>8}",
                    s.shard,
                    s.requests,
                    s.completed,
                    s.failed,
                    s.spilled_in,
                    s.spilled_out,
                    s.load_depth
                );
            }
        }
        if let Some(r) = &self.replay {
            let _ = writeln!(
                out,
                "-- replay -- cassette={} seed={} entries={} fault_events={}",
                r.cassette, r.seed, r.entries, r.fault_events
            );
        }
        let _ = writeln!(
            out,
            "-- resilience -- retries={} failovers={} breaker_trips={} hedges={}",
            self.total_retries, self.total_failovers, self.breaker_trips, self.total_hedges
        );
        let _ = writeln!(
            out,
            "-- harness -- wall={:.3}s events_per_sec={:.0}",
            self.harness_wall_s, self.harness_events_per_sec
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> DashboardSnapshot {
        DashboardSnapshot {
            at_seconds: 120.0,
            models: vec![
                ModelRow {
                    model: "meta-llama/Llama-3.3-70B-Instruct".into(),
                    state: "running".into(),
                    running_instances: 2,
                    requests: 500,
                    output_tokens: 90_000,
                    median_latency_s: 18.8,
                    p95_latency_s: 55.0,
                },
                ModelRow {
                    model: "meta-llama/Llama-3.1-8B-Instruct".into(),
                    state: "stopped".into(),
                    ..ModelRow::default()
                },
            ],
            clusters: vec![ClusterRow {
                cluster: "sophia".into(),
                total_nodes: 24,
                busy_nodes: 6,
                idle_nodes: 18,
                queued_jobs: 1,
            }],
            queues: vec![QueueRow {
                endpoint: "sophia-endpoint".into(),
                queued_tasks: 8000,
                running_tasks: 12,
                completed_tasks: 42_000,
                health: "degraded".into(),
            }],
            shards: Vec::new(),
            tenants: vec![
                TenantRow {
                    tenant: "chat".into(),
                    requests: 700,
                    failures: 10,
                    output_tokens: 60_000,
                    total_tokens: 150_000,
                },
                TenantRow {
                    tenant: "batch-synth".into(),
                    requests: 300,
                    failures: 40,
                    output_tokens: 30_000,
                    total_tokens: 80_000,
                },
            ],
            phases: Vec::new(),
            replay: None,
            total_requests: 1000,
            total_completed: 950,
            total_failed: 50,
            total_output_tokens: 90_000,
            distinct_users: 76,
            total_retries: 40,
            total_failovers: 12,
            breaker_trips: 2,
            total_hedges: 5,
            harness_wall_s: 0.25,
            harness_events_per_sec: 120_000.0,
        }
    }

    #[test]
    fn utilisation_and_success_ratio() {
        let snap = snapshot();
        assert!((snap.clusters[0].utilisation() - 0.25).abs() < 1e-9);
        assert!((snap.success_ratio() - 0.95).abs() < 1e-9);
        assert_eq!(snap.hot_models().count(), 1);
        let empty = DashboardSnapshot::default();
        assert_eq!(empty.success_ratio(), 1.0);
        assert_eq!(ClusterRow::default().utilisation(), 0.0);
    }

    #[test]
    fn normalise_sorts_every_section() {
        let mut snap = snapshot();
        snap.models.reverse();
        snap.normalise();
        assert!(snap.models[0].model < snap.models[1].model);
        assert!(snap.tenants[0].tenant < snap.tenants[1].tenant);
    }

    #[test]
    fn render_text_contains_every_section_and_row() {
        let snap = snapshot();
        let text = snap.render_text();
        assert!(text.contains("-- models --"));
        assert!(text.contains("-- clusters --"));
        assert!(text.contains("-- queues --"));
        assert!(text.contains("Llama-3.3-70B"));
        assert!(text.contains("sophia"));
        assert!(text.contains("8000"));
        assert!(text.contains("users=76"));
        assert!(text.contains("25.0%"));
        assert!(text.contains("degraded"));
        assert!(text.contains("-- tenants --"));
        assert!(text.contains("batch-synth"));
        assert!(text.contains("retries=40 failovers=12 breaker_trips=2 hedges=5"));
        assert!(text.contains("-- harness -- wall=0.250s events_per_sec=120000"));
        // Live snapshots carry no replay banner, and the phases section is
        // omitted while the flight recorder is off.
        assert!(!text.contains("-- replay --"));
        assert!(!text.contains("-- phases --"));
    }

    #[test]
    fn phase_rows_render_in_given_order_and_old_snapshots_still_parse() {
        let mut snap = snapshot();
        snap.phases = vec![
            PhaseLatencyRow {
                phase: "queue_wait".into(),
                count: 100,
                p50_s: 0.0125,
                p95_s: 0.2,
                total_s: 3.5,
            },
            PhaseLatencyRow {
                phase: "decode".into(),
                count: 100,
                p50_s: 9.1,
                p95_s: 21.0,
                total_s: 950.0,
            },
        ];
        // Lifecycle order is preserved by normalise (no alphabetical sort).
        snap.normalise();
        assert_eq!(snap.phases[0].phase, "queue_wait");
        let text = snap.render_text();
        assert!(text.contains("-- phases --"));
        let queue = text.find("queue_wait").expect("row rendered");
        let decode = text.find("decode").expect("row rendered");
        assert!(queue < decode);
        assert!(text.contains("0.0125"));

        // A pre-tracing snapshot (no `phases` field) deserializes to empty.
        let json = serde_json::to_string(&snapshot()).unwrap();
        let stripped = json.replace("\"phases\":[],", "");
        let back: DashboardSnapshot = serde_json::from_str(&stripped).expect("legacy parses");
        assert!(back.phases.is_empty());
    }

    #[test]
    fn shard_rows_render_sorted_and_old_snapshots_still_parse() {
        let mut snap = snapshot();
        snap.shards = vec![
            ShardRow {
                shard: 1,
                requests: 400,
                completed: 390,
                failed: 10,
                spilled_in: 25,
                spilled_out: 0,
                load_depth: 3,
            },
            ShardRow {
                shard: 0,
                requests: 600,
                completed: 560,
                failed: 40,
                spilled_in: 0,
                spilled_out: 25,
                load_depth: 9,
            },
        ];
        snap.normalise();
        assert_eq!(snap.shards[0].shard, 0, "normalise sorts by shard index");
        let text = snap.render_text();
        assert!(text.contains("-- shards --"));
        let s0 = text.find("600").expect("shard 0 row rendered");
        let s1 = text.find("400").expect("shard 1 row rendered");
        assert!(s0 < s1);

        // Unsharded snapshots omit the section entirely.
        assert!(!snapshot().render_text().contains("-- shards --"));

        // A pre-sharding snapshot (no `shards` field) deserializes to empty.
        let json = serde_json::to_string(&snapshot()).unwrap();
        let stripped = json.replace("\"shards\":[],", "");
        let back: DashboardSnapshot = serde_json::from_str(&stripped).expect("legacy parses");
        assert!(back.shards.is_empty());
    }

    #[test]
    fn absorb_merges_keyed_sections_and_sums_totals() {
        let mut a = snapshot();
        let mut b = snapshot();
        b.models[0].requests = 11;
        b.models[1].model = "new-model".into();
        b.clusters[0].busy_nodes = 2;
        b.queues[0].health = "healthy".into();
        b.tenants[0].tenant = "chat".into();
        a.absorb(&b);
        // Shared model merged (requests summed), new model appended.
        let shared = a
            .models
            .iter()
            .find(|m| m.model.contains("70B"))
            .expect("merged");
        assert_eq!(shared.requests, 511);
        assert!(a.models.iter().any(|m| m.model == "new-model"));
        // Cluster nodes summed; disagreeing health degrades to "mixed".
        assert_eq!(a.clusters[0].total_nodes, 48);
        assert_eq!(a.clusters[0].busy_nodes, 8);
        assert_eq!(a.queues[0].health, "mixed");
        // Tenant rows merged by name, totals summed.
        let chat = a.tenants.iter().find(|t| t.tenant == "chat").unwrap();
        assert_eq!(chat.requests, 1400);
        assert_eq!(a.total_requests, 2000);
        assert_eq!(a.total_completed, 1900);
    }

    #[test]
    fn replay_banner_renders_and_old_snapshots_still_parse() {
        let mut snap = snapshot();
        snap.replay = Some(ReplayCell {
            cassette: "burst".into(),
            seed: 42,
            entries: 200,
            fault_events: 3,
        });
        let text = snap.render_text();
        assert!(text.contains("-- replay -- cassette=burst seed=42 entries=200 fault_events=3"));

        // A pre-replay snapshot (no `replay` field) deserializes to None.
        let json = serde_json::to_string(&snapshot()).unwrap();
        assert!(json.contains("\"replay\":null"));
        let stripped = json.replace("\"replay\":null,", "");
        let back: DashboardSnapshot = serde_json::from_str(&stripped).expect("legacy parses");
        assert_eq!(back.replay, None);
    }
}
