//! The metric registry: named counter/gauge/histogram families with labels.
//!
//! The registry is the single sink every layer of the deployment reports
//! into — the gateway's request path, the compute fabric's endpoint events
//! and the HPC scheduler's node accounting — and the single source the
//! dashboard, the Prometheus exposition and the alert evaluator read from.
//! It is shared behind `parking_lot::Mutex` because the benchmark harness
//! fans parameter sweeps out across threads and each sweep owns a clone of
//! the deployment but may report into one shared registry.

use crate::counter::{Counter, Gauge};
use crate::histogram::BucketHistogram;
use crate::metric::{is_valid_metric_name, LabelSet, MetricId, MetricKind};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One exported sample in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MetricSnapshot {
    /// Counter value.
    Counter {
        /// Series identity.
        id: MetricId,
        /// Current value.
        value: u64,
    },
    /// Gauge value with its high-water mark.
    Gauge {
        /// Series identity.
        id: MetricId,
        /// Current value.
        value: f64,
        /// Highest value observed.
        peak: f64,
    },
    /// Histogram summary.
    Histogram {
        /// Series identity.
        id: MetricId,
        /// Observation count.
        count: u64,
        /// Observation sum.
        sum: f64,
        /// `(upper_bound, cumulative_count)` rows including +Inf.
        buckets: Vec<(f64, u64)>,
    },
}

impl MetricSnapshot {
    /// The series identity of this sample.
    pub fn id(&self) -> &MetricId {
        match self {
            MetricSnapshot::Counter { id, .. }
            | MetricSnapshot::Gauge { id, .. }
            | MetricSnapshot::Histogram { id, .. } => id,
        }
    }

    /// The metric kind of this sample.
    pub fn kind(&self) -> MetricKind {
        match self {
            MetricSnapshot::Counter { .. } => MetricKind::Counter,
            MetricSnapshot::Gauge { .. } => MetricKind::Gauge,
            MetricSnapshot::Histogram { .. } => MetricKind::Histogram,
        }
    }
}

/// A point-in-time copy of every series in the registry, ordered by id.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// All samples, sorted by metric id.
    pub samples: Vec<MetricSnapshot>,
}

impl RegistrySnapshot {
    /// Find a sample by name and labels.
    pub fn find(&self, name: &str, labels: &LabelSet) -> Option<&MetricSnapshot> {
        self.samples
            .iter()
            .find(|s| s.id().name == name && &s.id().labels == labels)
    }

    /// Counter value by name/labels, or 0 when absent.
    pub fn counter_value(&self, name: &str, labels: &LabelSet) -> u64 {
        match self.find(name, labels) {
            Some(MetricSnapshot::Counter { value, .. }) => *value,
            _ => 0,
        }
    }

    /// Gauge value by name/labels, or 0 when absent.
    pub fn gauge_value(&self, name: &str, labels: &LabelSet) -> f64 {
        match self.find(name, labels) {
            Some(MetricSnapshot::Gauge { value, .. }) => *value,
            _ => 0.0,
        }
    }

    /// Sum a counter family across all label sets.
    pub fn counter_family_total(&self, name: &str) -> u64 {
        self.samples
            .iter()
            .filter_map(|s| match s {
                MetricSnapshot::Counter { id, value } if id.name == name => Some(*value),
                _ => None,
            })
            .sum()
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<MetricId, Counter>,
    gauges: BTreeMap<MetricId, Gauge>,
    histograms: BTreeMap<MetricId, BucketHistogram>,
    kinds: BTreeMap<String, MetricKind>,
}

impl RegistryInner {
    fn check_kind(&mut self, name: &str, kind: MetricKind) {
        assert!(is_valid_metric_name(name), "invalid metric name {name:?}");
        match self.kinds.get(name) {
            Some(existing) => assert_eq!(
                *existing, kind,
                "metric family {name:?} already registered as {existing:?}"
            ),
            None => {
                self.kinds.insert(name.to_string(), kind);
            }
        }
    }
}

/// Thread-safe metric registry. Cloning shares the underlying store.
#[derive(Debug, Clone, Default)]
pub struct MetricRegistry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl MetricRegistry {
    /// A new, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment a labelled counter by one.
    pub fn inc_counter(&self, name: &str, labels: LabelSet) {
        self.add_counter(name, labels, 1);
    }

    /// Add to a labelled counter.
    pub fn add_counter(&self, name: &str, labels: LabelSet, delta: u64) {
        let mut inner = self.inner.lock();
        inner.check_kind(name, MetricKind::Counter);
        inner
            .counters
            .entry(MetricId::new(name, labels))
            .or_default()
            .add(delta);
    }

    /// Set a labelled gauge.
    pub fn set_gauge(&self, name: &str, labels: LabelSet, value: f64) {
        let mut inner = self.inner.lock();
        inner.check_kind(name, MetricKind::Gauge);
        inner
            .gauges
            .entry(MetricId::new(name, labels))
            .or_default()
            .set(value);
    }

    /// Add to a labelled gauge (may be negative).
    pub fn add_gauge(&self, name: &str, labels: LabelSet, delta: f64) {
        let mut inner = self.inner.lock();
        inner.check_kind(name, MetricKind::Gauge);
        inner
            .gauges
            .entry(MetricId::new(name, labels))
            .or_default()
            .add(delta);
    }

    /// Observe a value into a labelled histogram, creating it with
    /// [`BucketHistogram::latency_seconds`] buckets when absent.
    pub fn observe(&self, name: &str, labels: LabelSet, value: f64) {
        self.observe_with(name, labels, value, BucketHistogram::latency_seconds);
    }

    /// Observe a value, creating the histogram with custom buckets when absent.
    pub fn observe_with<F>(&self, name: &str, labels: LabelSet, value: f64, make: F)
    where
        F: FnOnce() -> BucketHistogram,
    {
        let mut inner = self.inner.lock();
        inner.check_kind(name, MetricKind::Histogram);
        inner
            .histograms
            .entry(MetricId::new(name, labels))
            .or_insert_with(make)
            .observe(value);
    }

    /// Current value of a counter series (0 when absent).
    pub fn counter_value(&self, name: &str, labels: &LabelSet) -> u64 {
        let inner = self.inner.lock();
        inner
            .counters
            .get(&MetricId::new(name, labels.clone()))
            .map(|c| c.get())
            .unwrap_or(0)
    }

    /// Current value of a gauge series (0 when absent).
    pub fn gauge_value(&self, name: &str, labels: &LabelSet) -> f64 {
        let inner = self.inner.lock();
        inner
            .gauges
            .get(&MetricId::new(name, labels.clone()))
            .map(|g| g.get())
            .unwrap_or(0.0)
    }

    /// Median of a histogram series (0 when absent).
    pub fn histogram_median(&self, name: &str, labels: &LabelSet) -> f64 {
        let inner = self.inner.lock();
        inner
            .histograms
            .get(&MetricId::new(name, labels.clone()))
            .map(|h| h.median())
            .unwrap_or(0.0)
    }

    /// Number of distinct series across all kinds.
    pub fn series_count(&self) -> usize {
        let inner = self.inner.lock();
        inner.counters.len() + inner.gauges.len() + inner.histograms.len()
    }

    /// Take a point-in-time snapshot of every series.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let inner = self.inner.lock();
        let mut samples =
            Vec::with_capacity(inner.counters.len() + inner.gauges.len() + inner.histograms.len());
        for (id, c) in &inner.counters {
            samples.push(MetricSnapshot::Counter {
                id: id.clone(),
                value: c.get(),
            });
        }
        for (id, g) in &inner.gauges {
            samples.push(MetricSnapshot::Gauge {
                id: id.clone(),
                value: g.get(),
                peak: g.peak(),
            });
        }
        for (id, h) in &inner.histograms {
            samples.push(MetricSnapshot::Histogram {
                id: id.clone(),
                count: h.count(),
                sum: h.sum(),
                buckets: h.cumulative_buckets(),
            });
        }
        samples.sort_by(|a, b| a.id().cmp(b.id()));
        RegistrySnapshot { samples }
    }

    /// Remove every series (used between benchmark repetitions).
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        inner.counters.clear();
        inner.gauges.clear();
        inner.histograms.clear();
        inner.kinds.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn model_labels(model: &str) -> LabelSet {
        LabelSet::single("model", model)
    }

    #[test]
    fn counters_gauges_and_histograms_round_trip() {
        let reg = MetricRegistry::new();
        reg.inc_counter("first_requests_total", model_labels("llama-70b"));
        reg.add_counter("first_requests_total", model_labels("llama-70b"), 4);
        reg.add_counter("first_requests_total", model_labels("llama-8b"), 2);
        reg.set_gauge(
            "first_hot_nodes",
            LabelSet::single("cluster", "sophia"),
            3.0,
        );
        reg.observe("first_latency_seconds", model_labels("llama-70b"), 9.2);
        reg.observe("first_latency_seconds", model_labels("llama-70b"), 46.9);

        assert_eq!(
            reg.counter_value("first_requests_total", &model_labels("llama-70b")),
            5
        );
        assert_eq!(
            reg.counter_value("first_requests_total", &model_labels("llama-8b")),
            2
        );
        assert_eq!(
            reg.gauge_value("first_hot_nodes", &LabelSet::single("cluster", "sophia")),
            3.0
        );
        let med = reg.histogram_median("first_latency_seconds", &model_labels("llama-70b"));
        assert!(med > 0.0);
        assert_eq!(reg.series_count(), 4);

        let snap = reg.snapshot();
        assert_eq!(snap.counter_family_total("first_requests_total"), 7);
        assert_eq!(
            snap.counter_value("first_requests_total", &model_labels("llama-8b")),
            2
        );
        assert_eq!(
            snap.gauge_value("first_hot_nodes", &LabelSet::single("cluster", "sophia")),
            3.0
        );
    }

    #[test]
    fn snapshot_is_sorted_and_stable() {
        let reg = MetricRegistry::new();
        reg.inc_counter("z_metric", LabelSet::empty());
        reg.inc_counter("a_metric", LabelSet::empty());
        reg.set_gauge("m_metric", LabelSet::empty(), 1.0);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.samples.iter().map(|s| s.id().name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn clones_share_the_same_store() {
        let reg = MetricRegistry::new();
        let clone = reg.clone();
        clone.inc_counter("shared_total", LabelSet::empty());
        assert_eq!(reg.counter_value("shared_total", &LabelSet::empty()), 1);
    }

    #[test]
    fn concurrent_updates_are_not_lost() {
        let reg = MetricRegistry::new();
        thread::scope(|s| {
            for _ in 0..8 {
                let reg = reg.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        reg.inc_counter("first_requests_total", LabelSet::single("op", "chat"));
                        reg.add_gauge("first_inflight", LabelSet::empty(), 1.0);
                        reg.add_gauge("first_inflight", LabelSet::empty(), -1.0);
                        reg.observe("first_latency_seconds", LabelSet::empty(), 0.5);
                    }
                });
            }
        });
        assert_eq!(
            reg.counter_value("first_requests_total", &LabelSet::single("op", "chat")),
            8000
        );
        assert_eq!(reg.gauge_value("first_inflight", &LabelSet::empty()), 0.0);
        let snap = reg.snapshot();
        match snap.find("first_latency_seconds", &LabelSet::empty()) {
            Some(MetricSnapshot::Histogram { count, .. }) => assert_eq!(*count, 8000),
            other => panic!("unexpected sample {other:?}"),
        }
    }

    #[test]
    #[should_panic]
    fn reusing_a_family_name_with_a_different_kind_panics() {
        let reg = MetricRegistry::new();
        reg.inc_counter("first_requests_total", LabelSet::empty());
        reg.set_gauge("first_requests_total", LabelSet::empty(), 1.0);
    }

    #[test]
    fn reset_clears_everything() {
        let reg = MetricRegistry::new();
        reg.inc_counter("c", LabelSet::empty());
        reg.reset();
        assert_eq!(reg.series_count(), 0);
        // After reset the name can be reused with another kind.
        reg.set_gauge("c", LabelSet::empty(), 2.0);
        assert_eq!(reg.gauge_value("c", &LabelSet::empty()), 2.0);
    }
}
