//! # first-telemetry — the FIRST monitoring substrate
//!
//! The paper's gateway keeps a "metrics layer \[that\] provides real-time
//! monitoring of the compute resources and queue status" and exposes
//! "performance and summary metrics … through a web dashboard" (§3.1.1); the
//! future-work section commits to "enhance monitoring for deeper insights"
//! (§7). The production deployment does this with an external monitoring
//! stack; this crate is the Rust substitute: a small, dependency-free
//! metric pipeline the gateway and the benchmark harness both feed.
//!
//! * [`metric`] — label sets and metric identities.
//! * [`counter`] — monotonic counters and point-in-time gauges.
//! * [`histogram`] — exponential-bucket histograms with quantile estimation.
//! * [`registry`] — the thread-safe metric registry and its snapshots.
//! * [`timeseries`] — rolling windows and sampled resource timelines.
//! * [`exposition`] — Prometheus-style text exposition of a snapshot.
//! * [`dashboard`] — the operations dashboard model (per-model, per-cluster
//!   and queue summaries) rendered as plain text.
//! * [`alerts`] — threshold alert rules evaluated against the registry.
//! * [`trace`] — request-lifecycle spans, the flight recorder ring buffer,
//!   phase-latency aggregation and the Chrome-trace exporter.
//!
//! The registry is intentionally synchronous and lock-based
//! (`parking_lot::Mutex` around plain maps): metric updates happen on the
//! gateway's request path at most a handful of times per simulated request,
//! so contention is negligible, and a deterministic in-memory store keeps the
//! discrete-event simulation reproducible.

#![warn(missing_docs)]

pub mod alerts;
pub mod counter;
pub mod dashboard;
pub mod exposition;
pub mod histogram;
pub mod metric;
pub mod registry;
pub mod timeseries;
pub mod trace;

pub use alerts::{AlertRule, AlertSeverity, AlertState, Alerting, FiredAlert};
pub use counter::{Counter, Gauge};
pub use dashboard::{
    ClusterRow, DashboardSnapshot, ModelRow, PhaseLatencyRow, QueueRow, ReplayCell, ShardRow,
    TenantRow,
};
pub use exposition::render_prometheus;
pub use histogram::BucketHistogram;
pub use metric::{LabelSet, MetricId, MetricKind};
pub use registry::{MetricRegistry, MetricSnapshot, RegistrySnapshot};
pub use timeseries::{ResourceTimeline, RollingWindow, TimePoint};
pub use trace::{
    chrome_trace_json, CriticalPathEntry, FlightRecorder, GroupPhases, Phase, PhaseBreakdown,
    PhaseStats, Span, SpanTree, TraceConfig,
};

/// Commonly used items, re-exported for glob import.
pub mod prelude {
    pub use crate::counter::{Counter, Gauge};
    pub use crate::dashboard::DashboardSnapshot;
    pub use crate::histogram::BucketHistogram;
    pub use crate::metric::LabelSet;
    pub use crate::registry::MetricRegistry;
    pub use crate::timeseries::RollingWindow;
}
