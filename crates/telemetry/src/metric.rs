//! Metric identities: names, label sets and kinds.
//!
//! A metric is identified by its name plus a set of `key="value"` labels,
//! exactly as in the Prometheus data model the ALCF monitoring stack uses.
//! Label sets are kept sorted so two logically identical label sets always
//! compare and hash equal regardless of insertion order.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A sorted set of `key=value` labels attached to a metric.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LabelSet {
    labels: Vec<(String, String)>,
}

impl LabelSet {
    /// The empty label set.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Build a label set from `(key, value)` pairs. Later duplicates of the
    /// same key overwrite earlier ones.
    pub fn from_pairs<K, V, I>(pairs: I) -> Self
    where
        K: Into<String>,
        V: Into<String>,
        I: IntoIterator<Item = (K, V)>,
    {
        let mut set = LabelSet::empty();
        for (k, v) in pairs {
            set.insert(k, v);
        }
        set
    }

    /// A single-label set, the most common case (`model="..."`).
    pub fn single(key: impl Into<String>, value: impl Into<String>) -> Self {
        Self::from_pairs([(key.into(), value.into())])
    }

    /// Insert or overwrite a label, keeping the set sorted by key.
    pub fn insert(&mut self, key: impl Into<String>, value: impl Into<String>) {
        let key = key.into();
        let value = value.into();
        match self.labels.binary_search_by(|(k, _)| k.cmp(&key)) {
            Ok(idx) => self.labels[idx].1 = value,
            Err(idx) => self.labels.insert(idx, (key, value)),
        }
    }

    /// Look up a label value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.labels
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|idx| self.labels[idx].1.as_str())
    }

    /// Number of labels.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the set has no labels.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Iterate over `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.labels.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }
}

impl fmt::Display for LabelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            return Ok(());
        }
        write!(f, "{{")?;
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{k}=\"{v}\"")?;
        }
        write!(f, "}}")
    }
}

/// What kind of metric a name refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MetricKind {
    /// Monotonically increasing counter (requests served, tokens generated).
    Counter,
    /// Point-in-time value that can go up and down (queue depth, hot nodes).
    Gauge,
    /// Distribution of observations (request latency, tokens per request).
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword for this kind.
    pub fn type_keyword(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Full identity of one metric series: name plus label set.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MetricId {
    /// Metric family name, e.g. `first_requests_total`.
    pub name: String,
    /// Label set distinguishing this series within the family.
    pub labels: LabelSet,
}

impl MetricId {
    /// Build a metric id.
    pub fn new(name: impl Into<String>, labels: LabelSet) -> Self {
        MetricId {
            name: name.into(),
            labels,
        }
    }

    /// A series with no labels.
    pub fn plain(name: impl Into<String>) -> Self {
        Self::new(name, LabelSet::empty())
    }
}

impl fmt::Display for MetricId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.name, self.labels)
    }
}

/// Whether a metric family name is valid: Prometheus-compatible
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`.
pub fn is_valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_set_is_order_insensitive() {
        let a = LabelSet::from_pairs([("model", "llama-70b"), ("cluster", "sophia")]);
        let b = LabelSet::from_pairs([("cluster", "sophia"), ("model", "llama-70b")]);
        assert_eq!(a, b);
        assert_eq!(a.get("model"), Some("llama-70b"));
        assert_eq!(a.get("cluster"), Some("sophia"));
        assert_eq!(a.get("missing"), None);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn label_insert_overwrites_existing_key() {
        let mut set = LabelSet::single("state", "queued");
        set.insert("state", "running");
        assert_eq!(set.len(), 1);
        assert_eq!(set.get("state"), Some("running"));
    }

    #[test]
    fn label_set_display_is_prometheus_shaped() {
        let set = LabelSet::from_pairs([("model", "llama-8b"), ("cluster", "polaris")]);
        assert_eq!(set.to_string(), "{cluster=\"polaris\",model=\"llama-8b\"}");
        assert_eq!(LabelSet::empty().to_string(), "");
    }

    #[test]
    fn metric_id_display_concatenates_name_and_labels() {
        let id = MetricId::new("first_requests_total", LabelSet::single("op", "chat"));
        assert_eq!(id.to_string(), "first_requests_total{op=\"chat\"}");
        assert_eq!(MetricId::plain("up").to_string(), "up");
    }

    #[test]
    fn metric_name_validation() {
        assert!(is_valid_metric_name("first_requests_total"));
        assert!(is_valid_metric_name("_hidden:series"));
        assert!(!is_valid_metric_name("9starts_with_digit"));
        assert!(!is_valid_metric_name("has space"));
        assert!(!is_valid_metric_name(""));
        assert!(!is_valid_metric_name("bad-dash"));
    }

    #[test]
    fn metric_kind_keywords() {
        assert_eq!(MetricKind::Counter.type_keyword(), "counter");
        assert_eq!(MetricKind::Gauge.type_keyword(), "gauge");
        assert_eq!(MetricKind::Histogram.type_keyword(), "histogram");
    }
}
