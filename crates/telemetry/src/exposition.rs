//! Prometheus-style text exposition.
//!
//! The production deployment scrapes the gateway's metrics endpoint with the
//! facility monitoring stack; rendering the registry snapshot in the
//! Prometheus text format keeps that integration point realistic and gives
//! the benchmark harness a stable, diff-able artifact to write next to its
//! result tables.

use crate::metric::MetricKind;
use crate::registry::{MetricSnapshot, RegistrySnapshot};
use std::fmt::Write as _;

fn format_value(v: f64) -> String {
    if v.is_infinite() {
        if v > 0.0 {
            "+Inf".to_string()
        } else {
            "-Inf".to_string()
        }
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Render a registry snapshot in the Prometheus text exposition format
/// (version 0.0.4): `# TYPE` headers per family, one sample per line,
/// histograms expanded into `_bucket`/`_sum`/`_count` series.
pub fn render_prometheus(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::new();
    let mut last_family: Option<(&str, MetricKind)> = None;
    for sample in &snapshot.samples {
        let name = sample.id().name.as_str();
        let kind = sample.kind();
        if last_family != Some((name, kind)) {
            let _ = writeln!(out, "# TYPE {name} {}", kind.type_keyword());
            last_family = Some((name, kind));
        }
        let labels = &sample.id().labels;
        match sample {
            MetricSnapshot::Counter { value, .. } => {
                let _ = writeln!(out, "{name}{labels} {value}");
            }
            MetricSnapshot::Gauge { value, .. } => {
                let _ = writeln!(out, "{name}{labels} {}", format_value(*value));
            }
            MetricSnapshot::Histogram {
                count,
                sum,
                buckets,
                ..
            } => {
                for (bound, cumulative) in buckets {
                    let mut le_labels = labels.clone();
                    le_labels.insert("le", format_value(*bound));
                    let _ = writeln!(out, "{name}_bucket{le_labels} {cumulative}");
                }
                let _ = writeln!(out, "{name}_sum{labels} {}", format_value(*sum));
                let _ = writeln!(out, "{name}_count{labels} {count}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::LabelSet;
    use crate::registry::MetricRegistry;

    #[test]
    fn renders_counters_gauges_and_histograms() {
        let reg = MetricRegistry::new();
        reg.add_counter(
            "first_requests_total",
            LabelSet::from_pairs([("model", "llama-70b"), ("op", "chat")]),
            42,
        );
        reg.set_gauge(
            "first_hot_nodes",
            LabelSet::single("cluster", "sophia"),
            3.0,
        );
        reg.observe(
            "first_latency_seconds",
            LabelSet::single("model", "llama-70b"),
            9.2,
        );
        let text = render_prometheus(&reg.snapshot());

        assert!(text.contains("# TYPE first_requests_total counter"));
        assert!(text.contains("first_requests_total{model=\"llama-70b\",op=\"chat\"} 42"));
        assert!(text.contains("# TYPE first_hot_nodes gauge"));
        assert!(text.contains("first_hot_nodes{cluster=\"sophia\"} 3"));
        assert!(text.contains("# TYPE first_latency_seconds histogram"));
        assert!(text.contains("first_latency_seconds_count{model=\"llama-70b\"} 1"));
        assert!(text.contains("le=\"+Inf\""));
        // The sum line carries the observed value.
        assert!(text.contains("first_latency_seconds_sum{model=\"llama-70b\"} 9.2"));
    }

    #[test]
    fn type_header_appears_once_per_family() {
        let reg = MetricRegistry::new();
        reg.inc_counter("first_requests_total", LabelSet::single("model", "a"));
        reg.inc_counter("first_requests_total", LabelSet::single("model", "b"));
        let text = render_prometheus(&reg.snapshot());
        let headers = text.matches("# TYPE first_requests_total counter").count();
        assert_eq!(headers, 1);
        let samples = text.matches("first_requests_total{").count();
        assert_eq!(samples, 2);
    }

    #[test]
    fn empty_snapshot_renders_empty_string() {
        let reg = MetricRegistry::new();
        assert!(render_prometheus(&reg.snapshot()).is_empty());
    }

    #[test]
    fn integer_valued_gauges_render_without_decimal_point() {
        let reg = MetricRegistry::new();
        reg.set_gauge("nodes", LabelSet::empty(), 24.0);
        reg.set_gauge("fraction", LabelSet::empty(), 0.25);
        let text = render_prometheus(&reg.snapshot());
        assert!(text.contains("nodes 24\n"));
        assert!(text.contains("fraction 0.25\n"));
    }
}
