//! Request-lifecycle tracing: sim-time spans, a bounded flight recorder and
//! phase-latency aggregation (§3.1.1 "queue status", §7 "deeper insights").
//!
//! The rest of the telemetry crate answers *what* happened (counters,
//! quantiles, SLO attainment); this module answers *where the time went*.
//! A sampled request yields a [`SpanTree`]: one root span covering the whole
//! request plus one child [`Span`] per lifecycle [`Phase`] (gateway queue
//! wait, admission, fabric dispatch and transit, endpoint backlog, engine
//! prefill and decode, the return path). Trees are recorded into a
//! [`FlightRecorder`] — a bounded ring buffer with deterministic 1-in-N
//! sampling — and aggregated into a [`PhaseBreakdown`] (per-phase, per-tenant
//! and per-endpoint quantiles plus critical-path attribution). A
//! [`chrome_trace_json`] exporter renders the sampled trees in the Chrome
//! trace-event format so a run can be opened in `chrome://tracing` or
//! Perfetto.
//!
//! Everything here is sim-time: spans carry [`SimTime`] instants, so traces
//! are exactly reproducible across runs with the same seed and the exporter
//! can promise byte-identical output.

use std::collections::{BTreeMap, VecDeque};

use first_desim::SimTime;
use serde::{Deserialize, Serialize};

/// A lifecycle phase of a gateway request.
///
/// The phases partition the request's wall-to-wall interval: for a clean
/// (no-retry, no-hedge) request the phase spans chain end-to-start from
/// arrival to delivery, so their durations sum to the end-to-end latency.
/// Retries and hedges introduce idle gaps between attempts; those gaps are
/// deliberately *not* attributed to any phase (see [`SpanTree::idle_micros`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Root span: the whole request, arrival to delivery.
    Request,
    /// Federation routing decision, taken synchronously at the API boundary
    /// (instantaneous in the model).
    Route,
    /// Waiting for a gateway worker slot (admission backlog).
    QueueWait,
    /// Gateway CPU: auth, rate-limit and validation work.
    Admission,
    /// Auth latency plus connection overhead before the fabric sees the task.
    Submit,
    /// Fabric client→service hop plus dispatcher queue and dispatch cost.
    Dispatch,
    /// Service→endpoint network transit.
    Transit,
    /// Sitting in the compute endpoint's backlog before engine admission.
    BacklogWait,
    /// Endpoint slot assignment (instantaneous in the model).
    Assignment,
    /// Engine queueing plus prefill: admission to first token.
    Prefill,
    /// Token generation: first token to completion.
    Decode,
    /// Result relay from endpoint back to the fabric client.
    Relay,
    /// Client-side observation delay (poll interval, clock skew model).
    Observe,
    /// Gateway response CPU before final delivery to the caller.
    Deliver,
}

impl Phase {
    /// Every leaf phase, in lifecycle order. Excludes the [`Phase::Request`]
    /// root, which is not a phase of the request but the request itself.
    pub const ALL: [Phase; 13] = [
        Phase::Route,
        Phase::QueueWait,
        Phase::Admission,
        Phase::Submit,
        Phase::Dispatch,
        Phase::Transit,
        Phase::BacklogWait,
        Phase::Assignment,
        Phase::Prefill,
        Phase::Decode,
        Phase::Relay,
        Phase::Observe,
        Phase::Deliver,
    ];

    /// Stable lowercase snake-case name, used for metric labels and the
    /// Chrome-trace `name` field.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Request => "request",
            Phase::QueueWait => "queue_wait",
            Phase::Admission => "admission",
            Phase::Route => "route",
            Phase::Submit => "submit",
            Phase::Dispatch => "dispatch",
            Phase::Transit => "transit",
            Phase::BacklogWait => "backlog_wait",
            Phase::Assignment => "assignment",
            Phase::Prefill => "prefill",
            Phase::Decode => "decode",
            Phase::Relay => "relay",
            Phase::Observe => "observe",
            Phase::Deliver => "deliver",
        }
    }

    fn index(self) -> usize {
        Phase::ALL.iter().position(|p| *p == self).unwrap_or(0)
    }
}

/// One timed interval within a request's lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// Which lifecycle phase this interval covers.
    pub phase: Phase,
    /// Sim-time start of the interval.
    pub start: SimTime,
    /// Sim-time end of the interval (`end >= start`).
    pub end: SimTime,
    /// Index of the parent span within the owning [`SpanTree`]; `None` for
    /// the root.
    pub parent: Option<u32>,
}

impl Span {
    /// Span duration in integer microseconds (exact, deterministic).
    pub fn duration_micros(&self) -> u64 {
        self.end.as_micros().saturating_sub(self.start.as_micros())
    }

    /// Span duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.duration_micros() as f64 / 1e6
    }
}

/// The complete span tree for one sampled request: a root
/// [`Phase::Request`] span plus one child span per lifecycle phase the
/// request passed through.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpanTree {
    /// Gateway request id.
    pub request_id: u64,
    /// Authenticated user (tenant) that issued the request.
    pub tenant: String,
    /// Model the request targeted.
    pub model: String,
    /// Compute endpoint that served the final attempt (empty for cache hits
    /// and requests that failed before routing).
    pub endpoint: String,
    /// Whether the request ultimately succeeded.
    pub success: bool,
    /// Whether the gateway answered from the response cache (a degenerate
    /// tree: root plus admission-side spans only).
    pub cached: bool,
    /// All spans; index 0 is the root, children reference it by index.
    pub spans: Vec<Span>,
}

impl SpanTree {
    /// The root span (whole-request interval), if the tree is non-empty.
    pub fn root(&self) -> Option<&Span> {
        self.spans.first()
    }

    /// End-to-end latency in microseconds (root span duration).
    pub fn end_to_end_micros(&self) -> u64 {
        self.root().map(Span::duration_micros).unwrap_or(0)
    }

    /// Sum of all leaf-phase durations in microseconds.
    pub fn phase_total_micros(&self) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.parent.is_some())
            .map(Span::duration_micros)
            .sum()
    }

    /// Idle time: end-to-end minus attributed phase time, in microseconds.
    /// Zero for clean requests; positive when retries or hedges leave gaps
    /// between attempts (the superseded attempt's phases are not recorded).
    pub fn idle_micros(&self) -> u64 {
        self.end_to_end_micros()
            .saturating_sub(self.phase_total_micros())
    }

    /// Structural well-formedness: a root exists, every child's interval is
    /// contained in its parent's, spans are ordered (`end >= start`) and
    /// parent indices are in bounds and acyclic (parent index < child index).
    pub fn well_formed(&self) -> bool {
        let Some(root) = self.root() else {
            return false;
        };
        if root.parent.is_some() || root.phase != Phase::Request {
            return false;
        }
        self.spans.iter().enumerate().all(|(i, s)| {
            if s.end < s.start {
                return false;
            }
            match s.parent {
                None => i == 0,
                Some(p) => {
                    let p = p as usize;
                    p < i
                        && self
                            .spans
                            .get(p)
                            .is_some_and(|parent| s.start >= parent.start && s.end <= parent.end)
                }
            }
        })
    }
}

/// Sampling and retention knobs for the flight recorder.
///
/// The default is **off** (`sample_every == 0`): the gateway takes a single
/// branch per request and allocates nothing, which the perf gate's
/// `trace_off/*` metrics hold it to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Record every Nth accepted request; `0` disables tracing entirely,
    /// `1` records every request.
    #[serde(default)]
    pub sample_every: u64,
    /// Maximum span trees retained; older trees are evicted (and counted as
    /// dropped) once the ring is full.
    #[serde(default = "default_capacity")]
    pub capacity: usize,
}

fn default_capacity() -> usize {
    4096
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            sample_every: 0,
            capacity: default_capacity(),
        }
    }
}

impl TraceConfig {
    /// Tracing enabled at all?
    pub fn enabled(&self) -> bool {
        self.sample_every > 0
    }

    /// Convenience: record every request with the given retention.
    pub fn every_request(capacity: usize) -> Self {
        TraceConfig {
            sample_every: 1,
            capacity,
        }
    }
}

/// Bounded ring buffer of sampled span trees, owned by the gateway.
///
/// Sampling is a deterministic counter (`seen % sample_every == 0`), not a
/// coin flip, so the same seed and workload always sample the same requests
/// — a requirement for byte-identical trace exports across runs.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    config: TraceConfig,
    ring: VecDeque<SpanTree>,
    seen: u64,
    sampled: u64,
    dropped: u64,
}

impl FlightRecorder {
    /// Create a recorder with the given configuration. A disabled config
    /// allocates no ring storage.
    pub fn new(config: TraceConfig) -> Self {
        let cap = if config.enabled() {
            config.capacity.min(65_536)
        } else {
            0
        };
        FlightRecorder {
            config,
            ring: VecDeque::with_capacity(cap),
            seen: 0,
            sampled: 0,
            dropped: 0,
        }
    }

    /// The configuration the recorder was built with.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// Whether any request will ever be sampled.
    pub fn enabled(&self) -> bool {
        self.config.enabled()
    }

    /// Deterministic sampling decision for the next accepted request.
    /// Call exactly once per request; returns `true` for every
    /// `sample_every`-th call starting with the first.
    pub fn should_sample(&mut self) -> bool {
        if !self.config.enabled() {
            return false;
        }
        let pick = self.seen.is_multiple_of(self.config.sample_every);
        self.seen += 1;
        pick
    }

    /// Record a completed span tree, evicting the oldest if at capacity.
    pub fn record(&mut self, tree: SpanTree) {
        if !self.config.enabled() || self.config.capacity == 0 {
            return;
        }
        if self.ring.len() >= self.config.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(tree);
        self.sampled += 1;
    }

    /// Iterate retained trees, oldest first.
    pub fn trees(&self) -> impl Iterator<Item = &SpanTree> {
        self.ring.iter()
    }

    /// Number of trees currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total trees recorded (including any later evicted).
    pub fn sampled(&self) -> u64 {
        self.sampled
    }

    /// Trees evicted from the ring to make room.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drain the retained trees, oldest first, resetting the ring (counters
    /// are kept).
    pub fn take_trees(&mut self) -> Vec<SpanTree> {
        self.ring.drain(..).collect()
    }

    /// Aggregate the retained trees into a [`PhaseBreakdown`].
    pub fn breakdown(&self) -> PhaseBreakdown {
        PhaseBreakdown::from_trees(self.ring.iter(), self.sampled, self.dropped)
    }
}

/// Latency statistics for one phase within one grouping.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PhaseStats {
    /// The phase.
    pub phase: Phase,
    /// Number of spans observed.
    pub count: u64,
    /// Total time spent in the phase, seconds.
    pub total_s: f64,
    /// Mean span duration, seconds.
    pub mean_s: f64,
    /// Median span duration, seconds.
    pub p50_s: f64,
    /// 95th-percentile span duration, seconds.
    pub p95_s: f64,
}

/// Per-phase statistics for one named group (a tenant or an endpoint).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GroupPhases {
    /// Group key: the tenant name or endpoint name.
    pub name: String,
    /// Stats for each phase the group's requests passed through, in
    /// lifecycle order. Phases never observed are omitted.
    pub by_phase: Vec<PhaseStats>,
}

/// Critical-path attribution: how often each phase dominated a request.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CriticalPathEntry {
    /// The phase.
    pub phase: Phase,
    /// Requests whose single largest phase was this one.
    pub requests: u64,
    /// This phase's share of total attributed time across all sampled
    /// requests, in `[0, 1]`.
    pub time_share: f64,
}

/// Aggregated phase-latency view over the sampled span trees.
///
/// This is the summary that flows into the `GatewayReport`, the dashboard's
/// phase section, the Prometheus exposition and the bench artifact's trace
/// section.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// Total trees recorded by the flight recorder.
    #[serde(default)]
    pub sampled: u64,
    /// Trees evicted from the ring before aggregation.
    #[serde(default)]
    pub dropped: u64,
    /// Overall per-phase stats, lifecycle order, unobserved phases omitted.
    #[serde(default)]
    pub by_phase: Vec<PhaseStats>,
    /// Per-tenant per-phase stats, tenants sorted by name.
    #[serde(default)]
    pub by_tenant: Vec<GroupPhases>,
    /// Per-endpoint per-phase stats, endpoints sorted by name. Requests that
    /// never reached an endpoint (cache hits, early failures) are grouped
    /// under an empty name and omitted here.
    #[serde(default)]
    pub by_endpoint: Vec<GroupPhases>,
    /// Which phase dominated each request, sorted by request count
    /// descending then lifecycle order.
    #[serde(default)]
    pub critical_path: Vec<CriticalPathEntry>,
}

/// Per-phase accumulation: span durations in integer micros (exact).
type PhaseDurations = [Vec<u64>; 13];

/// Intermediate accumulation over the sampled trees, before quantiles.
#[derive(Default)]
struct Accumulated {
    overall: PhaseDurations,
    tenants: BTreeMap<String, PhaseDurations>,
    endpoints: BTreeMap<String, PhaseDurations>,
    dominated: [u64; 13],
    attributed_total: u64,
}

fn accumulate<'a>(trees: impl Iterator<Item = &'a SpanTree>) -> Accumulated {
    let mut overall: PhaseDurations = Default::default();
    let mut tenants: BTreeMap<String, PhaseDurations> = BTreeMap::new();
    let mut endpoints: BTreeMap<String, PhaseDurations> = BTreeMap::new();
    let mut dominated = [0u64; 13];
    let mut attributed_total = 0u64;
    for tree in trees {
        let mut dominant: Option<(usize, u64)> = None;
        for span in tree.spans.iter().filter(|s| s.parent.is_some()) {
            let idx = span.phase.index();
            let us = span.duration_micros();
            overall[idx].push(us);
            attributed_total += us;
            tenants.entry(tree.tenant.clone()).or_default()[idx].push(us);
            if !tree.endpoint.is_empty() {
                endpoints.entry(tree.endpoint.clone()).or_default()[idx].push(us);
            }
            if dominant.map(|(_, best)| us > best).unwrap_or(true) {
                dominant = Some((idx, us));
            }
        }
        if let Some((idx, _)) = dominant {
            dominated[idx] += 1;
        }
    }
    Accumulated {
        overall,
        tenants,
        endpoints,
        dominated,
        attributed_total,
    }
}

fn percentile_micros(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn stats_from(durations: &mut PhaseDurations) -> Vec<PhaseStats> {
    let mut out = Vec::new();
    for phase in Phase::ALL {
        let samples = &mut durations[phase.index()];
        if samples.is_empty() {
            continue;
        }
        samples.sort_unstable();
        let count = samples.len() as u64;
        let total: u64 = samples.iter().sum();
        out.push(PhaseStats {
            phase,
            count,
            total_s: total as f64 / 1e6,
            mean_s: total as f64 / 1e6 / count as f64,
            p50_s: percentile_micros(samples, 0.50) as f64 / 1e6,
            p95_s: percentile_micros(samples, 0.95) as f64 / 1e6,
        });
    }
    out
}

impl PhaseBreakdown {
    /// Aggregate an iterator of span trees (plus the recorder's counters)
    /// into the breakdown. Deterministic: group maps are ordered, durations
    /// are integer micros and quantiles are nearest-rank.
    pub fn from_trees<'a>(
        trees: impl Iterator<Item = &'a SpanTree>,
        sampled: u64,
        dropped: u64,
    ) -> Self {
        let Accumulated {
            mut overall,
            tenants,
            endpoints,
            dominated,
            attributed_total,
        } = accumulate(trees);
        let group = |map: BTreeMap<String, PhaseDurations>| -> Vec<GroupPhases> {
            map.into_iter()
                .map(|(name, mut durs)| GroupPhases {
                    name,
                    by_phase: stats_from(&mut durs),
                })
                .collect()
        };
        let by_phase = stats_from(&mut overall);
        let mut critical_path: Vec<CriticalPathEntry> = Phase::ALL
            .iter()
            .enumerate()
            .filter(|(i, _)| dominated[*i] > 0)
            .map(|(i, phase)| {
                let phase_total: f64 = by_phase
                    .iter()
                    .find(|s| s.phase == *phase)
                    .map(|s| s.total_s)
                    .unwrap_or(0.0);
                CriticalPathEntry {
                    phase: *phase,
                    requests: dominated[i],
                    time_share: if attributed_total > 0 {
                        phase_total / (attributed_total as f64 / 1e6)
                    } else {
                        0.0
                    },
                }
            })
            .collect();
        critical_path.sort_by(|a, b| {
            b.requests
                .cmp(&a.requests)
                .then(a.phase.index().cmp(&b.phase.index()))
        });
        PhaseBreakdown {
            sampled,
            dropped,
            by_phase,
            by_tenant: group(tenants),
            by_endpoint: group(endpoints),
            critical_path,
        }
    }

    /// True when no spans were aggregated.
    pub fn is_empty(&self) -> bool {
        self.by_phase.is_empty()
    }
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Render span trees in the Chrome trace-event format (the JSON object form
/// with a `traceEvents` array of `ph: "X"` complete events), loadable in
/// `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
///
/// Timestamps and durations are integer microseconds of sim time and events
/// are emitted in deterministic order (tree order, then span order), so two
/// same-seed runs export byte-identical JSON. Each request renders as its
/// own track (`tid` = request id) under a single `pid`.
pub fn chrome_trace_json<'a>(trees: impl Iterator<Item = &'a SpanTree>) -> String {
    let mut out = String::with_capacity(16 * 1024);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for tree in trees {
        for span in &tree.spans {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n{\"name\":\"");
            out.push_str(span.phase.name());
            out.push_str("\",\"cat\":\"");
            out.push_str(if span.parent.is_none() {
                "request"
            } else {
                "phase"
            });
            out.push_str("\",\"ph\":\"X\",\"ts\":");
            out.push_str(&span.start.as_micros().to_string());
            out.push_str(",\"dur\":");
            out.push_str(&span.duration_micros().to_string());
            out.push_str(",\"pid\":1,\"tid\":");
            out.push_str(&tree.request_id.to_string());
            out.push_str(",\"args\":{\"tenant\":\"");
            escape_json(&tree.tenant, &mut out);
            out.push_str("\",\"model\":\"");
            escape_json(&tree.model, &mut out);
            out.push_str("\",\"endpoint\":\"");
            escape_json(&tree.endpoint, &mut out);
            out.push_str("\",\"success\":");
            out.push_str(if tree.success { "true" } else { "false" });
            out.push_str(",\"cached\":");
            out.push_str(if tree.cached { "true" } else { "false" });
            out.push_str("}}");
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn tree(id: u64, tenant: &str, endpoint: &str, phases: &[(Phase, u64, u64)]) -> SpanTree {
        let mut spans = vec![Span {
            phase: Phase::Request,
            start: t(phases.first().map(|p| p.1).unwrap_or(0)),
            end: t(phases.last().map(|p| p.2).unwrap_or(0)),
            parent: None,
        }];
        spans.extend(phases.iter().map(|&(phase, s, e)| Span {
            phase,
            start: t(s),
            end: t(e),
            parent: Some(0),
        }));
        SpanTree {
            request_id: id,
            tenant: tenant.to_string(),
            model: "m".to_string(),
            endpoint: endpoint.to_string(),
            success: true,
            cached: false,
            spans,
        }
    }

    #[test]
    fn default_config_is_off_and_samples_nothing() {
        let mut rec = FlightRecorder::new(TraceConfig::default());
        assert!(!rec.enabled());
        for _ in 0..100 {
            assert!(!rec.should_sample());
        }
        rec.record(tree(1, "a", "e", &[(Phase::Prefill, 0, 10)]));
        assert!(rec.is_empty());
    }

    #[test]
    fn sampling_is_one_in_n_starting_with_the_first() {
        let mut rec = FlightRecorder::new(TraceConfig {
            sample_every: 3,
            capacity: 8,
        });
        let picks: Vec<bool> = (0..7).map(|_| rec.should_sample()).collect();
        assert_eq!(picks, [true, false, false, true, false, false, true]);
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut rec = FlightRecorder::new(TraceConfig {
            sample_every: 1,
            capacity: 2,
        });
        for id in 0..5 {
            rec.record(tree(id, "a", "e", &[(Phase::Decode, 0, 10)]));
        }
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.sampled(), 5);
        assert_eq!(rec.dropped(), 3);
        let ids: Vec<u64> = rec.trees().map(|t| t.request_id).collect();
        assert_eq!(ids, [3, 4]);
    }

    #[test]
    fn well_formed_checks_nesting_and_ordering() {
        let good = tree(
            1,
            "a",
            "e",
            &[(Phase::QueueWait, 0, 5), (Phase::Prefill, 5, 20)],
        );
        assert!(good.well_formed());
        assert_eq!(good.end_to_end_micros(), 20);
        assert_eq!(good.phase_total_micros(), 20);
        assert_eq!(good.idle_micros(), 0);

        let mut escapes_root = good.clone();
        escapes_root.spans[2].end = t(99); // child past root end
        assert!(!escapes_root.well_formed());

        let mut reversed = good.clone();
        reversed.spans[1].end = t(0);
        reversed.spans[1].start = t(5);
        assert!(!reversed.well_formed());
    }

    #[test]
    fn breakdown_groups_by_tenant_and_endpoint_with_critical_path() {
        let trees = [
            tree(
                1,
                "alice",
                "ep-a",
                &[(Phase::QueueWait, 0, 10), (Phase::Decode, 10, 110)],
            ),
            tree(
                2,
                "bob",
                "ep-b",
                &[(Phase::QueueWait, 0, 50), (Phase::Decode, 50, 70)],
            ),
        ];
        let bd = PhaseBreakdown::from_trees(trees.iter(), 2, 0);
        assert_eq!(bd.sampled, 2);
        assert_eq!(bd.by_tenant.len(), 2);
        assert_eq!(bd.by_tenant[0].name, "alice");
        assert_eq!(bd.by_endpoint.len(), 2);
        let decode = bd
            .by_phase
            .iter()
            .find(|s| s.phase == Phase::Decode)
            .unwrap();
        assert_eq!(decode.count, 2);
        assert!((decode.total_s - 120e-6).abs() < 1e-12);
        // decode dominated request 1, queue-wait dominated request 2.
        assert_eq!(bd.critical_path.len(), 2);
        assert!(bd
            .critical_path
            .iter()
            .any(|e| e.phase == Phase::Decode && e.requests == 1));
        let share: f64 = bd.critical_path.iter().map(|e| e.time_share).sum();
        assert!((share - 1.0).abs() < 1e-9);
    }

    #[test]
    fn chrome_trace_is_valid_shape_and_deterministic() {
        let trees = [tree(7, "alice \"quoted\"", "ep", &[(Phase::Prefill, 3, 9)])];
        let a = chrome_trace_json(trees.iter());
        let b = chrome_trace_json(trees.iter());
        assert_eq!(a, b);
        assert!(a.starts_with("{\"displayTimeUnit\""));
        assert!(a.contains("\"ph\":\"X\""));
        assert!(a.contains("\\\"quoted\\\""));
        assert!(a.contains("\"tid\":7"));
        // The exporter's output must be real JSON: lean on the dev-dep
        // parser to prove it round-trips.
        let value = serde_json::parse_value_complete(&a).expect("parses");
        let events = value
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        assert_eq!(events.len(), 2);
    }

    #[test]
    fn empty_breakdown_is_empty() {
        let bd = PhaseBreakdown::from_trees(std::iter::empty(), 0, 0);
        assert!(bd.is_empty());
        assert!(bd.critical_path.is_empty());
    }
}
