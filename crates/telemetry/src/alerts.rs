//! Threshold alerting over the metric registry.
//!
//! The paper's future work commits to "enhance monitoring for deeper
//! insights" and to operational hardening (§7); the deployment section
//! describes administrators watching queue depth, hot-node counts and error
//! rates. This module provides the minimal alerting layer those workflows
//! need: declarative threshold rules evaluated against gauge/counter series,
//! with a `for`-duration so transient spikes do not page anyone.

use crate::metric::LabelSet;
use crate::registry::MetricRegistry;
use first_desim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// How urgent a fired alert is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AlertSeverity {
    /// Informational — shown on the dashboard only.
    Info,
    /// Warning — investigate during working hours.
    Warning,
    /// Critical — page the on-call administrator.
    Critical,
}

/// The comparison a rule applies to the observed value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Comparison {
    /// Fire when the value is strictly greater than the threshold.
    GreaterThan,
    /// Fire when the value is strictly less than the threshold.
    LessThan,
}

/// A declarative alert rule over one gauge or counter series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlertRule {
    /// Rule name, e.g. `queue_backlog_high`.
    pub name: String,
    /// Metric family the rule watches.
    pub metric: String,
    /// Label set selecting the series.
    pub labels: LabelSet,
    /// Comparison direction.
    pub comparison: Comparison,
    /// Threshold value.
    pub threshold: f64,
    /// The condition must hold continuously for this long before firing.
    pub hold_for: SimDuration,
    /// Severity attached to the fired alert.
    pub severity: AlertSeverity,
}

impl AlertRule {
    /// Convenience constructor for a "value above threshold" rule.
    pub fn above(
        name: impl Into<String>,
        metric: impl Into<String>,
        labels: LabelSet,
        threshold: f64,
        hold_for: SimDuration,
        severity: AlertSeverity,
    ) -> Self {
        AlertRule {
            name: name.into(),
            metric: metric.into(),
            labels,
            comparison: Comparison::GreaterThan,
            threshold,
            hold_for,
            severity,
        }
    }

    /// Convenience constructor for a "value below threshold" rule.
    pub fn below(
        name: impl Into<String>,
        metric: impl Into<String>,
        labels: LabelSet,
        threshold: f64,
        hold_for: SimDuration,
        severity: AlertSeverity,
    ) -> Self {
        AlertRule {
            name: name.into(),
            metric: metric.into(),
            labels,
            comparison: Comparison::LessThan,
            threshold,
            hold_for,
            severity,
        }
    }

    fn condition_holds(&self, value: f64) -> bool {
        match self.comparison {
            Comparison::GreaterThan => value > self.threshold,
            Comparison::LessThan => value < self.threshold,
        }
    }
}

/// The lifecycle state of one rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlertState {
    /// Condition not met.
    Ok,
    /// Condition met but not yet for `hold_for`.
    Pending,
    /// Condition has held for at least `hold_for`.
    Firing,
}

/// A fired alert, as delivered to the operator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FiredAlert {
    /// Rule name.
    pub rule: String,
    /// Severity.
    pub severity: AlertSeverity,
    /// Value observed when the alert fired.
    pub value: f64,
    /// Virtual time at which the alert fired.
    pub fired_at: SimTime,
}

#[derive(Debug, Clone)]
struct RuleRuntime {
    rule: AlertRule,
    state: AlertState,
    pending_since: Option<SimTime>,
}

/// Evaluates a set of alert rules against a registry as virtual time advances.
#[derive(Debug, Clone, Default)]
pub struct Alerting {
    rules: Vec<RuleRuntime>,
    fired: Vec<FiredAlert>,
}

impl Alerting {
    /// An evaluator with no rules.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a rule.
    pub fn add_rule(&mut self, rule: AlertRule) {
        self.rules.push(RuleRuntime {
            rule,
            state: AlertState::Ok,
            pending_since: None,
        });
    }

    /// Number of configured rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// The current state of a rule by name.
    pub fn state(&self, rule: &str) -> Option<AlertState> {
        self.rules
            .iter()
            .find(|r| r.rule.name == rule)
            .map(|r| r.state)
    }

    /// Alerts fired so far (in firing order).
    pub fn fired(&self) -> &[FiredAlert] {
        &self.fired
    }

    /// Evaluate every rule against the registry at virtual time `now`.
    /// Returns the alerts that transitioned to firing during this evaluation.
    pub fn evaluate(&mut self, registry: &MetricRegistry, now: SimTime) -> Vec<FiredAlert> {
        let mut newly_fired = Vec::new();
        for runtime in &mut self.rules {
            let value = match lookup(registry, &runtime.rule) {
                Some(v) => v,
                None => {
                    runtime.state = AlertState::Ok;
                    runtime.pending_since = None;
                    continue;
                }
            };
            if runtime.rule.condition_holds(value) {
                let since = *runtime.pending_since.get_or_insert(now);
                let held = now.saturating_since(since);
                if held >= runtime.rule.hold_for {
                    if runtime.state != AlertState::Firing {
                        let alert = FiredAlert {
                            rule: runtime.rule.name.clone(),
                            severity: runtime.rule.severity,
                            value,
                            fired_at: now,
                        };
                        self.fired.push(alert.clone());
                        newly_fired.push(alert);
                    }
                    runtime.state = AlertState::Firing;
                } else {
                    runtime.state = AlertState::Pending;
                }
            } else {
                runtime.state = AlertState::Ok;
                runtime.pending_since = None;
            }
        }
        newly_fired
    }
}

fn lookup(registry: &MetricRegistry, rule: &AlertRule) -> Option<f64> {
    // Gauges first (the common case), then counters; a missing series is
    // treated as "no data" rather than zero so a not-yet-created metric does
    // not spuriously fire a LessThan rule.
    let snapshot = registry.snapshot();
    snapshot.find(&rule.metric, &rule.labels).map(|s| match s {
        crate::registry::MetricSnapshot::Counter { value, .. } => *value as f64,
        crate::registry::MetricSnapshot::Gauge { value, .. } => *value,
        crate::registry::MetricSnapshot::Histogram { count, sum, .. } => {
            if *count == 0 {
                0.0
            } else {
                sum / *count as f64
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queue_rule(hold_secs: u64) -> AlertRule {
        AlertRule::above(
            "queue_backlog_high",
            "first_queued_tasks",
            LabelSet::single("endpoint", "sophia-endpoint"),
            1000.0,
            SimDuration::from_secs(hold_secs),
            AlertSeverity::Warning,
        )
    }

    #[test]
    fn alert_fires_only_after_the_hold_duration() {
        let reg = MetricRegistry::new();
        let labels = LabelSet::single("endpoint", "sophia-endpoint");
        let mut alerting = Alerting::new();
        alerting.add_rule(queue_rule(60));

        reg.set_gauge("first_queued_tasks", labels.clone(), 5000.0);
        assert!(alerting.evaluate(&reg, SimTime::from_secs(0)).is_empty());
        assert_eq!(
            alerting.state("queue_backlog_high"),
            Some(AlertState::Pending)
        );
        assert!(alerting.evaluate(&reg, SimTime::from_secs(30)).is_empty());
        let fired = alerting.evaluate(&reg, SimTime::from_secs(61));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].rule, "queue_backlog_high");
        assert_eq!(fired[0].severity, AlertSeverity::Warning);
        assert_eq!(
            alerting.state("queue_backlog_high"),
            Some(AlertState::Firing)
        );
        // Already firing: no duplicate notification.
        assert!(alerting.evaluate(&reg, SimTime::from_secs(120)).is_empty());
        assert_eq!(alerting.fired().len(), 1);
    }

    #[test]
    fn alert_resets_when_the_condition_clears() {
        let reg = MetricRegistry::new();
        let labels = LabelSet::single("endpoint", "sophia-endpoint");
        let mut alerting = Alerting::new();
        alerting.add_rule(queue_rule(60));

        reg.set_gauge("first_queued_tasks", labels.clone(), 5000.0);
        alerting.evaluate(&reg, SimTime::from_secs(0));
        // Backlog drains before the hold duration elapses.
        reg.set_gauge("first_queued_tasks", labels.clone(), 10.0);
        alerting.evaluate(&reg, SimTime::from_secs(30));
        assert_eq!(alerting.state("queue_backlog_high"), Some(AlertState::Ok));
        // It spikes again: the hold timer restarts.
        reg.set_gauge("first_queued_tasks", labels, 5000.0);
        assert!(alerting.evaluate(&reg, SimTime::from_secs(40)).is_empty());
        assert!(alerting.evaluate(&reg, SimTime::from_secs(70)).is_empty());
        assert_eq!(alerting.evaluate(&reg, SimTime::from_secs(101)).len(), 1);
    }

    #[test]
    fn below_rules_and_missing_series() {
        let reg = MetricRegistry::new();
        let mut alerting = Alerting::new();
        alerting.add_rule(AlertRule::below(
            "no_hot_nodes",
            "first_hot_nodes",
            LabelSet::empty(),
            1.0,
            SimDuration::ZERO,
            AlertSeverity::Critical,
        ));
        // Series absent: no data, no alert.
        assert!(alerting.evaluate(&reg, SimTime::from_secs(0)).is_empty());
        assert_eq!(alerting.state("no_hot_nodes"), Some(AlertState::Ok));
        // Zero hot nodes: fires immediately (hold_for = 0).
        reg.set_gauge("first_hot_nodes", LabelSet::empty(), 0.0);
        let fired = alerting.evaluate(&reg, SimTime::from_secs(1));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].severity, AlertSeverity::Critical);
        // Nodes come back: state returns to Ok.
        reg.set_gauge("first_hot_nodes", LabelSet::empty(), 2.0);
        alerting.evaluate(&reg, SimTime::from_secs(2));
        assert_eq!(alerting.state("no_hot_nodes"), Some(AlertState::Ok));
    }

    #[test]
    fn severity_ordering_supports_triage() {
        assert!(AlertSeverity::Critical > AlertSeverity::Warning);
        assert!(AlertSeverity::Warning > AlertSeverity::Info);
    }
}
