//! Rolling windows and sampled resource timelines.
//!
//! Two time-shaped views the dashboard needs on top of plain counters:
//!
//! * [`RollingWindow`] — "requests per second over the last minute", "tokens
//!   per second over the last five minutes": a window of timestamped
//!   observations that expires old points as virtual time advances.
//! * [`ResourceTimeline`] — periodic samples of a resource level (busy nodes,
//!   queued jobs, hot instances) that can be downsampled for plotting and
//!   integrated for utilisation summaries.

use first_desim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A timestamped observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimePoint {
    /// When the observation was made.
    pub at: SimTime,
    /// The observed value.
    pub value: f64,
}

/// A sliding window of timestamped observations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RollingWindow {
    width: SimDuration,
    points: VecDeque<TimePoint>,
}

impl RollingWindow {
    /// A window covering the trailing `width` of virtual time.
    pub fn new(width: SimDuration) -> Self {
        RollingWindow {
            width,
            points: VecDeque::new(),
        }
    }

    /// A one-minute window.
    pub fn one_minute() -> Self {
        Self::new(SimDuration::from_secs(60))
    }

    /// Record an observation at `now` and expire anything older than the
    /// window. Observations must be recorded in non-decreasing time order;
    /// out-of-order points are clamped to the latest time seen.
    pub fn record(&mut self, now: SimTime, value: f64) {
        let at = match self.points.back() {
            Some(last) if now < last.at => last.at,
            _ => now,
        };
        self.points.push_back(TimePoint { at, value });
        self.expire(at);
    }

    /// Drop points that have fallen out of the window as of `now`.
    pub fn expire(&mut self, now: SimTime) {
        while let Some(front) = self.points.front() {
            if now.saturating_since(front.at) > self.width {
                self.points.pop_front();
            } else {
                break;
            }
        }
    }

    /// Number of points currently inside the window.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Sum of the values currently in the window.
    pub fn sum(&self) -> f64 {
        self.points.iter().map(|p| p.value).sum()
    }

    /// Mean of the values currently in the window (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            0.0
        } else {
            self.sum() / self.points.len() as f64
        }
    }

    /// Events per second: points in the window divided by the window width.
    /// This is what the dashboard reports as "request rate (last 60 s)".
    pub fn rate_per_second(&self) -> f64 {
        let secs = self.width.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.points.len() as f64 / secs
        }
    }

    /// Value-weighted throughput per second: sum of values divided by the
    /// window width ("output tokens per second over the last minute").
    pub fn throughput_per_second(&self) -> f64 {
        let secs = self.width.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.sum() / secs
        }
    }

    /// The window width.
    pub fn width(&self) -> SimDuration {
        self.width
    }
}

/// Periodic samples of a resource level over the whole run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ResourceTimeline {
    samples: Vec<TimePoint>,
}

impl ResourceTimeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a sample; out-of-order samples are rejected (returns `false`).
    pub fn sample(&mut self, at: SimTime, value: f64) -> bool {
        if let Some(last) = self.samples.last() {
            if at < last.at {
                return false;
            }
        }
        self.samples.push(TimePoint { at, value });
        true
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the timeline has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// All samples in time order.
    pub fn samples(&self) -> &[TimePoint] {
        &self.samples
    }

    /// Peak sampled value (0 when empty).
    pub fn peak(&self) -> f64 {
        self.samples.iter().map(|p| p.value).fold(0.0, f64::max)
    }

    /// Time-weighted average level between the first and last sample, using
    /// step interpolation (the level holds until the next sample). Returns 0
    /// with fewer than two samples.
    pub fn time_weighted_mean(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let mut weighted = 0.0;
        for pair in self.samples.windows(2) {
            let dt = (pair[1].at - pair[0].at).as_secs_f64();
            weighted += pair[0].value * dt;
        }
        let span = (self.samples.last().unwrap().at - self.samples[0].at).as_secs_f64();
        if span == 0.0 {
            0.0
        } else {
            weighted / span
        }
    }

    /// Downsample to at most `max_points` by keeping every k-th sample plus
    /// the final one — enough fidelity for a terminal plot of a long replay.
    pub fn downsample(&self, max_points: usize) -> Vec<TimePoint> {
        if max_points == 0 || self.samples.is_empty() {
            return Vec::new();
        }
        if self.samples.len() <= max_points {
            return self.samples.clone();
        }
        let stride = self.samples.len().div_ceil(max_points);
        let mut out: Vec<TimePoint> = self.samples.iter().step_by(stride).copied().collect();
        let last = *self.samples.last().unwrap();
        if out.last().map(|p| p.at) != Some(last.at) {
            out.push(last);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn window_expires_old_points() {
        let mut w = RollingWindow::one_minute();
        w.record(t(0), 100.0);
        w.record(t(30), 100.0);
        w.record(t(59), 100.0);
        assert_eq!(w.len(), 3);
        // At t=90 the t=0 point (age 90 s) is outside the 60 s window.
        w.record(t(90), 100.0);
        assert_eq!(w.len(), 3);
        assert_eq!(w.sum(), 300.0);
        assert!((w.rate_per_second() - 3.0 / 60.0).abs() < 1e-9);
        assert!((w.throughput_per_second() - 300.0 / 60.0).abs() < 1e-9);
    }

    #[test]
    fn window_handles_out_of_order_points_by_clamping() {
        let mut w = RollingWindow::new(SimDuration::from_secs(10));
        w.record(t(100), 1.0);
        // An out-of-order record is clamped to the latest time, not dropped.
        w.record(t(50), 2.0);
        assert_eq!(w.len(), 2);
        assert_eq!(w.mean(), 1.5);
    }

    #[test]
    fn empty_window_rates_are_zero() {
        let w = RollingWindow::one_minute();
        assert!(w.is_empty());
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.rate_per_second(), 0.0);
    }

    #[test]
    fn timeline_rejects_out_of_order_samples() {
        let mut tl = ResourceTimeline::new();
        assert!(tl.sample(t(10), 4.0));
        assert!(tl.sample(t(20), 8.0));
        assert!(!tl.sample(t(15), 6.0));
        assert_eq!(tl.len(), 2);
        assert_eq!(tl.peak(), 8.0);
    }

    #[test]
    fn time_weighted_mean_uses_step_interpolation() {
        let mut tl = ResourceTimeline::new();
        // 4 nodes busy for 10 s, then 8 nodes busy for 30 s.
        tl.sample(t(0), 4.0);
        tl.sample(t(10), 8.0);
        tl.sample(t(40), 8.0);
        let mean = tl.time_weighted_mean();
        let expected = (4.0 * 10.0 + 8.0 * 30.0) / 40.0;
        assert!((mean - expected).abs() < 1e-9, "{mean} vs {expected}");
    }

    #[test]
    fn downsample_keeps_endpoints_and_bounds_length() {
        let mut tl = ResourceTimeline::new();
        for i in 0..1000 {
            tl.sample(t(i), i as f64);
        }
        let ds = tl.downsample(50);
        assert!(ds.len() <= 51, "{}", ds.len());
        assert_eq!(ds.first().unwrap().at, t(0));
        assert_eq!(ds.last().unwrap().at, t(999));
        // Order is preserved.
        assert!(ds.windows(2).all(|p| p[0].at <= p[1].at));
        // Degenerate cases.
        assert!(tl.downsample(0).is_empty());
        assert_eq!(tl.downsample(5000).len(), 1000);
    }
}
