//! Counters and gauges.
//!
//! Counters are monotonically increasing (`inc`/`add` only); gauges move in
//! both directions and additionally remember their high-water mark, which is
//! what the dashboard reports for "peak concurrent requests" and "peak busy
//! nodes".

use serde::{Deserialize, Serialize};

/// A monotonically increasing counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment by one.
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Increment by `delta`.
    pub fn add(&mut self, delta: u64) {
        self.value += delta;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value
    }

    /// Merge another counter into this one (sums).
    pub fn merge(&mut self, other: &Counter) {
        self.value += other.value;
    }
}

/// A point-in-time gauge with a retained high-water mark.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Gauge {
    value: f64,
    peak: f64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the gauge to an absolute value.
    pub fn set(&mut self, value: f64) {
        self.value = value;
        if value > self.peak {
            self.peak = value;
        }
    }

    /// Add `delta` (may be negative).
    pub fn add(&mut self, delta: f64) {
        self.set(self.value + delta);
    }

    /// Increment by one.
    pub fn inc(&mut self) {
        self.add(1.0);
    }

    /// Decrement by one. The gauge may legitimately go negative (e.g. a
    /// balance), so no clamping is applied; callers that track occupancy
    /// should never release more than they acquired.
    pub fn dec(&mut self) {
        self.add(-1.0);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        self.value
    }

    /// Highest value ever set.
    pub fn peak(&self) -> f64 {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let mut other = Counter::new();
        other.add(8);
        c.merge(&other);
        assert_eq!(c.get(), 50);
    }

    #[test]
    fn gauge_tracks_value_and_peak() {
        let mut g = Gauge::new();
        g.set(3.0);
        g.inc();
        assert_eq!(g.get(), 4.0);
        assert_eq!(g.peak(), 4.0);
        g.dec();
        g.dec();
        assert_eq!(g.get(), 2.0);
        // Peak is sticky.
        assert_eq!(g.peak(), 4.0);
        g.set(10.5);
        assert_eq!(g.peak(), 10.5);
    }

    #[test]
    fn gauge_may_go_negative() {
        let mut g = Gauge::new();
        g.add(-2.5);
        assert_eq!(g.get(), -2.5);
        assert_eq!(g.peak(), 0.0);
    }
}
