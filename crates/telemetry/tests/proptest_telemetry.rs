//! Property-based tests for the monitoring substrate's core invariants.

use first_desim::{SimDuration, SimTime};
use first_telemetry::{BucketHistogram, LabelSet, MetricRegistry, ResourceTimeline, RollingWindow};
use proptest::prelude::*;

proptest! {
    /// Every observation lands in exactly one bucket: the +Inf cumulative
    /// count always equals the number of observations, and cumulative counts
    /// are monotone over the bucket bounds.
    #[test]
    fn histogram_conserves_observations(values in proptest::collection::vec(0.0f64..1e6, 1..200)) {
        let mut h = BucketHistogram::latency_seconds();
        for &v in &values {
            h.observe(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        let rows = h.cumulative_buckets();
        prop_assert_eq!(rows.last().unwrap().1, values.len() as u64);
        for pair in rows.windows(2) {
            prop_assert!(pair[0].1 <= pair[1].1);
        }
        let sum: f64 = values.iter().sum();
        prop_assert!((h.sum() - sum).abs() < 1e-6 * sum.max(1.0));
    }

    /// Quantile estimates are monotone in q and bounded by the observed
    /// min/max.
    #[test]
    fn histogram_quantiles_are_monotone(values in proptest::collection::vec(0.001f64..1e5, 2..300)) {
        let mut h = BucketHistogram::latency_seconds();
        for &v in &values {
            h.observe(v);
        }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0];
        let mut last = f64::NEG_INFINITY;
        for &q in &qs {
            let est = h.quantile(q);
            prop_assert!(est >= last - 1e-9, "quantile({q}) = {est} < {last}");
            prop_assert!(est >= h.min() - 1e-9 && est <= h.max() + 1e-9);
            last = est;
        }
    }

    /// Merging two histograms is equivalent to observing the union of their
    /// samples (counts, sums and bucket rows all agree).
    #[test]
    fn histogram_merge_matches_union(
        a in proptest::collection::vec(0.0f64..1e4, 0..100),
        b in proptest::collection::vec(0.0f64..1e4, 0..100),
    ) {
        let mut ha = BucketHistogram::latency_seconds();
        let mut hb = BucketHistogram::latency_seconds();
        let mut hu = BucketHistogram::latency_seconds();
        for &v in &a {
            ha.observe(v);
            hu.observe(v);
        }
        for &v in &b {
            hb.observe(v);
            hu.observe(v);
        }
        prop_assert!(ha.merge(&hb));
        prop_assert_eq!(ha.count(), hu.count());
        prop_assert!((ha.sum() - hu.sum()).abs() < 1e-6);
        prop_assert_eq!(ha.cumulative_buckets(), hu.cumulative_buckets());
    }

    /// A rolling window never retains a point older than its width, and its
    /// sum equals the sum of the retained points.
    #[test]
    fn rolling_window_retains_only_recent_points(
        offsets in proptest::collection::vec(0u64..10_000, 1..200),
        width_s in 1u64..600,
    ) {
        let mut times = offsets.clone();
        times.sort_unstable();
        let width = SimDuration::from_secs(width_s);
        let mut w = RollingWindow::new(width);
        for &t in &times {
            w.record(SimTime::from_secs(t), 1.0);
        }
        let now = *times.last().unwrap();
        let retained = times.iter().filter(|&&t| now - t <= width_s).count();
        prop_assert_eq!(w.len(), retained);
        prop_assert!((w.sum() - retained as f64).abs() < 1e-9);
    }

    /// The time-weighted mean of a timeline lies between the minimum and
    /// maximum sampled values.
    #[test]
    fn timeline_mean_is_bounded(samples in proptest::collection::vec((0u64..100_000, 0.0f64..500.0), 2..100)) {
        let mut sorted = samples.clone();
        sorted.sort_by_key(|(t, _)| *t);
        let mut tl = ResourceTimeline::new();
        for &(t, v) in &sorted {
            tl.sample(SimTime::from_secs(t), v);
        }
        if tl.samples().last().unwrap().at == tl.samples()[0].at {
            return Ok(()); // all samples at the same instant: mean is defined as 0
        }
        let mean = tl.time_weighted_mean();
        let min = sorted.iter().map(|(_, v)| *v).fold(f64::INFINITY, f64::min);
        let max = sorted.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
        prop_assert!(mean >= min - 1e-9 && mean <= max + 1e-9, "{mean} not in [{min}, {max}]");
    }

    /// Counter totals in a snapshot equal the sum of all increments, however
    /// they are split across label sets.
    #[test]
    fn registry_counter_totals_are_conserved(increments in proptest::collection::vec((0u8..4, 1u64..100), 1..100)) {
        let reg = MetricRegistry::new();
        let mut expected = 0u64;
        for &(label, delta) in &increments {
            reg.add_counter(
                "first_requests_total",
                LabelSet::single("model", format!("model-{label}")),
                delta,
            );
            expected += delta;
        }
        let snap = reg.snapshot();
        prop_assert_eq!(snap.counter_family_total("first_requests_total"), expected);
    }
}
