//! Endpoint configuration (§3.2.2).
//!
//! Each Globus Compute endpoint is configured independently by the facility
//! administrators: which models it hosts, how many GPUs each instance uses,
//! how far each model may auto-scale, how many inference tasks may run in
//! parallel on one instance, and how long warm nodes are retained.

use first_desim::SimDuration;
use first_hpc::GpuModel;
use first_serving::{EngineConfig, ModelKind, ModelSpec, PerfModel};
use serde::{Deserialize, Serialize};

/// Per-model serving configuration on one endpoint.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelHostingConfig {
    /// The model served.
    pub model: ModelSpec,
    /// GPUs per instance (tensor-parallel degree).
    pub gpus_per_instance: u32,
    /// Nodes per instance (>1 only for models that do not fit on one node).
    pub nodes_per_instance: u32,
    /// Maximum simultaneously running instances (auto-scaling ceiling).
    pub max_instances: u32,
    /// Maximum parallel inference tasks per instance (§3.2.2 "Auto-scaling").
    pub max_parallel_tasks: usize,
    /// In-flight tasks per instance beyond which another instance is launched.
    pub scale_up_threshold: usize,
    /// Walltime requested for each instance's batch job.
    pub job_walltime: SimDuration,
    /// Idle period after which a warm instance is released (§3.2.2: 2 hours).
    pub idle_timeout: SimDuration,
}

impl ModelHostingConfig {
    /// Sensible defaults for a model at its recommended TP on the given GPU,
    /// assuming DGX-style 8-GPU nodes (Sophia).
    pub fn new(model: ModelSpec, gpu: GpuModel) -> Self {
        Self::for_node_size(model, gpu, 8)
    }

    /// Defaults for a cluster whose nodes carry `gpus_per_node` GPUs: the
    /// model's tensor-parallel group is spread over as many nodes as needed
    /// (e.g. a TP=8 Llama 70B instance is 1×8 GPUs on Sophia but 2×4 GPUs on
    /// Polaris). Endpoints are "configured independently … with the specific
    /// models selected according to their size and the available compute
    /// nodes" (§3.2.1).
    pub fn for_node_size(model: ModelSpec, gpu: GpuModel, gpus_per_node: u32) -> Self {
        let gpus_per_node = gpus_per_node.max(1);
        let tp = model.min_gpus(gpu.vram_gb());
        let nodes = tp.div_ceil(gpus_per_node).max(1);
        ModelHostingConfig {
            gpus_per_instance: tp.min(gpus_per_node),
            nodes_per_instance: nodes,
            max_instances: 1,
            max_parallel_tasks: 200,
            scale_up_threshold: 220,
            job_walltime: SimDuration::from_hours(12),
            idle_timeout: SimDuration::from_hours(2),
            model,
        }
    }

    /// Set the auto-scaling ceiling.
    pub fn with_max_instances(mut self, n: u32) -> Self {
        self.max_instances = n.max(1);
        self
    }

    /// Set the per-instance parallel task limit. The scale-up threshold is
    /// kept slightly above the limit so another instance is launched once the
    /// backlog exceeds what the existing instances can absorb.
    pub fn with_max_parallel_tasks(mut self, n: usize) -> Self {
        self.max_parallel_tasks = n.max(1);
        self.scale_up_threshold = self.max_parallel_tasks + self.max_parallel_tasks / 10 + 1;
        self
    }

    /// Set the warm-node idle timeout.
    pub fn with_idle_timeout(mut self, d: SimDuration) -> Self {
        self.idle_timeout = d;
        self
    }

    /// Whether this hosting entry serves an embedding model.
    pub fn is_embedding(&self) -> bool {
        self.model.kind == ModelKind::Embedding
    }

    /// Build the engine configuration for one instance on the given GPU type.
    pub fn engine_config(&self, gpu: GpuModel) -> EngineConfig {
        EngineConfig {
            model: self.model.clone(),
            gpu,
            tensor_parallel: self.gpus_per_instance * self.nodes_per_instance,
            gpus_total: self.gpus_per_instance * self.nodes_per_instance,
            nodes: self.nodes_per_instance,
            max_num_seqs: 256,
            gpu_memory_utilization: 0.90,
            perf: PerfModel::default(),
        }
    }
}

/// Latency/overhead model of the Globus Compute service path.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FabricLatencyModel {
    /// Client → cloud-service submission latency.
    pub client_to_service: SimDuration,
    /// Serial per-task dispatch cost inside the cloud service. This is the
    /// routing capacity the paper identifies as the scaling limiter ("limited
    /// by the ability of Globus Compute to scale and route requests"):
    /// 1 / cost ≈ 25–26 tasks/s.
    pub service_dispatch_cost: SimDuration,
    /// Cloud service → endpoint delivery latency.
    pub service_to_endpoint: SimDuration,
    /// Endpoint → cloud service result relay latency.
    pub endpoint_to_service: SimDuration,
    /// Cloud service → client result delivery latency (futures mode).
    pub service_to_client: SimDuration,
}

impl Default for FabricLatencyModel {
    fn default() -> Self {
        FabricLatencyModel {
            client_to_service: SimDuration::from_millis(300),
            service_dispatch_cost: SimDuration::from_millis(40),
            service_to_endpoint: SimDuration::from_millis(2200),
            endpoint_to_service: SimDuration::from_millis(2200),
            service_to_client: SimDuration::from_millis(300),
        }
    }
}

impl FabricLatencyModel {
    /// One-way overhead excluding execution (submission → start of execution
    /// plus result return), i.e. the extra latency FIRST adds over direct
    /// access when the system is unloaded.
    pub fn round_trip_overhead(&self) -> SimDuration {
        self.client_to_service
            + self.service_dispatch_cost
            + self.service_to_endpoint
            + self.endpoint_to_service
            + self.service_to_client
    }

    /// The service-side routing capacity in tasks/second.
    pub fn dispatch_capacity(&self) -> f64 {
        1.0 / self.service_dispatch_cost.as_secs_f64().max(1e-9)
    }
}

/// Configuration of one compute endpoint.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EndpointConfig {
    /// Endpoint name (unique within the deployment), e.g. `"sophia-endpoint"`.
    pub name: String,
    /// Cluster the endpoint runs on.
    pub cluster: String,
    /// GPU type of the cluster's nodes.
    pub gpu: GpuModel,
    /// Models hosted by this endpoint.
    pub models: Vec<ModelHostingConfig>,
    /// Whether failed instances are automatically restarted (§3.2.2 "Fault
    /// Tolerance").
    pub auto_restart: bool,
}

impl EndpointConfig {
    /// An endpoint with no hosted models.
    pub fn new(name: &str, cluster: &str, gpu: GpuModel) -> Self {
        EndpointConfig {
            name: name.to_string(),
            cluster: cluster.to_string(),
            gpu,
            models: Vec::new(),
            auto_restart: true,
        }
    }

    /// Add a hosted model.
    pub fn host(mut self, model: ModelHostingConfig) -> Self {
        self.models.push(model);
        self
    }

    /// Find the hosting entry for a model name.
    pub fn hosting_for(&self, model: &str) -> Option<&ModelHostingConfig> {
        self.models.iter().find(|m| m.model.name == model)
    }

    /// Resolve a model name to its hosting-entry index — the endpoint-local
    /// interned id the hot paths carry instead of the name. Stable for the
    /// lifetime of the endpoint (hosting sets are fixed at deployment build).
    pub fn hosting_index(&self, model: &str) -> Option<usize> {
        self.models.iter().position(|m| m.model.name == model)
    }

    /// Whether the endpoint hosts the named model.
    pub fn hosts(&self, model: &str) -> bool {
        self.hosting_for(model).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use first_serving::find_model;

    #[test]
    fn defaults_match_paper_settings() {
        let cfg = ModelHostingConfig::new(find_model("llama-70b").unwrap(), GpuModel::A100_40);
        assert_eq!(cfg.gpus_per_instance, 8);
        assert_eq!(cfg.nodes_per_instance, 1);
        assert_eq!(cfg.idle_timeout, SimDuration::from_hours(2));
        let cfg8 = ModelHostingConfig::new(find_model("llama-8b").unwrap(), GpuModel::A100_40);
        assert_eq!(cfg8.gpus_per_instance, 4);
    }

    #[test]
    fn multi_node_models_span_nodes() {
        let cfg = ModelHostingConfig::new(find_model("llama-405b").unwrap(), GpuModel::A100_40);
        assert!(cfg.nodes_per_instance >= 2);
        let engine = cfg.engine_config(GpuModel::A100_40);
        assert!(engine.gpus_total >= 16);
    }

    #[test]
    fn node_size_aware_config_splits_the_tp_group_across_nodes() {
        // 70B needs 8 A100-40 GPUs: one Sophia DGX node, but two 4-GPU
        // Polaris nodes.
        let sophia = ModelHostingConfig::for_node_size(
            find_model("llama-70b").unwrap(),
            GpuModel::A100_40,
            8,
        );
        assert_eq!(
            (sophia.nodes_per_instance, sophia.gpus_per_instance),
            (1, 8)
        );
        let polaris = ModelHostingConfig::for_node_size(
            find_model("llama-70b").unwrap(),
            GpuModel::A100_40,
            4,
        );
        assert_eq!(
            (polaris.nodes_per_instance, polaris.gpus_per_instance),
            (2, 4)
        );
        // Total TP degree (and therefore the engine configuration) is the
        // same either way.
        assert_eq!(
            sophia.engine_config(GpuModel::A100_40).gpus_total,
            polaris.engine_config(GpuModel::A100_40).gpus_total
        );
    }

    #[test]
    fn builders_adjust_scaling_knobs() {
        let cfg = ModelHostingConfig::new(find_model("llama-70b").unwrap(), GpuModel::A100_40)
            .with_max_instances(4)
            .with_max_parallel_tasks(64)
            .with_idle_timeout(SimDuration::from_mins(30));
        assert_eq!(cfg.max_instances, 4);
        assert_eq!(cfg.max_parallel_tasks, 64);
        assert!(cfg.scale_up_threshold > 64);
        assert_eq!(cfg.idle_timeout, SimDuration::from_mins(30));
    }

    #[test]
    fn latency_model_routing_capacity() {
        let lat = FabricLatencyModel::default();
        let cap = lat.dispatch_capacity();
        assert!(cap > 20.0 && cap < 30.0, "capacity {cap}");
        assert!(lat.round_trip_overhead().as_secs_f64() > 4.0);
        assert!(lat.round_trip_overhead().as_secs_f64() < 8.0);
    }

    #[test]
    fn endpoint_config_lookup() {
        let ep = EndpointConfig::new("sophia-endpoint", "sophia", GpuModel::A100_40)
            .host(ModelHostingConfig::new(
                find_model("llama-70b").unwrap(),
                GpuModel::A100_40,
            ))
            .host(ModelHostingConfig::new(
                find_model("nv-embed-v2").unwrap(),
                GpuModel::A100_40,
            ));
        assert!(ep.hosts("meta-llama/Llama-3.3-70B-Instruct"));
        assert!(!ep.hosts("missing"));
        assert!(ep
            .hosting_for("nvidia/NV-Embed-v2")
            .map(|h| h.is_embedding())
            .unwrap_or(false));
    }
}
