//! Compute endpoint: the agent deployed on each HPC cluster (§3.2).
//!
//! The endpoint receives inference tasks from the cloud service, acquires
//! compute nodes through the cluster's batch scheduler, launches serving-
//! engine instances on them, keeps those instances warm between requests,
//! auto-scales additional instances when existing ones saturate, releases
//! resources after an extended idle period, and restarts failed instances —
//! all without human intervention.

use crate::config::{EndpointConfig, ModelHostingConfig};
use crate::task::{TaskId, TaskResult};
use first_desim::{IdHashBuilder, SimProcess, SimTime};
use first_hpc::{
    BatchScheduler, Cluster, ClusterStatus, JobId, JobPriority, JobRequest, JobState, NodeId,
};
use first_serving::{EmbeddingConfig, EmbeddingEngine, EngineState, InferenceRequest, VllmEngine};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// Serving backend held by an instance.
#[derive(Debug, Clone)]
enum InstanceBackend {
    /// Autoregressive LLM served by the vLLM-style engine (boxed: the engine
    /// carries its KV pool and batch state, far larger than the embedding
    /// variant, and instances are scanned densely every advance).
    Vllm(Box<VllmEngine>),
    /// Embedding model served by the Infinity-style engine.
    Embedding(EmbeddingEngine),
}

/// Lifecycle of a model instance on the endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InstanceState {
    /// Batch job submitted, waiting for node allocation.
    PendingJob,
    /// Nodes allocated; model weights loading.
    Loading,
    /// Serving ("hot").
    Ready,
    /// Released (idle timeout or shutdown).
    Released,
    /// Crashed; awaiting restart.
    Failed,
}

/// One running (or starting) serving instance of a model.
#[derive(Debug, Clone)]
pub struct ModelInstance {
    /// Instance identifier within the endpoint.
    pub id: u32,
    /// Model served.
    pub model: String,
    /// Scheduler job backing the instance.
    pub job: JobId,
    /// Current lifecycle state.
    pub state: InstanceState,
    /// Index of the hosting entry in the endpoint config — the interned form
    /// of `model`, so the per-advance scans compare integers, not strings.
    hosting: usize,
    backend: Option<InstanceBackend>,
    in_flight: Vec<TaskId>,
    last_active: SimTime,
}

impl ModelInstance {
    /// Number of tasks currently assigned to this instance.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Whether the instance is hot and serving.
    pub fn is_ready(&self) -> bool {
        self.state == InstanceState::Ready
    }
}

/// Endpoint statistics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EndpointStats {
    /// Tasks received from the service.
    pub tasks_received: u64,
    /// Tasks completed successfully.
    pub tasks_completed: u64,
    /// Tasks failed.
    pub tasks_failed: u64,
    /// Instances launched (including restarts).
    pub instances_launched: u64,
    /// Instances released by the idle-timeout policy.
    pub instances_released: u64,
    /// Automatic restarts after failure.
    pub restarts: u64,
    /// Output tokens generated across all instances.
    pub output_tokens: u64,
}

/// Per-model instance/backlog counts, without the owned model name: the
/// `Copy` payload of [`ComputeEndpoint::model_activity`], cheap enough for
/// the router to probe on every request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ModelActivity {
    /// Instances hot and serving.
    pub running: u32,
    /// Instances loading weights.
    pub starting: u32,
    /// Instances waiting for node allocation.
    pub queued: u32,
    /// Tasks waiting at the endpoint for a free slot.
    pub backlog: usize,
}

/// Hosted-model status summary exposed to the gateway's `/jobs` endpoint
/// (§4.3: "running", "starting" or "queued").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelStatus {
    /// Model name.
    pub model: String,
    /// Instances hot and serving.
    pub running: u32,
    /// Instances loading weights.
    pub starting: u32,
    /// Instances waiting for node allocation.
    pub queued: u32,
    /// Tasks waiting at the endpoint for a free slot.
    pub backlog: usize,
}

impl ModelStatus {
    /// The `/jobs` state string for this model.
    pub fn state_label(&self) -> &'static str {
        if self.running > 0 {
            "running"
        } else if self.starting > 0 {
            "starting"
        } else if self.queued > 0 {
            "queued"
        } else {
            "stopped"
        }
    }
}

/// A Globus-Compute-style endpoint bound to one cluster.
#[derive(Debug, Clone)]
pub struct ComputeEndpoint {
    config: EndpointConfig,
    scheduler: BatchScheduler,
    instances: Vec<ModelInstance>,
    /// Per-hosting-entry backlog, indexed like `config.models` (the endpoint's
    /// local model-id space). Replaces a `BTreeMap<String, _>` whose 40-byte
    /// model-name comparisons sat on every advance.
    waiting: Vec<VecDeque<(TaskId, InferenceRequest)>>,
    task_of_request: HashMap<u64, TaskId, IdHashBuilder>,
    results: Vec<TaskResult>,
    next_instance_id: u32,
    offline_until: Option<SimTime>,
    stats: EndpointStats,
    /// Next instant `assign_and_scale` can make progress without new external
    /// input (recomputed after each pass); quiet advances return immediately.
    next_wake: Option<SimTime>,
    /// Forces the next `assign_and_scale` to run a full pass; set by every
    /// external mutation (task received, prewarm, fault injection, …).
    dirty: bool,
}

impl ComputeEndpoint {
    /// Create an endpoint managing the given cluster.
    pub fn new(config: EndpointConfig, cluster: Cluster) -> Self {
        ComputeEndpoint {
            waiting: vec![VecDeque::new(); config.models.len()],
            config,
            scheduler: BatchScheduler::new(cluster),
            instances: Vec::new(),
            task_of_request: HashMap::default(),
            results: Vec::new(),
            next_instance_id: 0,
            offline_until: None,
            stats: EndpointStats::default(),
            next_wake: None,
            dirty: true,
        }
    }

    /// Endpoint name.
    pub fn name(&self) -> &str {
        &self.config.name
    }

    /// Cluster name this endpoint serves.
    pub fn cluster_name(&self) -> &str {
        &self.config.cluster
    }

    /// The endpoint configuration.
    pub fn config(&self) -> &EndpointConfig {
        &self.config
    }

    /// Endpoint statistics.
    pub fn stats(&self) -> &EndpointStats {
        &self.stats
    }

    /// Publicly visible status of the underlying cluster.
    pub fn cluster_status(&self) -> ClusterStatus {
        self.scheduler.cluster_status()
    }

    /// Direct access to the batch scheduler (tests and the cold-start bench).
    pub fn scheduler(&self) -> &BatchScheduler {
        &self.scheduler
    }

    /// Mutable access to the batch scheduler (to inject background load).
    pub fn scheduler_mut(&mut self) -> &mut BatchScheduler {
        self.dirty = true;
        &mut self.scheduler
    }

    /// All instances (running and historical).
    pub fn instances(&self) -> &[ModelInstance] {
        &self.instances
    }

    /// Drain completed task results.
    pub fn take_results(&mut self) -> Vec<TaskResult> {
        std::mem::take(&mut self.results)
    }

    /// Per-model instance/backlog counts without the owned model name — the
    /// allocation-free query the federation router probes on every routing
    /// decision (use [`ComputeEndpoint::model_status`] when the name is
    /// wanted too, e.g. for `/jobs`).
    pub fn model_activity(&self, model: &str) -> ModelActivity {
        match self.config.hosting_index(model) {
            Some(idx) => self.model_activity_at(idx),
            None => ModelActivity::default(),
        }
    }

    /// [`ComputeEndpoint::model_activity`] for a hosting entry already
    /// resolved to its index — the id-based probe the router uses per request.
    pub fn model_activity_at(&self, hosting: usize) -> ModelActivity {
        let mut activity = ModelActivity {
            running: 0,
            starting: 0,
            queued: 0,
            backlog: self.waiting.get(hosting).map(|q| q.len()).unwrap_or(0),
        };
        for inst in self.instances.iter().filter(|i| i.hosting == hosting) {
            match inst.state {
                InstanceState::Ready => activity.running += 1,
                InstanceState::Loading => activity.starting += 1,
                InstanceState::PendingJob => activity.queued += 1,
                _ => {}
            }
        }
        activity
    }

    /// In-flight tasks across this endpoint's instances of one hosting entry
    /// (the least-outstanding router policy's probe).
    pub fn model_in_flight_at(&self, hosting: usize) -> usize {
        self.instances
            .iter()
            .filter(|i| i.hosting == hosting)
            .map(|i| i.in_flight())
            .sum()
    }

    /// Per-model status for the `/jobs` endpoint.
    pub fn model_status(&self, model: &str) -> ModelStatus {
        let activity = self.model_activity(model);
        ModelStatus {
            model: model.to_string(),
            running: activity.running,
            starting: activity.starting,
            queued: activity.queued,
            backlog: activity.backlog,
        }
    }

    /// Status of every hosted model.
    pub fn all_model_statuses(&self) -> Vec<ModelStatus> {
        self.config
            .models
            .iter()
            .map(|m| self.model_status(&m.model.name))
            .collect()
    }

    /// Whether the named model currently has a hot instance.
    pub fn has_hot_instance(&self, model: &str) -> bool {
        self.instances
            .iter()
            .any(|i| i.model == model && i.is_ready())
    }

    /// Receive a task from the cloud service at `now`. Returns `false` if the
    /// endpoint does not host the requested model (a failed result is
    /// produced in that case).
    pub fn receive_task(&mut self, task: TaskId, request: InferenceRequest, now: SimTime) -> bool {
        self.stats.tasks_received += 1;
        if self.is_offline(now) {
            // Network partition / endpoint flap: deliveries fail fast with a
            // retryable error instead of vanishing into a dead process.
            self.stats.tasks_failed += 1;
            self.results.push(TaskResult {
                task,
                success: false,
                completion: None,
                error: Some(format!("endpoint {} unreachable", self.config.name)),
                finished_at: now,
            });
            return false;
        }
        let Some(hosting_idx) = self.config.hosting_index(&request.model) else {
            self.stats.tasks_failed += 1;
            self.results.push(TaskResult {
                task,
                success: false,
                completion: None,
                error: Some(format!(
                    "endpoint {} does not host model {}",
                    self.config.name, request.model
                )),
                finished_at: now,
            });
            return false;
        };
        // Fail fast on misconfiguration: a hosting entry whose per-instance
        // allocation can never be satisfied by this cluster would otherwise
        // leave the task queued forever with no event to wake it.
        let hosting = &self.config.models[hosting_idx];
        if !self.hosting_is_schedulable(hosting) {
            self.stats.tasks_failed += 1;
            self.results.push(TaskResult {
                task,
                success: false,
                completion: None,
                error: Some(format!(
                    "model {} requires {} nodes x {} GPUs, which cluster {} cannot provide",
                    request.model,
                    hosting.nodes_per_instance,
                    hosting.gpus_per_instance,
                    self.config.cluster
                )),
                finished_at: now,
            });
            return false;
        }
        self.task_of_request.insert(request.id.0, task);
        self.waiting[hosting_idx].push_back((task, request));
        // React immediately: launch or assign without waiting for the next
        // global advance round.
        self.dirty = true;
        self.assign_and_scale(now);
        true
    }

    /// Pre-warm `count` instances of a model (used by benchmarks that measure
    /// steady-state multi-instance throughput, and by administrators who pin
    /// popular models hot).
    pub fn prewarm(&mut self, model: &str, count: u32, now: SimTime) -> u32 {
        let Some(hosting_idx) = self.config.hosting_index(model) else {
            return 0;
        };
        let hosting = self.config.models[hosting_idx].clone();
        if !self.hosting_is_schedulable(&hosting) {
            return 0;
        }
        let mut launched = 0;
        for _ in 0..count {
            if self.active_instances_at(hosting_idx) >= hosting.max_instances as usize {
                break;
            }
            if self.launch_instance(hosting_idx, &hosting, now, true) {
                launched += 1;
            }
        }
        self.dirty = true;
        launched
    }

    /// Simulate a crash of one hot instance of `model` (§3.2.2 fault
    /// tolerance). In-flight tasks are re-queued; the process manager restarts
    /// the instance if auto-restart is enabled.
    pub fn inject_instance_failure(&mut self, model: &str, now: SimTime) -> bool {
        let Some(idx) = self
            .instances
            .iter()
            .position(|i| i.model == model && i.is_ready())
        else {
            return false;
        };
        self.dirty = true;
        // Re-queue whatever was running there.
        let inst = &mut self.instances[idx];
        inst.state = InstanceState::Failed;
        inst.backend = None;
        let in_flight = std::mem::take(&mut inst.in_flight);
        let job = inst.job;
        let hosting_idx = inst.hosting;
        // The instance's tasks are retried from the endpoint queue. Their
        // request payloads were consumed by the engine, so synthesise retries
        // is not possible here; instead we fail them and count the restarts —
        // the gateway retries idempotent requests.
        for task in in_flight {
            self.stats.tasks_failed += 1;
            self.task_of_request.retain(|_, t| *t != task);
            self.results.push(TaskResult {
                task,
                success: false,
                completion: None,
                error: Some("instance failure".to_string()),
                finished_at: now,
            });
        }
        self.scheduler.complete(job, now);
        if self.config.auto_restart {
            let hosting = self.config.models[hosting_idx].clone();
            self.launch_instance(hosting_idx, &hosting, now, false);
            self.stats.restarts += 1;
        }
        true
    }

    /// Take the endpoint off the network until `until` (fault injection:
    /// process flap or partition). Task deliveries inside the window fail
    /// fast; an already-set later recovery instant is kept.
    pub fn set_offline_until(&mut self, until: SimTime) {
        self.offline_until = Some(self.offline_until.map_or(until, |t| t.max(until)));
        self.dirty = true;
    }

    /// Whether the endpoint is unreachable at `now`.
    pub fn is_offline(&self, now: SimTime) -> bool {
        self.offline_until.map(|t| now < t).unwrap_or(false)
    }

    /// The instant the current (or last) offline window ends, if one was set.
    pub fn offline_until(&self) -> Option<SimTime> {
        self.offline_until
    }

    /// Crash the compute node backing the first hot instance (fault
    /// injection): the instance fails as in
    /// [`ComputeEndpoint::inject_instance_failure`] and the node goes offline
    /// until restored via [`ComputeEndpoint::restore_node`]. Returns the
    /// crashed node, or `None` when nothing is running.
    pub fn inject_node_crash(&mut self, now: SimTime) -> Option<NodeId> {
        let idx = self.instances.iter().position(|i| i.is_ready())?;
        let model = self.instances[idx].model.clone();
        let job = self.instances[idx].job;
        let node = self
            .scheduler
            .job(job)
            .and_then(|j| j.allocation.nodes().first().copied());
        // Take the node offline before failing the instance so any automatic
        // restart is placed on surviving hardware.
        if let Some(id) = node {
            if let Some(n) = self.scheduler.cluster_mut().node_mut(id) {
                n.offline = true;
            }
        }
        self.inject_instance_failure(&model, now);
        node
    }

    /// Bring a crashed node back online. Returns `false` for unknown nodes.
    pub fn restore_node(&mut self, node: NodeId) -> bool {
        self.dirty = true;
        match self.scheduler.cluster_mut().node_mut(node) {
            Some(n) => {
                n.offline = false;
                true
            }
            None => false,
        }
    }

    /// PBS-preempt the batch job backing the first active instance (fault
    /// injection). The scheduler cancels the job; the instance is released
    /// and its in-flight tasks fail with a retryable error. Returns `false`
    /// when no instance was active.
    pub fn preempt_instance(&mut self, now: SimTime) -> bool {
        let Some(idx) = self.instances.iter().position(|i| {
            matches!(
                i.state,
                InstanceState::PendingJob | InstanceState::Loading | InstanceState::Ready
            )
        }) else {
            return false;
        };
        let job = self.instances[idx].job;
        self.scheduler.cancel(job, now);
        self.dirty = true;
        self.assign_and_scale(now);
        true
    }

    /// Preempt every active instance at once (a full cluster outage).
    /// Returns the number of instances killed.
    pub fn preempt_all_instances(&mut self, now: SimTime) -> usize {
        let jobs: Vec<JobId> = self
            .instances
            .iter()
            .filter(|i| {
                matches!(
                    i.state,
                    InstanceState::PendingJob | InstanceState::Loading | InstanceState::Ready
                )
            })
            .map(|i| i.job)
            .collect();
        for &job in &jobs {
            self.scheduler.cancel(job, now);
        }
        if !jobs.is_empty() {
            self.dirty = true;
            self.assign_and_scale(now);
        }
        jobs.len()
    }

    /// Stall every autoregressive (vLLM) serving engine on the endpoint
    /// until `until` (fault injection). Embedding backends are unaffected —
    /// the modelled failure is a decode-loop hang. Returns the number of
    /// engines affected.
    pub fn stall_engines(&mut self, until: SimTime) -> usize {
        self.dirty = true;
        let mut stalled = 0;
        for inst in self.instances.iter_mut() {
            if let Some(InstanceBackend::Vllm(engine)) = inst.backend.as_mut() {
                engine.stall(until);
                stalled += 1;
            }
        }
        stalled
    }

    /// Whether this cluster can ever satisfy one instance of the hosting
    /// entry (enough nodes, and no node asked for more GPUs than it has).
    fn hosting_is_schedulable(&self, hosting: &ModelHostingConfig) -> bool {
        let cluster = self.scheduler.cluster();
        hosting.gpus_per_instance <= cluster.max_gpus_per_node()
            && hosting.nodes_per_instance <= cluster.node_count()
    }

    fn active_instances_at(&self, hosting: usize) -> usize {
        self.instances
            .iter()
            .filter(|i| {
                i.hosting == hosting
                    && matches!(
                        i.state,
                        InstanceState::PendingJob | InstanceState::Loading | InstanceState::Ready
                    )
            })
            .count()
    }

    fn launch_instance(
        &mut self,
        hosting_idx: usize,
        hosting: &ModelHostingConfig,
        now: SimTime,
        hot: bool,
    ) -> bool {
        let request = JobRequest {
            nodes: hosting.nodes_per_instance,
            gpus_per_node: hosting.gpus_per_instance,
            walltime: hosting.job_walltime,
            priority: JobPriority::High,
            user: "first-service".to_string(),
            tag: hosting.model.name.clone(),
        }
        .with_user(format!("endpoint:{}", self.config.name));
        let job = self.scheduler.submit(request, now);
        let started = self
            .scheduler
            .job(job)
            .map(|j| j.state == JobState::Running)
            .unwrap_or(false);
        let id = self.next_instance_id;
        self.next_instance_id += 1;
        self.stats.instances_launched += 1;
        let mut instance = ModelInstance {
            id,
            model: hosting.model.name.clone(),
            job,
            state: InstanceState::PendingJob,
            hosting: hosting_idx,
            backend: None,
            in_flight: Vec::new(),
            last_active: now,
        };
        if started {
            Self::attach_backend(&self.config, hosting, &mut instance, now, hot);
        }
        self.instances.push(instance);
        true
    }

    fn attach_backend(
        config: &EndpointConfig,
        hosting: &ModelHostingConfig,
        instance: &mut ModelInstance,
        start: SimTime,
        hot: bool,
    ) {
        if hosting.is_embedding() {
            instance.backend = Some(InstanceBackend::Embedding(EmbeddingEngine::new(
                EmbeddingConfig::nv_embed(hosting.model.clone()),
            )));
            instance.state = InstanceState::Ready;
        } else {
            let engine_config = hosting.engine_config(config.gpu);
            let engine = Box::new(if hot {
                VllmEngine::hot(engine_config, start)
            } else {
                VllmEngine::cold(engine_config, start)
            });
            instance.state = if hot {
                InstanceState::Ready
            } else {
                InstanceState::Loading
            };
            instance.backend = Some(InstanceBackend::Vllm(engine));
        }
        instance.last_active = start;
    }

    /// Core per-advance work: react to scheduler events, drive backends,
    /// collect completions, hand out waiting tasks, auto-scale and enforce the
    /// idle timeout. A second pass runs only when the first made progress
    /// (instance launched, became ready, completions collected, tasks
    /// assigned), so work enabled within one advance is picked up immediately
    /// without paying the full walk twice on the — far more common — quiet
    /// events.
    fn assign_and_scale(&mut self, now: SimTime) {
        // Quiet advance: nothing external changed and no scheduler/engine/idle
        // event is due yet, so a pass could not make progress — skip the walk.
        if !self.dirty && self.next_wake.is_none_or(|t| t > now) {
            return;
        }
        if self.assign_and_scale_pass(now) {
            self.assign_and_scale_pass(now);
        }
        self.dirty = false;
        self.next_wake = self.compute_next_event_time();
    }

    /// One pass; returns whether any state changed (see `assign_and_scale`).
    fn assign_and_scale_pass(&mut self, now: SimTime) -> bool {
        let mut progress = false;
        // 1. Scheduler events → instance state transitions.
        self.scheduler.advance(now);
        for ev in self.scheduler.take_events() {
            use first_hpc::SchedulerEventKind as K;
            progress = true;
            match ev.kind {
                K::Started => {
                    if let Some(pos) = self
                        .instances
                        .iter()
                        .position(|i| i.job == ev.job && i.state == InstanceState::PendingJob)
                    {
                        if let Some(hosting) =
                            self.config.models.get(self.instances[pos].hosting).cloned()
                        {
                            let config = self.config.clone();
                            Self::attach_backend(
                                &config,
                                &hosting,
                                &mut self.instances[pos],
                                ev.time,
                                false,
                            );
                        }
                    }
                }
                K::TimedOut | K::Cancelled => {
                    let in_flight = match self.instances.iter_mut().find(|i| i.job == ev.job) {
                        Some(inst) if inst.state != InstanceState::Released => {
                            inst.state = InstanceState::Released;
                            inst.backend = None;
                            std::mem::take(&mut inst.in_flight)
                        }
                        _ => Vec::new(),
                    };
                    // The batch job died under the instance; its in-flight
                    // tasks can never complete, so fail them with a retryable
                    // error instead of leaving the client hanging.
                    for task in in_flight {
                        self.stats.tasks_failed += 1;
                        self.task_of_request.retain(|_, t| *t != task);
                        self.results.push(TaskResult {
                            task,
                            success: false,
                            completion: None,
                            error: Some("instance job preempted".to_string()),
                            finished_at: ev.time,
                        });
                    }
                }
                K::Completed => {}
            }
        }

        // 2. Drive backends and collect completions.
        for inst in self.instances.iter_mut() {
            let Some(backend) = inst.backend.as_mut() else {
                continue;
            };
            match backend {
                InstanceBackend::Vllm(engine) => {
                    engine.advance(now);
                    if inst.state == InstanceState::Loading && engine.state() == EngineState::Ready
                    {
                        inst.state = InstanceState::Ready;
                        inst.last_active = engine.ready_at();
                        progress = true;
                    }
                    for c in engine.take_completions() {
                        progress = true;
                        if let Some(task) = self.task_of_request.remove(&c.id.0) {
                            inst.in_flight.retain(|t| *t != task);
                            inst.last_active = c.finished_at;
                            self.stats.tasks_completed += 1;
                            self.stats.output_tokens += c.output_tokens as u64;
                            self.results.push(TaskResult {
                                task,
                                success: true,
                                finished_at: c.finished_at,
                                completion: Some(c),
                                error: None,
                            });
                        }
                    }
                }
                InstanceBackend::Embedding(engine) => {
                    engine.advance(now);
                    for c in engine.take_completions() {
                        progress = true;
                        if let Some(task) = self.task_of_request.remove(&c.id.0) {
                            inst.in_flight.retain(|t| *t != task);
                            inst.last_active = c.finished_at;
                            self.stats.tasks_completed += 1;
                            self.results.push(TaskResult {
                                task,
                                success: true,
                                finished_at: c.finished_at,
                                completion: Some(c),
                                error: None,
                            });
                        }
                    }
                }
            }
        }

        // 3. Assign waiting tasks to instances with free parallel slots. The
        //    hosting configs are read in place (split field borrows) — this
        //    runs twice per advance, so cloning the config list here used to
        //    be the endpoint's single largest allocation source.
        for (hosting_idx, hosting) in self.config.models.iter().enumerate() {
            let queue = &mut self.waiting[hosting_idx];
            if queue.is_empty() {
                continue;
            }
            // Only hot instances receive work; tasks stay in the endpoint
            // backlog while an instance is still loading so they can drain to
            // whichever instance frees capacity first.
            for inst in self
                .instances
                .iter_mut()
                .filter(|i| i.hosting == hosting_idx && i.backend.is_some())
                .filter(|i| i.state == InstanceState::Ready)
            {
                while inst.in_flight.len() < hosting.max_parallel_tasks {
                    let Some((task, request)) = queue.pop_front() else {
                        break;
                    };
                    match inst.backend.as_mut().expect("backend present") {
                        InstanceBackend::Vllm(engine) => {
                            engine.enqueue(request, now);
                        }
                        InstanceBackend::Embedding(engine) => {
                            engine.submit(request, now);
                        }
                    }
                    inst.in_flight.push(task);
                    inst.last_active = now;
                    progress = true;
                }
                if queue.is_empty() {
                    break;
                }
            }
        }

        // 4. Auto-scaling: launch instances when the backlog exceeds what the
        //    active instances can absorb. The scan borrows the configs in
        //    place; only an actual launch (rare) clones its hosting entry.
        for idx in 0..self.config.models.len() {
            let hosting = &self.config.models[idx];
            let backlog = self.waiting[idx].len();
            let in_flight = self.model_in_flight_at(idx);
            let active = self.active_instances_at(idx);
            let demand = backlog + in_flight;
            let need_first = active == 0 && demand > 0;
            let saturated =
                active > 0 && demand > hosting.scale_up_threshold * active && backlog > 0;
            if (need_first || saturated) && active < hosting.max_instances as usize {
                let hosting = self.config.models[idx].clone();
                self.launch_instance(idx, &hosting, now, false);
                progress = true;
            }
        }

        // 5. Hot-node management: release instances idle past the timeout.
        for idx in 0..self.instances.len() {
            let (release, job) = {
                let inst = &self.instances[idx];
                if inst.state != InstanceState::Ready || !inst.in_flight.is_empty() {
                    (false, inst.job)
                } else {
                    let timeout = self
                        .config
                        .models
                        .get(inst.hosting)
                        .map(|h| h.idle_timeout)
                        .unwrap_or_default();
                    let backlog = !self.waiting[inst.hosting].is_empty();
                    (
                        !backlog && now.saturating_since(inst.last_active) >= timeout,
                        inst.job,
                    )
                }
            };
            if release {
                let inst = &mut self.instances[idx];
                inst.state = InstanceState::Released;
                inst.backend = None;
                self.scheduler.complete(job, now);
                self.stats.instances_released += 1;
                progress = true;
            }
        }
        progress
    }

    /// Full scan behind [`SimProcess::next_event_time`]: earliest scheduler
    /// event, engine event or idle-release deadline.
    fn compute_next_event_time(&self) -> Option<SimTime> {
        let mut next: Option<SimTime> = SimProcess::next_event_time(&self.scheduler);
        for inst in &self.instances {
            let t = match &inst.backend {
                Some(InstanceBackend::Vllm(e)) => SimProcess::next_event_time(e.as_ref()),
                Some(InstanceBackend::Embedding(e)) => SimProcess::next_event_time(e),
                None => None,
            };
            next = match (next, t) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, None) => a,
                (None, b) => b,
            };
        }
        if let Some(d) = self.idle_release_deadline() {
            next = Some(next.map_or(d, |n| n.min(d)));
        }
        next
    }

    fn idle_release_deadline(&self) -> Option<SimTime> {
        self.instances
            .iter()
            .filter(|i| i.state == InstanceState::Ready && i.in_flight.is_empty())
            .filter_map(|i| {
                self.config
                    .models
                    .get(i.hosting)
                    .map(|h| i.last_active + h.idle_timeout)
            })
            .min()
    }
}

impl SimProcess for ComputeEndpoint {
    fn next_event_time(&self) -> Option<SimTime> {
        // `next_wake` is recomputed after every pass and nothing moves the
        // scheduler, engines or idle deadlines between passes, so a clean
        // endpoint answers from the cache instead of re-scanning.
        if !self.dirty {
            return self.next_wake;
        }
        self.compute_next_event_time()
    }

    fn advance(&mut self, now: SimTime) {
        self.assign_and_scale(now);
    }

    fn name(&self) -> &str {
        "compute-endpoint"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelHostingConfig;
    use first_desim::SimDuration;
    use first_hpc::GpuModel;
    use first_serving::find_model;

    fn endpoint() -> ComputeEndpoint {
        let config = EndpointConfig::new("sophia-endpoint", "sophia", GpuModel::A100_40)
            .host(
                ModelHostingConfig::new(find_model("llama-70b").unwrap(), GpuModel::A100_40)
                    .with_max_instances(4),
            )
            .host(ModelHostingConfig::new(
                find_model("nv-embed-v2").unwrap(),
                GpuModel::A100_40,
            ));
        ComputeEndpoint::new(config, Cluster::tiny("sophia", 8, 8))
    }

    fn drive(ep: &mut ComputeEndpoint, until: SimTime) {
        let mut now = SimTime::ZERO;
        while let Some(t) = SimProcess::next_event_time(ep) {
            if t > until {
                break;
            }
            now = t.max(now);
            ep.advance(now);
        }
        ep.advance(until);
    }

    fn chat_req(id: u64) -> InferenceRequest {
        InferenceRequest::chat(id, "meta-llama/Llama-3.3-70B-Instruct", 220, 150)
    }

    #[test]
    fn infeasible_hosting_fails_tasks_fast_instead_of_hanging() {
        // A Polaris-like 4-GPU-per-node cluster misconfigured with the
        // Sophia-style 1x8-GPU hosting entry for Llama 70B: the allocation can
        // never be satisfied, so tasks must fail immediately with a clear
        // error rather than queue forever.
        let config = EndpointConfig::new("polaris-endpoint", "polaris", GpuModel::A100_40).host(
            ModelHostingConfig::for_node_size(
                find_model("llama-70b").unwrap(),
                GpuModel::A100_40,
                8,
            ),
        );
        let mut ep = ComputeEndpoint::new(config, Cluster::tiny("polaris", 8, 4));
        // Prewarming an infeasible entry launches nothing.
        assert_eq!(
            ep.prewarm("meta-llama/Llama-3.3-70B-Instruct", 1, SimTime::ZERO),
            0
        );
        assert!(!ep.receive_task(TaskId(1), chat_req(1), SimTime::ZERO));
        let results = ep.take_results();
        assert_eq!(results.len(), 1);
        assert!(!results[0].success);
        assert!(results[0]
            .error
            .as_deref()
            .unwrap_or("")
            .contains("cannot provide"));

        // The properly sized 2x4-GPU entry for the same cluster works.
        let config = EndpointConfig::new("polaris-endpoint", "polaris", GpuModel::A100_40).host(
            ModelHostingConfig::for_node_size(
                find_model("llama-70b").unwrap(),
                GpuModel::A100_40,
                4,
            ),
        );
        let mut ep = ComputeEndpoint::new(config, Cluster::tiny("polaris", 8, 4));
        assert_eq!(
            ep.prewarm("meta-llama/Llama-3.3-70B-Instruct", 1, SimTime::ZERO),
            1
        );
        assert!(ep.receive_task(TaskId(2), chat_req(2), SimTime::ZERO));
        drive(&mut ep, SimTime::from_secs(300));
        let results = ep.take_results();
        assert_eq!(results.len(), 1);
        assert!(results[0].success);
    }

    #[test]
    fn first_request_triggers_cold_start_and_completes() {
        let mut ep = endpoint();
        assert!(ep.receive_task(TaskId(1), chat_req(1), SimTime::ZERO));
        // The model is not hot: /jobs should say "starting" (node allocated
        // instantly on the empty cluster, weights loading).
        let status = ep.model_status("meta-llama/Llama-3.3-70B-Instruct");
        assert_eq!(status.state_label(), "starting");
        drive(&mut ep, SimTime::from_secs(600));
        let results = ep.take_results();
        assert_eq!(results.len(), 1);
        assert!(results[0].success);
        // Completion happens only after the cold start (~2 min for 70B).
        assert!(results[0].finished_at.as_secs_f64() > 60.0);
        assert!(ep.has_hot_instance("meta-llama/Llama-3.3-70B-Instruct"));
    }

    #[test]
    fn hot_instance_serves_follow_up_quickly() {
        let mut ep = endpoint();
        ep.prewarm("meta-llama/Llama-3.3-70B-Instruct", 1, SimTime::ZERO);
        assert!(ep.has_hot_instance("meta-llama/Llama-3.3-70B-Instruct"));
        ep.receive_task(TaskId(1), chat_req(1), SimTime::from_secs(10));
        drive(&mut ep, SimTime::from_secs(120));
        let results = ep.take_results();
        assert_eq!(results.len(), 1);
        let latency = results[0].finished_at.as_secs_f64() - 10.0;
        assert!(latency < 10.0, "hot latency {latency}");
    }

    #[test]
    fn unknown_model_fails_immediately() {
        let mut ep = endpoint();
        let req = InferenceRequest::chat(5, "not-hosted", 10, 10);
        assert!(!ep.receive_task(TaskId(5), req, SimTime::ZERO));
        let results = ep.take_results();
        assert_eq!(results.len(), 1);
        assert!(!results[0].success);
    }

    #[test]
    fn autoscaling_launches_additional_instances_under_load() {
        let mut ep = endpoint();
        ep.prewarm("meta-llama/Llama-3.3-70B-Instruct", 1, SimTime::ZERO);
        // Far more outstanding work than one instance's scale-up threshold.
        for i in 0..500 {
            ep.receive_task(TaskId(i), chat_req(i), SimTime::ZERO);
        }
        ep.advance(SimTime::from_secs(1));
        let model = "meta-llama/Llama-3.3-70B-Instruct";
        let active = ep
            .instances()
            .iter()
            .filter(|i| i.model == model && i.state != InstanceState::Released)
            .count();
        assert!(active >= 2, "expected scale-up, got {active} instances");
        assert!(active <= 4, "must respect max_instances");
    }

    #[test]
    fn idle_timeout_releases_warm_nodes() {
        let mut ep = endpoint();
        ep.prewarm("meta-llama/Llama-3.3-70B-Instruct", 1, SimTime::ZERO);
        ep.receive_task(TaskId(1), chat_req(1), SimTime::ZERO);
        drive(&mut ep, SimTime::from_secs(300));
        assert_eq!(ep.take_results().len(), 1);
        let busy_gpus_before = ep.cluster_status().total_gpus - ep.cluster_status().free_gpus;
        assert!(busy_gpus_before >= 8);
        // Two hours of idleness later the node is released.
        drive(
            &mut ep,
            SimTime::from_secs(300) + SimDuration::from_hours(3),
        );
        assert!(!ep.has_hot_instance("meta-llama/Llama-3.3-70B-Instruct"));
        assert_eq!(
            ep.cluster_status().free_gpus,
            ep.cluster_status().total_gpus
        );
        assert!(ep.stats().instances_released >= 1);
    }

    #[test]
    fn embedding_model_served_without_cold_start() {
        let mut ep = endpoint();
        ep.receive_task(
            TaskId(9),
            InferenceRequest::embedding(9, "nvidia/NV-Embed-v2", 512),
            SimTime::ZERO,
        );
        drive(&mut ep, SimTime::from_secs(60));
        let results = ep.take_results();
        assert_eq!(results.len(), 1);
        assert!(results[0].success);
        assert!(results[0].finished_at.as_secs_f64() < 5.0);
    }

    #[test]
    fn instance_failure_restarts_automatically() {
        let mut ep = endpoint();
        ep.prewarm("meta-llama/Llama-3.3-70B-Instruct", 1, SimTime::ZERO);
        assert!(
            ep.inject_instance_failure("meta-llama/Llama-3.3-70B-Instruct", SimTime::from_secs(5))
        );
        assert_eq!(ep.stats().restarts, 1);
        // A replacement instance is starting.
        let status = ep.model_status("meta-llama/Llama-3.3-70B-Instruct");
        assert!(status.starting + status.queued >= 1);
        drive(&mut ep, SimTime::from_secs(600));
        assert!(ep.has_hot_instance("meta-llama/Llama-3.3-70B-Instruct"));
    }

    #[test]
    fn max_parallel_tasks_bounds_in_flight_per_instance() {
        let config = EndpointConfig::new("e", "c", GpuModel::A100_40).host(
            ModelHostingConfig::new(find_model("llama-70b").unwrap(), GpuModel::A100_40)
                .with_max_parallel_tasks(4)
                .with_max_instances(1),
        );
        let mut ep = ComputeEndpoint::new(config, Cluster::tiny("c", 2, 8));
        ep.prewarm("meta-llama/Llama-3.3-70B-Instruct", 1, SimTime::ZERO);
        for i in 0..20 {
            ep.receive_task(TaskId(i), chat_req(i), SimTime::ZERO);
        }
        ep.advance(SimTime::from_millis(100));
        let inst = ep
            .instances()
            .iter()
            .find(|i| i.is_ready())
            .expect("hot instance");
        assert!(inst.in_flight() <= 4);
        let status = ep.model_status("meta-llama/Llama-3.3-70B-Instruct");
        assert!(status.backlog >= 16);
    }

    #[test]
    fn cluster_saturation_queues_instances() {
        // One-node cluster: a second instance cannot start until resources free.
        let config = EndpointConfig::new("e", "c", GpuModel::A100_40).host(
            ModelHostingConfig::new(find_model("llama-70b").unwrap(), GpuModel::A100_40)
                .with_max_instances(2)
                .with_max_parallel_tasks(2),
        );
        let mut ep = ComputeEndpoint::new(config, Cluster::tiny("c", 1, 8));
        for i in 0..50 {
            ep.receive_task(TaskId(i), chat_req(i), SimTime::ZERO);
        }
        ep.advance(SimTime::from_secs(1));
        let status = ep.model_status("meta-llama/Llama-3.3-70B-Instruct");
        assert!(
            status.queued >= 1,
            "second instance should wait for nodes: {status:?}"
        );
    }

    #[test]
    fn offline_endpoint_fails_deliveries_until_recovery() {
        let mut ep = endpoint();
        ep.prewarm("meta-llama/Llama-3.3-70B-Instruct", 1, SimTime::ZERO);
        ep.set_offline_until(SimTime::from_secs(60));
        assert!(ep.is_offline(SimTime::from_secs(30)));
        assert!(!ep.receive_task(TaskId(1), chat_req(1), SimTime::from_secs(30)));
        let results = ep.take_results();
        assert_eq!(results.len(), 1);
        assert!(!results[0].success);
        assert!(results[0]
            .error
            .as_deref()
            .unwrap_or("")
            .contains("unreachable"));
        // After the window the endpoint serves again.
        assert!(!ep.is_offline(SimTime::from_secs(60)));
        assert!(ep.receive_task(TaskId(2), chat_req(2), SimTime::from_secs(60)));
        drive(&mut ep, SimTime::from_secs(300));
        assert!(ep.take_results().iter().any(|r| r.success));
        // An earlier recovery instant never shortens an existing window.
        ep.set_offline_until(SimTime::from_secs(500));
        ep.set_offline_until(SimTime::from_secs(400));
        assert!(ep.is_offline(SimTime::from_secs(450)));
    }

    #[test]
    fn preemption_fails_in_flight_tasks_instead_of_hanging_them() {
        let mut ep = endpoint();
        ep.prewarm("meta-llama/Llama-3.3-70B-Instruct", 1, SimTime::ZERO);
        ep.receive_task(TaskId(1), chat_req(1), SimTime::ZERO);
        ep.advance(SimTime::from_millis(100));
        assert!(ep.take_results().is_empty(), "task still running");
        assert!(ep.preempt_instance(SimTime::from_secs(1)));
        let results = ep.take_results();
        assert_eq!(results.len(), 1);
        assert!(!results[0].success);
        assert!(results[0]
            .error
            .as_deref()
            .unwrap_or("")
            .contains("preempted"));
        // Preempting an idle endpoint with no instances reports false.
        let mut empty = endpoint();
        assert!(!empty.preempt_instance(SimTime::ZERO));
    }

    #[test]
    fn preempt_all_kills_every_active_instance() {
        let mut ep = endpoint();
        ep.prewarm("meta-llama/Llama-3.3-70B-Instruct", 2, SimTime::ZERO);
        assert_eq!(ep.preempt_all_instances(SimTime::from_secs(1)), 2);
        assert!(!ep.has_hot_instance("meta-llama/Llama-3.3-70B-Instruct"));
    }

    #[test]
    fn node_crash_takes_the_node_offline_and_restarts_elsewhere() {
        let mut ep = endpoint();
        ep.prewarm("meta-llama/Llama-3.3-70B-Instruct", 1, SimTime::ZERO);
        let total = ep.cluster_status().total_nodes;
        let node = ep
            .inject_node_crash(SimTime::from_secs(5))
            .expect("a hot instance was running");
        let status = ep.cluster_status();
        assert_eq!(status.offline_nodes, 1);
        assert_eq!(status.total_nodes, total - 1);
        assert!(ep.stats().restarts >= 1, "auto-restart should fire");
        // The replacement becomes hot on surviving hardware, and the node
        // eventually rejoins.
        drive(&mut ep, SimTime::from_secs(600));
        assert!(ep.has_hot_instance("meta-llama/Llama-3.3-70B-Instruct"));
        assert!(ep.restore_node(node));
        assert_eq!(ep.cluster_status().offline_nodes, 0);
        assert!(!ep.restore_node(NodeId(9999)));
    }

    #[test]
    fn engine_stall_delays_completions() {
        let mut ep = endpoint();
        ep.prewarm("meta-llama/Llama-3.3-70B-Instruct", 1, SimTime::ZERO);
        ep.receive_task(TaskId(1), chat_req(1), SimTime::ZERO);
        ep.advance(SimTime::from_millis(100));
        assert_eq!(ep.stall_engines(SimTime::from_secs(200)), 1);
        drive(&mut ep, SimTime::from_secs(600));
        let results = ep.take_results();
        assert_eq!(results.len(), 1);
        assert!(results[0].success);
        assert!(
            results[0].finished_at > SimTime::from_secs(200),
            "completion at {:?} should wait out the stall",
            results[0].finished_at
        );
    }
}
