//! # first-fabric — federated function-serving fabric (Globus Compute substitute)
//!
//! The communication and execution layer between the FIRST gateway and the
//! HPC clusters (§3.2): a cloud [`service::ComputeService`] that validates,
//! queues and routes tasks; per-cluster [`endpoint::ComputeEndpoint`]s that
//! acquire nodes through the batch scheduler, keep serving instances warm,
//! auto-scale, release idle resources and restart failed instances; a
//! pre-registered [`task::FunctionRegistry`]; and the SDK-side behaviours
//! (polling vs futures, connection caching) the paper's optimization study
//! ablates ([`client::ClientConfig`]).

#![warn(missing_docs)]

pub mod client;
pub mod config;
pub mod endpoint;
pub mod service;
pub mod task;

pub use client::{ClientConfig, ResultMode};
pub use config::{EndpointConfig, FabricLatencyModel, ModelHostingConfig};
pub use endpoint::{
    ComputeEndpoint, EndpointStats, InstanceState, ModelActivity, ModelInstance, ModelStatus,
};
pub use service::{ComputeService, FabricError, ServiceStats};
pub use task::{
    EndpointId, FunctionId, FunctionRegistry, RegisteredFunction, TaskId, TaskPayload, TaskRecord,
    TaskResult, TaskState,
};
